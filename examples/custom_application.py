#!/usr/bin/env python
"""Writing your own application for the simulator.

The five paper benchmarks are not special: any program written against
the :class:`repro.Application` interface can run on all four machine
models.  This example implements a 1-D Jacobi relaxation (the classic
nearest-neighbour stencil) from scratch:

* the grid is block-distributed; interior updates touch only local
  data,
* each sweep reads the two *halo* elements owned by the neighbouring
  processors -- a tiny, perfectly local communication pattern,
* sweeps are separated by barriers,
* ``verify()`` checks the relaxation against a sequential numpy run.

Because Jacobi's communication is nearest-neighbour, it is exactly the
kind of workload for which the paper predicts the bisection-derived g
to be most pessimistic: the CLogP contention estimate overshoots the
target badly while the latency estimate stays accurate.  Run it and
see.

Usage::

    python examples/custom_application.py [processors] [topology]
"""

import sys

import numpy as np

from repro import Application, SystemConfig, simulate
from repro.apps.base import block_partition
from repro.core import ops

ELEM_BYTES = 8


class Jacobi1D(Application):
    """1-D Jacobi relaxation with halo exchange through shared memory."""

    name = "jacobi1d"

    def __init__(self, nprocs: int, n: int = 4_096, sweeps: int = 4):
        super().__init__(nprocs)
        self.n = n
        self.sweeps = sweeps

    def _setup(self, space, streams) -> None:
        rng = streams.fresh("jacobi")
        self.initial = rng.standard_normal(self.n)
        self.values = self.initial.copy()
        self._snapshots = {}
        self.grid = space.alloc(
            "jacobi_grid", self.n, ELEM_BYTES, "blocked",
            align_blocks_per_proc=True,
        )

    def proc_main(self, pid: int):
        lo, hi = block_partition(self.n, self.nprocs, pid)
        for sweep in range(self.sweeps):
            yield ops.Barrier(0)
            if sweep not in self._snapshots:
                self._snapshots[sweep] = self.values.copy()
                self._snapshots.pop(sweep - 2, None)
            # Halo reads: the neighbours' boundary elements.
            if lo > 0:
                yield ops.Read(self.grid.addr(lo - 1))
            if hi < self.n:
                yield ops.Read(self.grid.addr(hi))
            # Interior: all local.
            yield ops.ReadRange(self.grid.addr(lo), hi - lo, ELEM_BYTES)
            yield self.flops(3 * (hi - lo))
            previous = self._snapshots[sweep]
            padded = np.concatenate(([previous[0]], previous,
                                     [previous[-1]]))
            self.values[lo:hi] = (
                padded[lo:hi] + padded[lo + 1:hi + 1] + padded[lo + 2:hi + 2]
            ) / 3.0
            yield ops.WriteRange(self.grid.addr(lo), hi - lo, ELEM_BYTES)
        yield ops.Barrier(0)

    def verify(self) -> bool:
        expected = self.initial.copy()
        for _ in range(self.sweeps):
            padded = np.concatenate(([expected[0]], expected,
                                     [expected[-1]]))
            expected = (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
        return bool(np.allclose(self.values, expected))


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    topology = sys.argv[2] if len(sys.argv) > 2 else "mesh"
    config = SystemConfig(processors=nprocs, topology=topology)
    print(f"Jacobi 1-D, {nprocs} processors, {topology} network\n")
    for machine in ("target", "clogp", "logp", "ideal"):
        result = simulate(Jacobi1D(nprocs), machine, config)
        print(result.summary())
    print(
        "\nNearest-neighbour communication: watch CLogP's contention "
        "column overshoot the target while its latency column agrees -- "
        "the bisection-derived g cannot see communication locality."
    )


if __name__ == "__main__":
    main()
