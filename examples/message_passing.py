#!/usr/bin/env python
"""Message passing: SPASM's second platform paradigm.

The paper's simulator traps "LOADs and STOREs on a shared memory
platform or SENDs and RECEIVEs on a message-passing platform"
(Section 3.3).  This example uses the explicit ``Send``/``Recv``
operations to run a ring all-reduce -- the message-passing equivalent
of the shared-memory reductions in EP and CG -- on every machine model,
and shows the LogP network model operating on its home turf (LogP was
formulated for message passing).

Each processor contributes a vector of partial sums; p-1 ring steps
accumulate them; p-1 more broadcast the total.  The reduction is
computed for real and verified.

Usage::

    python examples/message_passing.py [processors] [topology]
"""

import sys

import numpy as np

from repro import Application, SystemConfig, simulate
from repro.core import ops

#: Elements reduced per processor.
VECTOR = 256

#: Bytes per element.
ELEM_BYTES = 8


class RingAllReduce(Application):
    """Ring all-reduce: accumulate around the ring, then broadcast."""

    name = "ring-allreduce"

    def __init__(self, nprocs: int, elements: int = VECTOR):
        super().__init__(nprocs)
        self.elements = elements
        self.totals = [None] * nprocs

    def _setup(self, space, streams) -> None:
        rng = streams.fresh("allreduce")
        self.contributions = rng.standard_normal((self.nprocs, self.elements))
        #: The running sum as it travels the ring (functional state).
        self._wire = None

    def proc_main(self, pid: int):
        nbytes = self.elements * ELEM_BYTES
        nprocs = self.nprocs
        right = (pid + 1) % nprocs
        if nprocs == 1:
            self.totals[0] = self.contributions[0].copy()
            yield self.flops(self.elements)
            return
        # Phase 1: accumulate 0 -> 1 -> ... -> p-1.
        if pid == 0:
            self._wire = self.contributions[0].copy()
            yield ops.Send(right, nbytes, tag=0)
        else:
            yield ops.Recv(pid - 1, tag=0)
            yield self.flops(self.elements)
            self._wire = self._wire + self.contributions[pid]
            if pid != nprocs - 1:
                yield ops.Send(right, nbytes, tag=0)
        # Phase 2: broadcast p-1 -> 0 -> 1 -> ... (ring order).
        if pid == nprocs - 1:
            self.totals[pid] = self._wire.copy()
            yield ops.Send(right, nbytes, tag=1)
        else:
            yield ops.Recv((pid - 1) % nprocs, tag=1)
            self.totals[pid] = self._wire.copy()
            if pid != nprocs - 2:
                yield ops.Send(right, nbytes, tag=1)

    def verify(self) -> bool:
        expected = self.contributions.sum(axis=0)
        return all(
            total is not None and np.allclose(total, expected)
            for total in self.totals
        )


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    topology = sys.argv[2] if len(sys.argv) > 2 else "cube"
    print(f"ring all-reduce of {VECTOR} doubles, {nprocs} processors, "
          f"{topology} network\n")
    for machine in ("target", "clogp", "logp", "ideal"):
        config = SystemConfig(processors=nprocs, topology=topology)
        result = simulate(RingAllReduce(nprocs), machine, config)
        print(result.summary())
    print(
        "\nWith explicit messages there are no caches to abstract, so "
        "target/clogp/logp differ only in how the network is modeled: "
        "real links vs L+g gating.  The LogP rows show the model on the "
        "message-passing platforms it was designed for."
    )


if __name__ == "__main__":
    main()
