#!/usr/bin/env python
"""Fault-injection study: does the CLogP abstraction survive an
unreliable network?

The paper validates CLogP against the target on a *perfect* network.
This study stresses that comparison: both machines run the same
application while the network drops (and delays) a growing fraction of
messages, recovered by an ARQ reliable-delivery layer (timeout,
exponential backoff, acks, duplicate suppression).  The recovery time
lands in a dedicated ``retry`` overhead bucket, leaving the paper's
latency/contention separation untouched.

Two questions:

* does CLogP's execution-time estimate keep tracking the target as the
  drop rate climbs (i.e. is the abstraction robust to fault handling,
  not just to locality)?
* how much of each machine's slowdown is recovery time (the retry
  bucket) versus knock-on contention?

Usage::

    python examples/fault_injection_study.py [processors] [app]
"""

import sys

from repro import FaultConfig, SystemConfig, make_app, simulate
from repro.experiments.workloads import app_params

DROP_RATES = (0.0, 0.005, 0.01, 0.02, 0.05)


def run(app_name: str, machine: str, nprocs: int, drop: float):
    fault = FaultConfig(drop_rate=drop, retry_timeout_ns=10_000)
    config = SystemConfig(processors=nprocs, fault=fault)
    app = make_app(app_name, nprocs, **app_params(app_name, "quick"))
    return simulate(app, machine, config)


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    app_name = sys.argv[2] if len(sys.argv) > 2 else "fft"

    print(f"{app_name} with {nprocs} processors, quick workload")
    print(f"{'drop':>6s} {'target_us':>12s} {'t_retry_us':>11s} "
          f"{'clogp_us':>12s} {'c_retry_us':>11s} {'clogp/target':>13s}")
    for drop in DROP_RATES:
        target = run(app_name, "target", nprocs, drop)
        clogp = run(app_name, "clogp", nprocs, drop)
        ratio = clogp.total_us / target.total_us if target.total_us else 0.0
        print(f"{drop:6.3f} {target.total_us:12.1f} "
              f"{target.mean_retry_us:11.1f} {clogp.total_us:12.1f} "
              f"{clogp.mean_retry_us:11.1f} {ratio:13.2f}")
    print()
    print("The drop=0 row is the paper's fault-free comparison; each later")
    print("row adds recovery work on both machines.  A stable ratio means")
    print("the locality abstraction is also robust to unreliable networks.")


if __name__ == "__main__":
    main()
