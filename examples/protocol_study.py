#!/usr/bin/env python
"""Protocol sensitivity: Berkeley vs Illinois vs the ideal cache.

The paper models an ideal coherent cache (CLogP) and argues its traffic
is "the minimum number of network messages that any coherence protocol
may hope to achieve", so "a fancier invalidation-based cache coherence
protocol ... would only enhance the agreement".  This study makes that
concrete by running the target machine under both implemented
protocols:

* **Berkeley** (the paper's): ownership-passing, no exclusive-clean
  state -- every first store to a clean block is a directory
  transaction;
* **Illinois/MESI** (the "fancier" one): an unshared fill arrives
  EXCLUSIVE and the first store upgrades it silently.

Usage::

    python examples/protocol_study.py [app] [processors]
"""

import sys

from repro import SystemConfig, make_app, simulate, simulate_full
from repro.experiments.workloads import app_params


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "cg"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    topology = "full"

    rows = []
    for machine, protocol in (
        ("target", "berkeley"),
        ("target", "illinois"),
        ("clogp", "berkeley"),
    ):
        config = SystemConfig(
            processors=nprocs, topology=topology, protocol=protocol
        )
        app = make_app(app_name, nprocs, **app_params(app_name))
        result, machine_obj = simulate_full(app, machine, config)
        upgrades = getattr(
            getattr(machine_obj, "memory", None), "silent_upgrades", 0
        )
        label = f"{machine}-{protocol}" if machine == "target" else "clogp"
        rows.append((label, result, upgrades))

    print(f"{app_name.upper()}, {nprocs} processors, {topology} network\n")
    print(f"{'machine':18s} {'messages':>10s} {'latency_us':>11s} "
          f"{'exec_us':>10s} {'silent upgrades':>16s}")
    for label, result, upgrades in rows:
        print(
            f"{label:18s} {result.messages:>10d} "
            f"{result.mean_latency_us:>11.1f} {result.total_us:>10.1f} "
            f"{upgrades:>16d}"
        )
    berkeley, illinois = rows[0][1], rows[1][1]
    print()
    print("CLogP's message count is the floor.  Illinois trades upgrade")
    print("transactions (saved by silent E->M upgrades) for sharing")
    print("writebacks; at this size the two protocols land within "
          f"{abs(illinois.messages - berkeley.messages) / berkeley.messages:.1%}")
    print("of each other in traffic and both track the CLogP curves --")
    print("the Wood et al. protocol-insensitivity the paper leans on,")
    print("which is what lets it abstract coherence out of the")
    print("simulation.  (Run `repro figure exp-proto` for the sweep.)")


if __name__ == "__main__":
    main()
