#!/usr/bin/env python
"""Locality study: can caches be abstracted out of a simulation?

This reproduces the reasoning of the paper's Section 6.2 on a small
scale.  For each application we compare three machines:

* ``logp``   -- locality ignored entirely (no caches),
* ``clogp``  -- the paper's proposed abstraction: an *ideal coherent
  cache* whose coherence actions are free,
* ``target`` -- the real thing: Berkeley protocol, directory, real
  network messages for every coherence action.

If locality could be ignored, the LogP column would match the others.
It does not (except for compute-bound EP).  If the *ideal* cache were
too crude, the CLogP column would diverge from the target.  It does not
-- which is the paper's justification for abstracting coherence
overhead out of execution-driven simulation.

Usage::

    python examples/locality_study.py [processors] [topology]
"""

import sys

from repro import SystemConfig, make_app, simulate
from repro.experiments.workloads import app_params

APPS = ("ep", "fft", "is", "cg", "cholesky")


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    topology = sys.argv[2] if len(sys.argv) > 2 else "full"
    config = SystemConfig(processors=nprocs, topology=topology)

    print(f"execution time (us), {nprocs} processors, {topology} network")
    print(f"{'app':10s} {'logp':>12s} {'clogp':>12s} {'target':>12s} "
          f"{'logp/target':>12s} {'clogp/target':>13s}")
    for app_name in APPS:
        times = {}
        messages = {}
        for machine in ("logp", "clogp", "target"):
            app = make_app(app_name, nprocs, **app_params(app_name))
            result = simulate(app, machine, config)
            times[machine] = result.total_us
            messages[machine] = result.messages
        print(
            f"{app_name:10s} {times['logp']:12.0f} {times['clogp']:12.0f} "
            f"{times['target']:12.0f} "
            f"{times['logp'] / times['target']:12.2f} "
            f"{times['clogp'] / times['target']:13.2f}"
        )

    print()
    print("Interpretation:")
    print("  logp/target >> 1 for every communicating application:")
    print("  data locality cannot be abstracted away.")
    print("  clogp/target ~ 1: an ideal coherent cache (coherence")
    print("  overhead unmodeled) captures the locality of the target.")


if __name__ == "__main__":
    main()
