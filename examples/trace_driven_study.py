#!/usr/bin/env python
"""Execution-driven vs trace-driven simulation.

The reproduction-feasibility notes for this paper flag Python as "too
slow for execution-driven fidelity; trace-driven approximation only".
This package is execution-driven anyway (application logic interleaves
with simulated time), but it also implements the trace-driven mode so
the approximation can be *measured* instead of assumed:

1. record CHOLESKY -- the suite's dynamic application -- on the CLogP
   machine (execution-driven, including its dynamic task schedule),
2. replay the frozen trace on every machine model,
3. compare against honest execution-driven runs of the same workload.

For the static applications the two modes agree closely; for CHOLESKY
the frozen schedule was made by CLogP timing, so replaying it on other
machines inherits CLogP's scheduling decisions -- the classic
trace-driven distortion.

Usage::

    python examples/trace_driven_study.py [app] [processors]
"""

import sys

from repro import DeadlockError, SystemConfig, make_app, simulate
from repro.experiments.workloads import app_params
from repro.trace import TraceApplication, record_trace


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "cholesky"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    topology = "cube"

    def fresh_app():
        return make_app(app_name, nprocs, **app_params(app_name))

    config = SystemConfig(processors=nprocs, topology=topology)
    recorded_result, trace = record_trace(fresh_app(), "clogp", config)
    print(
        f"recorded {app_name} on clogp: {trace.total_operations} operations, "
        f"{recorded_result.total_us:.0f} us simulated"
    )
    print()
    print(f"{'machine':8s} {'execution-driven':>18s} {'trace-driven':>14s} "
          f"{'distortion':>11s}")
    for machine in ("clogp", "target", "logp"):
        executed = simulate(
            fresh_app(), machine,
            SystemConfig(processors=nprocs, topology=topology),
        )
        try:
            replayed = simulate(
                TraceApplication(trace), machine,
                SystemConfig(processors=nprocs, topology=topology),
            )
        except DeadlockError:
            # The starkest trace-driven failure: a *dynamic* program's
            # frozen schedule need not even be executable under another
            # machine's timing (CHOLESKY's queue-version flag is set by
            # different processors in a different order, so a recorded
            # wait can end up waiting for a version nobody will set
            # again).  Execution-driven simulation has no such problem.
            print(
                f"{machine:8s} {executed.total_us:>16.0f}us "
                f"{'DEADLOCK':>14s} {'--':>11s}"
            )
            continue
        distortion = replayed.total_us / executed.total_us - 1.0
        print(
            f"{machine:8s} {executed.total_us:>16.0f}us "
            f"{replayed.total_us:>12.0f}us {distortion:>10.1%}"
        )
    print()
    print("The clogp row replays its own recording: distortion 0% by")
    print("construction (the engine is deterministic).  Where the replay")
    print("completes, total-time distortion is small -- CHOLESKY's")
    print("makespan is dominated by total work over p -- but the frozen")
    print("schedule inherits CLogP's task-to-processor assignment, and a")
    print("DEADLOCK row shows the approximation at its starkest: under")
    print("another machine's timing the recorded synchronization isn't")
    print("even executable.  Execution-driven simulation (this package's")
    print("default mode) has neither problem.")


if __name__ == "__main__":
    main()
