#!/usr/bin/env python
"""Scalability study in the SPASM tradition.

The simulator this paper builds on (SPASM) was created for scalability
studies: run an application across machine sizes, separate the
overheads, and read off what limits the speedup.  This example does
that for one application on the detailed target machine, then uses the
:func:`repro.analysis.abstraction_error` measure to quantify how well
each abstraction (CLogP, LogP) would have predicted the same study --
i.e. the paper's question, answered with a number instead of a figure.

Usage::

    python examples/scalability_study.py [app] [topology]
"""

import sys

from repro import SystemConfig, make_app, simulate
from repro.analysis import abstraction_error, scalability_table
from repro.experiments.workloads import app_params

SWEEP = (1, 2, 4, 8, 16)


def sweep(app_name, machine, topology):
    results = []
    for nprocs in SWEEP:
        config = SystemConfig(processors=nprocs, topology=topology)
        app = make_app(app_name, nprocs, **app_params(app_name))
        results.append(simulate(app, machine, config))
    return results


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "cg"
    topology = sys.argv[2] if len(sys.argv) > 2 else "cube"

    print(f"=== {app_name.upper()} on the target machine ({topology}) ===")
    target = sweep(app_name, "target", topology)
    print(scalability_table(target))
    print()

    print("How well would each abstraction have predicted this study?")
    print("(mean relative error vs the target, lower is better)")
    print(f"{'machine':8s} {'execution':>10s} {'latency':>10s} "
          f"{'contention':>11s}")
    for machine in ("clogp", "logp", "ideal"):
        model = sweep(app_name, machine, topology)
        row = f"{machine:8s}"
        for metric in ("execution", "latency", "contention"):
            error = abstraction_error(target, model, metric)
            row += f" {error:>9.1%}" if metric != "contention" else (
                f" {error:>10.1%}")
        print(row)
    print()
    print("Reading: CLogP's execution/latency errors stay small (the")
    print("paper's locality result); its contention error is the g")
    print("pessimism; LogP is wrong across the board.")


if __name__ == "__main__":
    main()
