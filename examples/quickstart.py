#!/usr/bin/env python
"""Quickstart: simulate one application on the three machine models.

Runs the FFT benchmark on an 8-processor 2-D mesh under

* the detailed CC-NUMA **target** (Berkeley directory coherence over a
  circuit-switched network),
* the **LogP** abstraction (no caches, network = L and g parameters),
* **CLogP** (LogP plus an ideal coherent cache),

and prints the SPASM-style overhead separation for each -- execution
time broken into computation, memory, network latency, network
contention, and synchronization.

Usage::

    python examples/quickstart.py
"""

from repro import SystemConfig, derive_logp, make_app, simulate
from repro.units import ns_to_us

PROCESSORS = 8
TOPOLOGY = "mesh"


def main() -> None:
    config = SystemConfig(processors=PROCESSORS, topology=TOPOLOGY)
    params = derive_logp(config)
    print(
        f"machine: {PROCESSORS} processors, {TOPOLOGY} interconnect, "
        f"LogP parameters L={ns_to_us(params.L_ns):.1f}us "
        f"g={ns_to_us(params.g_ns):.1f}us"
    )
    print()

    for machine in ("target", "clogp", "logp"):
        # A fresh application instance per run: the workload replays
        # identically because both draw from the same master seed.
        app = make_app("fft", PROCESSORS, points=2_048)
        result = simulate(app, machine, config)
        print(result.summary())
        print(
            f"          breakdown (mean/proc): "
            f"compute={result.mean_compute_us:9.1f}us  "
            f"memory={result.mean_memory_us:8.1f}us  "
            f"latency={result.mean_latency_us:8.1f}us  "
            f"contention={result.mean_contention_us:8.1f}us  "
            f"sync={result.mean_sync_us:8.1f}us"
        )
        print()

    print(
        "Things to notice (the paper's headline results):\n"
        "  * CLogP's latency overhead tracks the target's -- the LogP\n"
        "    L parameter abstracts the network latency well.\n"
        "  * CLogP's contention overhead exceeds the target's -- the\n"
        "    bisection-derived g parameter is pessimistic.\n"
        "  * LogP's latency is ~4x the others: without a cache, all 4\n"
        "    items of every 32-byte block are separate network trips."
    )


if __name__ == "__main__":
    main()
