#!/usr/bin/env python
"""Network abstraction study: how good are L and g?

Reproduces the reasoning of the paper's Section 6.1 for one application
across the three topologies.  For each network we compare the CLogP
machine (network abstracted by the LogP L and g parameters) against the
target machine (every message routed over real links):

* the **latency** overhead rows validate L: they should agree,
* the **contention** overhead rows expose g's pessimism: the
  bisection-bandwidth estimate assumes all traffic crosses the
  bisection, so it overshoots -- more severely the lower the network's
  connectivity (full -> cube -> mesh);
* the final section runs the paper's Section 7 relaxation (the g gap
  applied only between identical communication event types), which
  recovers much of the overshoot.

Usage::

    python examples/network_abstraction_study.py [app] [processors]
"""

import sys

from repro import SystemConfig, derive_logp, make_app, simulate
from repro.experiments.workloads import app_params
from repro.units import ns_to_us


def run(app_name, machine, nprocs, topology, relaxed=False):
    config = SystemConfig(
        processors=nprocs, topology=topology, g_per_event_type=relaxed
    )
    app = make_app(app_name, nprocs, **app_params(app_name))
    return simulate(app, machine, config)


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "fft"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    print(f"{app_name.upper()}, {nprocs} processors\n")
    print(f"{'network':8s} {'g (us)':>8s} "
          f"{'latency t':>10s} {'latency c':>10s} "
          f"{'content. t':>11s} {'content. c':>11s}")
    for topology in ("full", "cube", "mesh"):
        params = derive_logp(SystemConfig(processors=nprocs,
                                          topology=topology))
        target = run(app_name, "target", nprocs, topology)
        clogp = run(app_name, "clogp", nprocs, topology)
        print(
            f"{topology:8s} {ns_to_us(params.g_ns):8.2f} "
            f"{target.mean_latency_us:10.1f} {clogp.mean_latency_us:10.1f} "
            f"{target.mean_contention_us:11.1f} "
            f"{clogp.mean_contention_us:11.1f}"
        )
    print("\n('t' = target machine, 'c' = CLogP abstraction)")
    print("latency columns agree; contention columns drift apart as")
    print("connectivity falls -- g is computed from bisection bandwidth")
    print("and cannot see communication locality.\n")

    print("Section 7 relaxation on the cube (g between identical event "
          "types only):")
    strict = run(app_name, "clogp", nprocs, "cube")
    relaxed = run(app_name, "clogp", nprocs, "cube", relaxed=True)
    target = run(app_name, "target", nprocs, "cube")
    print(f"  target contention      : {target.mean_contention_us:10.1f} us")
    print(f"  CLogP strict g         : {strict.mean_contention_us:10.1f} us")
    print(f"  CLogP per-event-type g : {relaxed.mean_contention_us:10.1f} us")


if __name__ == "__main__":
    main()
