"""Per-processor execution profiles.

SPASM's profiling "provides a novel isolation and quantification of
different overheads"; these helpers render that view for one run --
useful for spotting imbalance (one processor's sync bucket dwarfing the
others') or a hot home node (one processor's contention out of line).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.accounting import RunResult
from ..units import ns_to_us


def processor_profile(result: RunResult) -> List[Dict[str, float]]:
    """Per-processor bucket values in microseconds."""
    out = []
    for pid, buckets in enumerate(result.buckets):
        row = {"pid": pid}
        for name, value in buckets.as_dict().items():
            row[name.replace("_ns", "_us")] = ns_to_us(value)
        row["total_us"] = ns_to_us(buckets.total_ns)
        out.append(row)
    return out


def profile_table(result: RunResult) -> str:
    """Text table of the per-processor profile."""
    lines = [
        f"{result.app} on {result.machine}/{result.topology} "
        f"p={result.nprocs}: total {result.total_us:.1f} us",
        "{:>5s} {:>12s} {:>10s} {:>10s} {:>12s} {:>10s} {:>10s} {:>12s}".format(
            "pid", "compute_us", "memory_us", "latency_us",
            "contention_us", "sync_us", "retry_us", "total_us",
        ),
    ]
    lines.extend(
        "{:>5d} {:>12.1f} {:>10.1f} {:>10.1f} {:>12.1f} {:>10.1f} "
        "{:>10.1f} {:>12.1f}".format(
            row["pid"],
            row["compute_us"],
            row["memory_us"],
            row["latency_us"],
            row["contention_us"],
            row["sync_us"],
            row["retry_us"],
            row["total_us"],
        )
        for row in processor_profile(result)
    )
    return "\n".join(lines)
