"""Scalability metrics over processor sweeps.

All functions take :class:`~repro.core.accounting.RunResult` objects
from a fixed-problem-size processor sweep (the paper's figures are such
sweeps) and return plain Python data, so they compose with any plotting
or tabulation the caller prefers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.accounting import RunResult
from ..errors import ReproError

#: Overhead bucket names in reporting order.
BUCKETS = ("compute_ns", "memory_ns", "latency_ns", "contention_ns",
           "sync_ns")


def _sorted_by_procs(results: Sequence[RunResult]) -> List[RunResult]:
    if not results:
        raise ReproError("no results supplied")
    ordered = sorted(results, key=lambda r: r.nprocs)
    seen = [r.nprocs for r in ordered]
    if len(set(seen)) != len(seen):
        raise ReproError(f"duplicate processor counts in sweep: {seen}")
    return ordered


def speedup_curve(results: Sequence[RunResult]) -> List[Tuple[int, float]]:
    """Speedup relative to the smallest machine in the sweep.

    If a 1-processor run is present it is the natural base; otherwise
    speedups are relative to the smallest processor count supplied
    (scaled so that point's speedup equals its processor count is *not*
    assumed -- the base gets speedup 1.0 times its own size factor of 1).
    """
    ordered = _sorted_by_procs(results)
    base = ordered[0]
    if base.total_ns <= 0:
        raise ReproError("base run has zero execution time")
    return [
        (r.nprocs, base.total_ns / r.total_ns * base.nprocs)
        for r in ordered
    ]


def efficiency_curve(results: Sequence[RunResult]) -> List[Tuple[int, float]]:
    """Parallel efficiency: speedup divided by processor count."""
    return [
        (nprocs, speed / nprocs)
        for nprocs, speed in speedup_curve(results)
    ]


def overhead_fractions(result: RunResult) -> Dict[str, float]:
    """Mean fraction of processor time in each overhead bucket."""
    totals = {name: 0 for name in BUCKETS}
    grand = 0
    for buckets in result.buckets:
        data = buckets.as_dict()
        for name in BUCKETS:
            totals[name] += data[name]
        grand += buckets.total_ns
    if grand == 0:
        return {name: 0.0 for name in BUCKETS}
    return {name: totals[name] / grand for name in BUCKETS}


def overhead_growth(
    results: Sequence[RunResult], bucket: str
) -> List[Tuple[int, float]]:
    """Mean per-processor overhead (us) of one bucket across the sweep.

    The SIGMETRICS'94 methodology reads scalability limits off these
    curves: a bucket that grows with p while useful work shrinks is the
    bottleneck.
    """
    if bucket not in BUCKETS:
        raise ReproError(f"unknown bucket {bucket!r}; known: {BUCKETS}")
    out = []
    for result in _sorted_by_procs(results):
        if result.buckets:
            mean = sum(
                getattr(b, bucket) for b in result.buckets
            ) / len(result.buckets)
        else:
            mean = 0.0
        out.append((result.nprocs, mean / 1_000.0))
    return out


def abstraction_error(
    reference: Sequence[RunResult],
    model: Sequence[RunResult],
    metric: str = "execution",
) -> float:
    """Mean relative error of a machine model against the target.

    This quantifies the paper's visual "the curves agree" judgments:
    ``abstraction_error(target_runs, clogp_runs, "latency")`` is small,
    ``abstraction_error(target_runs, logp_runs, "execution")`` is not.
    Points where the reference metric is ~0 (e.g. p=1 overheads) are
    skipped.
    """
    ref = _sorted_by_procs(reference)
    mod = _sorted_by_procs(model)
    if [r.nprocs for r in ref] != [m.nprocs for m in mod]:
        raise ReproError("sweeps cover different processor counts")
    errors = []
    for r, m in zip(ref, mod):
        ref_value = r.metric(metric)
        if ref_value < 1e-9:
            continue
        errors.append(abs(m.metric(metric) - ref_value) / ref_value)
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


def scalability_table(results: Sequence[RunResult]) -> str:
    """Text table: time, speedup, efficiency, overhead fractions."""
    ordered = _sorted_by_procs(results)
    speedups = dict(speedup_curve(ordered))
    lines = [
        "{:>5s} {:>12s} {:>8s} {:>6s} {:>8s} {:>8s} {:>8s} {:>8s} {:>8s}".format(
            "p", "time_us", "speedup", "eff", "compute", "memory",
            "latency", "content", "sync",
        )
    ]
    for result in ordered:
        fractions = overhead_fractions(result)
        lines.append(
            "{:>5d} {:>12.1f} {:>8.2f} {:>6.2f} {:>8.1%} {:>8.1%} "
            "{:>8.1%} {:>8.1%} {:>8.1%}".format(
                result.nprocs,
                result.total_us,
                speedups[result.nprocs],
                speedups[result.nprocs] / result.nprocs,
                fractions["compute_ns"],
                fractions["memory_ns"],
                fractions["latency_ns"],
                fractions["contention_ns"],
                fractions["sync_ns"],
            )
        )
    return "\n".join(lines)
