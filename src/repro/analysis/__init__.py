"""Scalability and overhead analysis on top of simulation results.

The SPASM simulator this paper builds on was introduced in the authors'
companion scalability work ("An Approach to Scalability Study of Shared
Memory Parallel Systems", SIGMETRICS 1994); its value was turning
overhead-separated runs into scalability statements.  This subpackage
provides the same post-processing over :class:`~repro.core.RunResult`
objects: speedup/efficiency curves, overhead fractions and growth
rates, and a quantitative "abstraction error" measure for comparing a
machine model against the target.
"""

from .scalability import (
    abstraction_error,
    efficiency_curve,
    overhead_fractions,
    overhead_growth,
    scalability_table,
    speedup_curve,
)
from .profile import processor_profile, profile_table

__all__ = [
    "speedup_curve",
    "efficiency_curve",
    "overhead_fractions",
    "overhead_growth",
    "abstraction_error",
    "scalability_table",
    "processor_profile",
    "profile_table",
]
