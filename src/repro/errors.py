"""Exception hierarchy for the repro package.

Every error deliberately raised by the simulator derives from
:class:`ReproError` so callers can catch simulator problems without
swallowing genuine programming errors (``TypeError`` etc.).

The hierarchy is a *taxonomy*, not just a namespace: below
:class:`ReproError` every concrete error is classified as either

* :class:`TransientError` -- the condition may clear on a re-attempt
  (a message exhausted its ARQ budget under fault injection, a worker
  process was killed by the host, a wall-clock deadline expired, a
  livelock tripped the watchdog), or
* :class:`PermanentError` -- retrying the identical spec is guaranteed
  to reproduce the failure (bad configuration, a deterministic
  deadlock, a violated invariant, failed verification).

The execution tier's retry policy (:mod:`repro.exec.policy`) keys off
exactly this split: only transient errors are ever re-attempted, so a
mis-configured sweep fails fast instead of burning its retry budget on
a failure that cannot change.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TransientError(ReproError):
    """An error that may clear if the run is re-attempted.

    The retry policy (:class:`repro.exec.policy.RetryPolicy`) only ever
    retries errors in this branch of the taxonomy.
    """


class PermanentError(ReproError):
    """An error that will deterministically recur on a re-attempt.

    Retrying is pointless: the failing condition is a property of the
    spec (configuration, workload, protocol), not of the host.
    """


class ConfigError(PermanentError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state."""


class DeadlockError(SimulationError, PermanentError):
    """The event queue drained while simulated processes were still blocked."""

    def __init__(self, blocked: int, now: int):
        self.blocked = blocked
        self.now = now
        super().__init__(
            f"simulation deadlocked at t={now} ns with {blocked} blocked process(es)"
        )


class WatchdogError(SimulationError, TransientError):
    """The engine exceeded its event budget without finishing.

    Distinct from :class:`DeadlockError`: the simulation is still making
    scheduler progress, just not *completing* -- typically a livelock
    (e.g. an unbounded retransmission loop).  Classified transient
    because livelocks arise under fault injection, where the historical
    behaviour was to re-attempt the run.  Carries progress diagnostics
    so the stuck state can be triaged without re-running.
    """

    def __init__(self, now: int, events: int, blocked: int, queued: int):
        self.now = now
        self.events = events
        self.blocked = blocked
        self.queued = queued
        super().__init__(
            f"watchdog: {events} events executed without completion at "
            f"t={now} ns ({blocked} blocked process(es), {queued} queued "
            f"event(s))"
        )


class RetryLimitError(TransientError):
    """Reliable delivery gave up: a message exhausted its retry budget."""

    def __init__(self, src: int, dst: int, attempts: int, now: int):
        self.src = src
        self.dst = dst
        self.attempts = attempts
        self.now = now
        super().__init__(
            f"message {src}->{dst} undeliverable after {attempts} "
            f"attempt(s) at t={now} ns"
        )


class DeadlineExpiredError(TransientError):
    """A run exceeded its host-side wall-clock deadline.

    Raised from the deadline guard (:func:`repro.exec.policy.deadline_guard`)
    inside the executing process, converting a hung point into a
    structured, retryable failure instead of blocking the sweep forever.
    """

    def __init__(self, deadline_s: float, elapsed_s: float):
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        super().__init__(
            f"run exceeded its {deadline_s:g} s wall-clock deadline "
            f"(ran for {elapsed_s:.2f} s)"
        )


class WorkerCrashError(TransientError):
    """A pool worker process died while executing a spec.

    Raised host-side by the supervisor when a worker is killed
    (``BrokenProcessPool``) and the in-flight spec has exhausted its
    resubmission budget.
    """

    def __init__(self, describe: str, resubmits: int):
        self.describe = describe
        self.resubmits = resubmits
        super().__init__(
            f"worker executing {describe} died; point resubmitted "
            f"{resubmits} time(s) without completing"
        )


class StoreIntegrityError(PermanentError):
    """A result-store operation could not be completed soundly."""


class InvariantError(PermanentError):
    """A runtime sanitizer checker detected a violated invariant.

    Carries the checker's name, the simulated time of the violation and
    a description of the offending state, so a failing run can be
    triaged without re-running under a debugger.
    """

    def __init__(self, checker: str, now: int, detail: str):
        self.checker = checker
        self.now = now
        self.detail = detail
        super().__init__(
            f"[{checker}] invariant violated at t={now} ns: {detail}"
        )


class ProtocolError(PermanentError):
    """A cache-coherence protocol invariant was violated."""


class TopologyError(PermanentError):
    """An interconnection-network topology was used incorrectly."""


class AddressError(PermanentError):
    """A simulated memory address is outside any allocated region."""


class ApplicationError(PermanentError):
    """An application produced an invalid operation or failed verification."""
