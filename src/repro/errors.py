"""Exception hierarchy for the repro package.

Every error deliberately raised by the simulator derives from
:class:`ReproError` so callers can catch simulator problems without
swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked."""

    def __init__(self, blocked: int, now: int):
        self.blocked = blocked
        self.now = now
        super().__init__(
            f"simulation deadlocked at t={now} ns with {blocked} blocked process(es)"
        )


class WatchdogError(SimulationError):
    """The engine exceeded its event budget without finishing.

    Distinct from :class:`DeadlockError`: the simulation is still making
    scheduler progress, just not *completing* -- typically a livelock
    (e.g. an unbounded retransmission loop).  Carries progress
    diagnostics so the stuck state can be triaged without re-running.
    """

    def __init__(self, now: int, events: int, blocked: int, queued: int):
        self.now = now
        self.events = events
        self.blocked = blocked
        self.queued = queued
        super().__init__(
            f"watchdog: {events} events executed without completion at "
            f"t={now} ns ({blocked} blocked process(es), {queued} queued "
            f"event(s))"
        )


class RetryLimitError(ReproError):
    """Reliable delivery gave up: a message exhausted its retry budget."""

    def __init__(self, src: int, dst: int, attempts: int, now: int):
        self.src = src
        self.dst = dst
        self.attempts = attempts
        self.now = now
        super().__init__(
            f"message {src}->{dst} undeliverable after {attempts} "
            f"attempt(s) at t={now} ns"
        )


class InvariantError(ReproError):
    """A runtime sanitizer checker detected a violated invariant.

    Carries the checker's name, the simulated time of the violation and
    a description of the offending state, so a failing run can be
    triaged without re-running under a debugger.
    """

    def __init__(self, checker: str, now: int, detail: str):
        self.checker = checker
        self.now = now
        self.detail = detail
        super().__init__(
            f"[{checker}] invariant violated at t={now} ns: {detail}"
        )


class ProtocolError(ReproError):
    """A cache-coherence protocol invariant was violated."""


class TopologyError(ReproError):
    """An interconnection-network topology was used incorrectly."""


class AddressError(ReproError):
    """A simulated memory address is outside any allocated region."""


class ApplicationError(ReproError):
    """An application produced an invalid operation or failed verification."""
