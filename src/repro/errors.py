"""Exception hierarchy for the repro package.

Every error deliberately raised by the simulator derives from
:class:`ReproError` so callers can catch simulator problems without
swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked."""

    def __init__(self, blocked: int, now: int):
        self.blocked = blocked
        self.now = now
        super().__init__(
            f"simulation deadlocked at t={now} ns with {blocked} blocked process(es)"
        )


class ProtocolError(ReproError):
    """A cache-coherence protocol invariant was violated."""


class TopologyError(ReproError):
    """An interconnection-network topology was used incorrectly."""


class AddressError(ReproError):
    """A simulated memory address is outside any allocated region."""


class ApplicationError(ReproError):
    """An application produced an invalid operation or failed verification."""
