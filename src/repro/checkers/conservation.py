"""Conservation sanitizer: time and messages are never lost.

Two families of invariants, both checked at end of run:

**Time conservation.**  The SPASM overhead separation is only an
*attribution* of execution time -- it must not create or destroy any.
For every processor, the sum of its buckets (compute + memory + latency
+ contention + sync + retry) must equal its finish time exactly: the
machine models clamp every charge against the observed elapsed window,
so the reconciliation tolerance is **zero nanoseconds** (``slack_ns``
exists for experimental models that cannot yet make that guarantee).
Negative buckets are always a violation.

**Message conservation.**  Every send must be matched by exactly one
delivery or a fault-accounted loss:

* on a fault-free network no message may go undelivered,
* under fault injection, undelivered transports must not exceed the
  injector's accounted verdicts (drops + corruptions + window drops) --
  a message that vanishes without a fault verdict is a leak,
* at end of run no network resource may still be held: all fabric links
  idle with empty queues, no banked-but-uncharged retry time, and no
  processor blocked on a message that never arrived.
"""

from __future__ import annotations

from .base import Checker


class ConservationChecker(Checker):
    """Bucket/wall-time reconciliation plus send/delivery matching."""

    name = "conservation"

    def __init__(self, slack_ns: int = 0):
        super().__init__()
        #: Permitted absolute reconciliation slack per processor, ns.
        self.slack_ns = slack_ns
        #: Message transports observed (one per transmit completion).
        self.sends = 0
        self.delivered = 0
        self.undelivered = 0

    def on_message(self, now: int, src: int, dst: int, kind: str,
                   nbytes: int, delivered: bool) -> None:
        self.checks += 1
        self.sends += 1
        if delivered:
            self.delivered += 1
        else:
            self.undelivered += 1

    # -- end of run ---------------------------------------------------------

    def finalize(self, machine) -> None:
        now = machine.sim.now
        self._check_buckets(machine, now)
        self._check_messages(machine, now)
        self._check_resources(machine, now)

    def _check_buckets(self, machine, now: int) -> None:
        for processor in machine.processors:
            self.checks += 1
            buckets = processor.buckets
            for name, value in buckets.as_dict().items():
                if value < 0:
                    self.violation(
                        now,
                        f"cpu{processor.pid} has negative bucket "
                        f"{name}={value}",
                    )
            drift = buckets.total_ns - processor.finish_ns
            if abs(drift) > self.slack_ns:
                self.violation(
                    now,
                    f"cpu{processor.pid} overhead buckets do not conserve "
                    f"time: sum={buckets.total_ns} ns vs finish="
                    f"{processor.finish_ns} ns (drift {drift:+d} ns, "
                    f"allowed {self.slack_ns})",
                )

    def _check_messages(self, machine, now: int) -> None:
        self.checks += 1
        if self.delivered + self.undelivered != self.sends:
            self.violation(
                now,
                f"message ledger inconsistent: {self.sends} sends != "
                f"{self.delivered} delivered + {self.undelivered} lost",
            )
        injector = getattr(machine, "fault_injector", None)
        if injector is None:
            if self.undelivered:
                self.violation(
                    now,
                    f"{self.undelivered} message(s) undelivered on a "
                    f"fault-free network",
                )
            return
        accounted = (
            injector.dropped + injector.corrupted + injector.window_drops
        )
        if self.undelivered > accounted:
            self.violation(
                now,
                f"{self.undelivered} undelivered message(s) but only "
                f"{accounted} fault-accounted loss verdict(s) "
                f"(dropped={injector.dropped}, "
                f"corrupted={injector.corrupted}, "
                f"window={injector.window_drops}): silent message loss",
            )

    def _check_resources(self, machine, now: int) -> None:
        # Banked ARQ recovery time must have been drained into buckets.
        pending = getattr(machine, "_retry_pending", None)
        if pending is not None:
            self.checks += 1
            leaked = [
                (pid, amount) for pid, amount in enumerate(pending) if amount
            ]
            if leaked:
                self.violation(
                    now,
                    f"banked retry time never charged to a bucket: {leaked}",
                )
        # Circuit-switched links must all be released.
        fabric = getattr(machine, "fabric", None)
        if fabric is not None:
            for link in fabric.links:
                self.checks += 1
                if link.in_use or link.queue_length:
                    self.violation(
                        now,
                        f"link {link.src}->{link.dst} leaked at end of run: "
                        f"in_use={link.in_use}, queued={link.queue_length}",
                    )
        # Directory serialization points must be idle.
        home_locks = getattr(machine, "_home_locks", None)
        if home_locks:
            for block, lock in home_locks.items():
                self.checks += 1
                if lock.in_use or lock.queue_length:
                    self.violation(
                        now,
                        f"directory lock of block {block} leaked: "
                        f"in_use={lock.in_use}, queued={lock.queue_length}",
                    )
        # No receiver may still be parked on an empty channel.
        waiters = getattr(machine, "_mp_waiters", None)
        if waiters is not None:
            self.checks += 1
            stuck = {key: len(events) for key, events in waiters.items()
                     if events}
            if stuck:
                self.violation(
                    now, f"receivers still blocked on channels: {stuck}"
                )
