"""Sanitizer framework: the Checker protocol and the CheckReport.

The simulator's correctness argument rests on invariants the models
maintain implicitly -- coherence keeps a single writer, the SPASM
buckets conserve time, the event heap never regresses, equal seeds give
equal executions, ARQ recovery delivers exactly once.  A *checker* is a
passive observer that verifies one such invariant at runtime.  Checkers
never schedule events, never draw randomness and never mutate simulator
state, so an instrumented run is bit-identical to an unchecked one; the
only cost is the observation itself.

Hook points
-----------
Checkers override any subset of the no-op hooks on :class:`Checker`:

``on_event(at, seq, action)``
    one engine scheduler step is about to execute (engine level),
``on_schedule(at, now)``
    an action was scheduled for simulated time ``at`` while the clock
    reads ``now`` (engine level),
``on_message(now, src, dst, kind, nbytes, delivered)``
    one network message finished transport (fabric and LogP network),
``on_transition(memory, pid, block, now)``
    a coherence state transition touched ``block`` (cached machines),
``on_logical_send / on_app_delivery / on_logical_complete``
    ARQ lifecycle of one reliably-delivered logical message,
``finalize(machine)``
    the run completed; end-of-run invariants go here.

:class:`CheckerSet` groups the active checkers and pre-resolves, per
hook, the subset that actually overrides it -- hook sites hold a tuple
that is empty (and therefore falsy, one branch) when no checker cares.

A violated invariant raises :class:`~repro.errors.InvariantError`
immediately, carrying the checker name, the simulated time, and the
offending state.  A clean run aggregates per-checker statistics into a
:class:`CheckReport` embedded in run results and sweep checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import InvariantError

#: Sanitizer levels accepted by ``SystemConfig.check`` / CLI ``--check``.
CHECK_LEVELS = ("off", "basic", "strict")


class Checker:
    """Base class of all sanitizer checkers (every hook is a no-op)."""

    #: Checker name used in reports and :class:`InvariantError`.
    name = "checker"

    def __init__(self) -> None:
        #: Individual invariant evaluations performed.
        self.checks = 0
        #: Violations detected (a violation also raises, so this is
        #: nonzero only in the instant before the raise propagates).
        self.violations = 0

    # -- violation helper ---------------------------------------------------

    def violation(self, now: int, detail: str) -> None:
        """Record and raise an :class:`InvariantError`."""
        self.violations += 1
        raise InvariantError(self.name, now, detail)

    # -- hooks (all optional) -----------------------------------------------

    def on_event(self, at: int, seq: int, action) -> None:
        """One engine scheduler step about to execute."""

    def on_schedule(self, at: int, now: int) -> None:
        """An action was scheduled at ``at`` while the clock reads ``now``."""

    def on_message(self, now: int, src: int, dst: int, kind: str,
                   nbytes: int, delivered: bool) -> None:
        """One network message finished transport."""

    def on_transition(self, memory, pid: int, block: int, now: int) -> None:
        """A coherence transition touched ``block``."""

    def on_logical_send(self, now: int, src: int, dst: int) -> None:
        """An ARQ logical message entered the reliable-delivery layer."""

    def on_app_delivery(self, now: int, src: int, dst: int,
                        duplicate: bool) -> None:
        """The receiver saw an intact copy (``duplicate``: suppressed)."""

    def on_logical_complete(self, now: int, src: int, dst: int) -> None:
        """An ARQ logical message was delivered and acknowledged."""

    def finalize(self, machine) -> None:
        """End-of-run invariants; called once after the run completes."""

    # -- reporting ----------------------------------------------------------

    def result(self) -> "CheckerResult":
        return CheckerResult(
            name=self.name, checks=self.checks, violations=self.violations
        )


@dataclass
class CheckerResult:
    """Statistics of one checker over one run."""

    name: str
    checks: int
    violations: int = 0

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "checks": int(self.checks),
            "violations": int(self.violations),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CheckerResult":
        return cls(
            name=data["name"],
            checks=int(data["checks"]),
            violations=int(data.get("violations", 0)),
        )


@dataclass
class CheckReport:
    """Aggregated sanitizer outcome of one completed run."""

    #: The ``--check`` level the run used.
    level: str
    results: List[CheckerResult] = field(default_factory=list)
    #: Hex state digest, when a determinism checker was attached.
    digest: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(result.violations == 0 for result in self.results)

    @property
    def total_checks(self) -> int:
        return sum(result.checks for result in self.results)

    def to_dict(self) -> Dict:
        return {
            "level": self.level,
            "results": [result.to_dict() for result in self.results],
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CheckReport":
        return cls(
            level=data["level"],
            results=[CheckerResult.from_dict(r) for r in data["results"]],
            digest=data.get("digest"),
        )

    def summary(self) -> str:
        checkers = ", ".join(
            f"{result.name}={result.checks}" for result in self.results
        )
        line = (
            f"sanitizer level={self.level}: {self.total_checks} checks "
            f"({checkers}) {'ok' if self.ok else 'VIOLATED'}"
        )
        if self.digest is not None:
            line += f" digest={self.digest}"
        return line


def _overrides(checker: Checker, hook: str) -> bool:
    """True when the checker's class overrides the named hook."""
    return getattr(type(checker), hook) is not getattr(Checker, hook)


class CheckerSet:
    """The active checkers of one machine, with per-hook dispatch lists.

    Hook sites store the relevant tuple directly (e.g. the fabric keeps
    ``checkers.message_hooks``); with no interested checker the tuple is
    empty and the site pays a single truthiness branch.
    """

    def __init__(self, level: str, checkers: Sequence[Checker]):
        self.level = level
        self.checkers = tuple(checkers)
        self.event_hooks = tuple(
            c.on_event for c in self.checkers if _overrides(c, "on_event")
        )
        self.schedule_hooks = tuple(
            c.on_schedule for c in self.checkers
            if _overrides(c, "on_schedule")
        )
        self.message_hooks = tuple(
            c.on_message for c in self.checkers if _overrides(c, "on_message")
        )
        self.transition_hooks = tuple(
            c.on_transition for c in self.checkers
            if _overrides(c, "on_transition")
        )
        #: Checkers that follow the ARQ logical-message lifecycle.
        self.arq_checkers = tuple(
            c for c in self.checkers
            if _overrides(c, "on_logical_send")
            or _overrides(c, "on_app_delivery")
            or _overrides(c, "on_logical_complete")
        )

    def __bool__(self) -> bool:
        return bool(self.checkers)

    def __iter__(self):
        return iter(self.checkers)

    def state_digest(self) -> Optional[str]:
        """Digest from the attached determinism checker, if any."""
        for checker in self.checkers:
            digest = getattr(checker, "state_digest", None)
            if digest is not None:
                return digest()
        return None

    def finalize(self, machine) -> CheckReport:
        """Run end-of-run checks and aggregate the report.

        :raises InvariantError: an end-of-run invariant is violated.
        """
        for checker in self.checkers:
            checker.finalize(machine)
        return CheckReport(
            level=self.level,
            results=[checker.result() for checker in self.checkers],
            digest=self.state_digest(),
        )
