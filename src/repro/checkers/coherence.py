"""Coherence sanitizer: SWMR and directory/cache cross-consistency.

Promotes the protocol invariants that were previously only asserted by
tests into an always-available runtime check.  After every protocol
transition (read fill, write/ownership acquisition, silent upgrade,
victim retirement) the checker verifies, for the touched block:

* the directory entry is self-consistent (owner is a sharer --
  :meth:`~repro.memory.directory.DirectoryEntry.check`),
* single-writer/multiple-reader: at most one owning cache, and a
  DIRTY/EXCLUSIVE holder is the *only* holder,
* directory <-> cache cross-consistency: every cached copy is in the
  sharer set, every sharer actually holds a line, and the directory's
  owner matches the caches' owner.

At ``--check=basic`` the per-block check runs after every transition
(O(P) per transition).  At ``--check=strict`` the *global* invariant
sweep (:meth:`~repro.core.coherence.CoherentMemory.check_invariants`,
O(resident blocks)) also runs after every transition -- expensive, but
it catches cross-block corruption the local check cannot see.  Both
levels run the global sweep once at end of run.
"""

from __future__ import annotations

from ..errors import InvariantError, ProtocolError
from .base import Checker


class CoherenceChecker(Checker):
    """Runtime SWMR + directory/cache consistency after each transition."""

    name = "coherence"

    def __init__(self, full: bool = False):
        super().__init__()
        #: Run the global invariant sweep after every transition
        #: (strict mode) instead of only the touched block.
        self.full = full

    def on_transition(self, memory, pid: int, block: int, now: int) -> None:
        self.checks += 1
        try:
            memory.check_block(block)
            if self.full:
                memory.check_invariants()
        except ProtocolError as exc:
            self.violations += 1
            raise InvariantError(self.name, now, str(exc)) from exc

    def finalize(self, machine) -> None:
        memory = getattr(machine, "memory", None)
        if memory is None or not hasattr(memory, "check_invariants"):
            return
        self.checks += 1
        try:
            memory.check_invariants()
        except ProtocolError as exc:
            self.violations += 1
            raise InvariantError(
                self.name, machine.sim.now, str(exc)
            ) from exc
