"""Runtime sanitizer subsystem: pluggable simulation invariant checkers.

The paper's whole argument rests on trusting the simulator, so the
machines can run with a set of passive *checkers* that verify global
invariants while the simulation executes -- coherence SWMR, overhead
conservation, event-time monotonicity, determinism digests, and
exactly-once ARQ delivery.  See :mod:`repro.checkers.base` for the hook
architecture.

Enable via ``SystemConfig(check="basic"|"strict")`` (CLI ``--check``),
or attach just the determinism digest with ``SystemConfig(digest=True)``
(CLI ``--digest``).  With ``check="off"`` no checker is constructed and
every hook site reduces to a single falsy branch, keeping unchecked
runs bit-identical to (and within noise of) pre-sanitizer behaviour.
"""

from __future__ import annotations

from typing import Optional

from .base import CHECK_LEVELS, Checker, CheckerResult, CheckerSet, CheckReport
from .coherence import CoherenceChecker
from .conservation import ConservationChecker
from .determinism import DeterminismChecker
from .exactly_once import ExactlyOnceChecker
from .monotonicity import MonotonicityChecker

__all__ = [
    "CHECK_LEVELS",
    "Checker",
    "CheckerResult",
    "CheckerSet",
    "CheckReport",
    "CoherenceChecker",
    "ConservationChecker",
    "DeterminismChecker",
    "ExactlyOnceChecker",
    "MonotonicityChecker",
    "make_checkers",
]


def make_checkers(config) -> Optional[CheckerSet]:
    """Build the checker set a :class:`~repro.config.SystemConfig` asks for.

    Returns None when nothing is enabled, so machines and hook sites can
    skip every sanitizer branch on the fast path.

    * ``basic``: per-block coherence checks, monotonicity, conservation,
      exactly-once ARQ accounting.
    * ``strict``: the same plus the global coherence sweep after every
      transition and the determinism digest.
    * ``digest=True`` attaches the determinism checker at any level,
      including ``off`` (observation only -- the digest never perturbs
      the run).
    """
    level = config.check
    checkers = []
    if level != "off":
        checkers.append(MonotonicityChecker())
        checkers.append(CoherenceChecker(full=(level == "strict")))
        checkers.append(ConservationChecker())
        checkers.append(ExactlyOnceChecker())
    if config.digest or level == "strict":
        checkers.append(DeterminismChecker())
    if not checkers:
        return None
    return CheckerSet(level, checkers)
