"""Engine-level time sanity: the clock only moves forward.

The event heap is keyed by ``(time, sequence)`` and the engine already
refuses to pop an event older than the clock; this checker verifies the
stronger properties the determinism argument rests on:

* executed events are observed in strictly increasing ``(time, seq)``
  order (the heap never yields a duplicate or reordered step),
* no action is ever scheduled into the past (negative durations would
  surface here before the engine trips over them),
* simulated time is never negative.
"""

from __future__ import annotations

from .base import Checker


class MonotonicityChecker(Checker):
    """Event times never regress; heap sequence order strictly increases."""

    name = "monotonicity"

    def __init__(self) -> None:
        super().__init__()
        self._last_at = -1
        self._last_seq = -1

    def on_schedule(self, at: int, now: int) -> None:
        self.checks += 1
        if at < now:
            self.violation(
                now, f"action scheduled into the past: at={at} < now={now}"
            )

    def on_event(self, at: int, seq: int, action) -> None:
        self.checks += 1
        if at < 0:
            self.violation(at, f"negative simulated time {at}")
        if (at, seq) <= (self._last_at, self._last_seq):
            self.violation(
                at,
                f"event order regressed: step (t={at}, seq={seq}) executed "
                f"after (t={self._last_at}, seq={self._last_seq})",
            )
        self._last_at = at
        self._last_seq = seq
