"""Rolling execution digest: equal seeds must mean equal runs.

Every figure in the study assumes the simulator is deterministic -- the
paper's machine comparisons are meaningless if two runs of the same
configuration diverge.  This checker folds an order-sensitive summary of
the execution into a rolling BLAKE2b hash:

* every engine scheduler step as ``(time, sequence, action kind)``,
  where the kind is the executed callable's qualified name (so the
  digest pins both *when* things happen and *what* kind of thing), and
* every network message as ``(time, src, dst, kind, size, delivered)``.

Two runs with the same seed and configuration must produce identical
digests on every machine model and topology; the golden digests under
``tests/goldens/`` gate exactly that across code changes.  The digest is
exposed as :meth:`~repro.engine.core.Simulator.state_digest` and via the
CLI ``--digest`` flag.
"""

from __future__ import annotations

import hashlib

from .base import Checker


class DeterminismChecker(Checker):
    """Order-sensitive hash of (time, event-kind, payload) tuples."""

    name = "determinism"

    def __init__(self) -> None:
        super().__init__()
        self._hash = hashlib.blake2b(digest_size=16)

    def on_event(self, at: int, seq: int, action) -> None:
        self.checks += 1
        kind = getattr(action, "__qualname__", None)
        if kind is None:  # pragma: no cover - exotic callables
            kind = type(action).__name__
        self._hash.update(b"E%d:%d:%s;" % (at, seq, kind.encode("ascii")))

    def on_message(self, now: int, src: int, dst: int, kind: str,
                   nbytes: int, delivered: bool) -> None:
        self.checks += 1
        self._hash.update(
            b"M%d:%d:%d:%s:%d:%d;"
            % (now, src, dst, kind.encode("ascii"), nbytes, delivered)
        )

    def state_digest(self) -> str:
        """Hex digest of everything observed so far."""
        return self._hash.copy().hexdigest()
