"""Exactly-once sanitizer for ARQ reliable delivery.

Under fault injection every logical message travels through a
retransmission protocol whose correctness claim is *exactly-once
application-level delivery*: retransmissions and lost acks may put many
copies on the wire, but duplicate suppression must hand the application
precisely one.  This checker follows the lifecycle hooks emitted by
:class:`~repro.faults.reliable.ReliableTransport` and the LogP
network's abstracted ARQ path:

* ``on_logical_send`` -- a logical message entered the layer,
* ``on_app_delivery`` -- the receiver saw an intact copy; ``duplicate``
  says whether sequence-number suppression discarded it,
* ``on_logical_complete`` -- the exchange finished (data + ack).

Invariants: a channel can never accept more first-deliveries than it
had sends (checked at delivery time), and at end of run every completed
logical message has exactly one accepted delivery per channel.  On a
fault-free run the layer is bypassed entirely, so all counters stay
zero and the checker is free.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .base import Checker

Channel = Tuple[int, int]


class ExactlyOnceChecker(Checker):
    """ARQ duplicate suppression yields exactly-once delivery."""

    name = "exactly-once"

    def __init__(self) -> None:
        super().__init__()
        self._started: Dict[Channel, int] = {}
        self._accepted: Dict[Channel, int] = {}
        self._completed: Dict[Channel, int] = {}
        #: Duplicate deliveries the receiver suppressed (informational).
        self.duplicates = 0

    def on_logical_send(self, now: int, src: int, dst: int) -> None:
        self.checks += 1
        channel = (src, dst)
        self._started[channel] = self._started.get(channel, 0) + 1

    def on_app_delivery(self, now: int, src: int, dst: int,
                        duplicate: bool) -> None:
        self.checks += 1
        if duplicate:
            self.duplicates += 1
            return
        channel = (src, dst)
        accepted = self._accepted.get(channel, 0) + 1
        self._accepted[channel] = accepted
        if accepted > self._started.get(channel, 0):
            self.violation(
                now,
                f"channel {src}->{dst} accepted {accepted} application "
                f"deliveries for {self._started.get(channel, 0)} logical "
                f"send(s): duplicate suppression failed",
            )

    def on_logical_complete(self, now: int, src: int, dst: int) -> None:
        self.checks += 1
        channel = (src, dst)
        self._completed[channel] = self._completed.get(channel, 0) + 1

    def finalize(self, machine) -> None:
        now = machine.sim.now
        channels = set(self._started) | set(self._accepted) | set(
            self._completed
        )
        for channel in sorted(channels):
            self.checks += 1
            accepted = self._accepted.get(channel, 0)
            completed = self._completed.get(channel, 0)
            if accepted != completed:
                src, dst = channel
                self.violation(
                    now,
                    f"channel {src}->{dst} completed {completed} logical "
                    f"message(s) but accepted {accepted} application "
                    f"deliveries: delivery is not exactly-once",
                )
