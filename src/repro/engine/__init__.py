"""Process-oriented discrete-event simulation engine.

This subpackage is the stand-in for CSIM, the sequential simulation
library the paper's SPASM simulator was built on.  It provides:

* :class:`~repro.engine.core.Simulator` -- the event loop with an
  integer-nanosecond clock,
* :class:`~repro.engine.core.Process` -- simulated processes written as
  Python generators that ``yield`` events,
* :class:`~repro.engine.core.Event` / timeouts / :func:`all_of`,
* :class:`~repro.engine.resource.Resource` -- FIFO resources with
  capacity (used for network links and directory serialization),
* :class:`~repro.engine.rng.RandomStreams` -- deterministic, named
  random streams so every machine model replays identical workloads.
"""

from .core import Event, Process, Simulator, Timeout, all_of
from .resource import Resource
from .rng import RandomStreams

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "Timeout",
    "all_of",
    "Resource",
    "RandomStreams",
]
