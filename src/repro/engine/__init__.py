"""Process-oriented discrete-event simulation engine.

This subpackage is the stand-in for CSIM, the sequential simulation
library the paper's SPASM simulator was built on.  It provides:

* :class:`~repro.engine.core.Simulator` -- the event loop with an
  integer-nanosecond clock (the *object* kernel, also the instrumented
  path for sanitizer checkers),
* :class:`~repro.engine.soa.SoaSimulator` -- the struct-of-arrays
  kernel, the default un-instrumented fast path,
* :func:`make_simulator` -- the kernel-selecting factory machines use,
* :class:`~repro.engine.core.Process` -- simulated processes written as
  Python generators that ``yield`` events,
* :class:`~repro.engine.core.Event` / timeouts / :func:`all_of`,
* :class:`~repro.engine.resource.Resource` -- FIFO resources with
  capacity (used for network links and directory serialization),
* :class:`~repro.engine.rng.RandomStreams` -- deterministic, named
  random streams so every machine model replays identical workloads.
"""

import os
import warnings

from .compiled import HAVE_EXTENSION, CompiledSimulator
from .core import TURN, Acquirable, Event, Process, Simulator, Timeout, all_of
from .resource import Resource
from .rng import RandomStreams
from .soa import SoaSimulator

#: Recognized values for the kernel knob (``REPRO_ENGINE`` /
#: ``SystemConfig.engine_kernel`` / ``--engine``).
KERNELS = ("auto", "soa", "compiled", "object")


def resolve_kernel(kernel: str = "auto") -> str:
    """Resolve a kernel knob value to a concrete kernel name.

    ``"auto"`` consults the ``REPRO_ENGINE`` environment variable and
    otherwise picks the compiled tier when the ``_csoa`` extension is
    loaded, falling back to the pure-Python SoA kernel.  An explicit
    ``"compiled"`` request on a host without the extension degrades to
    ``"soa"`` with a ``RuntimeWarning`` -- missing the optional build
    is never an error.  Raises ``ValueError`` on an unrecognized name
    (config-layer validation wraps this in ``ConfigError`` with
    context).
    """
    if kernel == "auto":
        kernel = os.environ.get("REPRO_ENGINE", "").strip().lower() or "auto"
        if kernel == "auto":
            kernel = "compiled" if HAVE_EXTENSION else "soa"
    if kernel == "compiled" and not HAVE_EXTENSION:
        warnings.warn(
            "engine kernel 'compiled' requested but the repro.engine._csoa "
            "extension is not available (not built, or disabled via "
            "REPRO_CSOA); falling back to the pure-Python 'soa' kernel, "
            "which executes the identical event sequence",
            RuntimeWarning,
            stacklevel=2,
        )
        kernel = "soa"
    if kernel not in ("soa", "compiled", "object"):
        raise ValueError(
            f"unknown engine kernel {kernel!r}; expected one of {KERNELS}"
        )
    return kernel


def make_simulator(checkers=(), kernel: str = "auto",
                   fail_fast: bool = True) -> Simulator:
    """Build a simulator on the selected kernel.

    The *object-path-for-hooks invariant* lives here: whenever any
    attached checker installs engine-level hooks (``on_event`` /
    ``on_spawn``), the object kernel is used regardless of the knob, so
    sanitizers always observe real ``(time, seq, action)`` triples.
    All kernels execute identical event sequences, so flipping the
    knob never changes results -- only host time.
    """
    resolved = resolve_kernel(kernel)
    sim = Simulator(fail_fast=fail_fast, checkers=checkers)
    if resolved == "object" or sim._instrumented:
        return sim
    if resolved == "compiled":
        return CompiledSimulator(fail_fast=fail_fast, checkers=checkers)
    return SoaSimulator(fail_fast=fail_fast, checkers=checkers)


__all__ = [
    "Event",
    "Process",
    "Simulator",
    "SoaSimulator",
    "CompiledSimulator",
    "HAVE_EXTENSION",
    "Timeout",
    "TURN",
    "Acquirable",
    "all_of",
    "make_simulator",
    "resolve_kernel",
    "KERNELS",
    "Resource",
    "RandomStreams",
]
