"""Core discrete-event machinery: clock, events, processes.

Simulated processes are plain Python generators.  A process advances by
``yield``-ing :class:`Event` objects; the engine resumes it (with the
event's value sent into the generator) once the event triggers.  A
generator may also delegate with ``yield from`` to compose behaviour,
which the machine models use heavily: an application generator delegates
to a processor generator which delegates to cache/network generators.

Design notes
------------
* Time is an integer nanosecond count (see :mod:`repro.units`).
* The event queue is a binary heap keyed by ``(time, sequence)`` so
  same-time events fire in schedule order -- this makes every run
  deterministic, which the tests rely on.
* Events trigger *immediately* (callbacks run synchronously from
  ``succeed``) only if the engine is not mid-callback for that event;
  to keep semantics simple we always defer callbacks through the queue
  at the current time.  ``succeed`` is therefore safe to call from any
  context, including from inside another callback.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from ..errors import DeadlockError, ReproError, SimulationError, WatchdogError

#: Type alias for simulated-process generators.
ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once.  Processes waiting on the event resume at
    the simulated time of the trigger with ``value`` sent into their
    generator (or the exception thrown into it).
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value", "_exception")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: Optional[List[Callable[[Event], None]]] = []
        self.triggered = False
        self.value: Any = None
        self._exception: Optional[BaseException] = None

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into their generator.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.triggered = True
        self._exception = exception
        self.sim._schedule_event(self)
        return self

    # -- waiting ------------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event triggers.

        If the event already ran its callbacks, the callback fires on the
        next queue step at the current time (never synchronously).
        """
        if self._callbacks is None:
            # Already dispatched: schedule a late joiner.
            self.sim._schedule(self.sim.now, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.triggered = True  # nobody may succeed() it again
        self.value = value
        sim._schedule(sim.now + delay, self._dispatch)


class Process(Event):
    """A simulated process driving a generator.

    The process is itself an :class:`Event` that triggers when the
    generator returns; its ``value`` is the generator's return value.
    Other processes can therefore ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "name")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "process"):
        super().__init__(sim)
        self._generator = generator
        self.name = name
        sim._blocked += 1
        sim._schedule(sim.now, lambda: self._step(None, None))

    def _on_wait_done(self, event: Event) -> None:
        if event._exception is not None:
            self._step(None, event._exception)
        else:
            self._step(event.value, None)

    def _step(self, value: Any, exception: Optional[BaseException]) -> None:
        sim = self.sim
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            sim._blocked -= 1
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._blocked -= 1
            if sim.fail_fast:
                if isinstance(exc, ReproError):
                    # Simulator errors keep their type so callers can
                    # catch e.g. RetryLimitError specifically.
                    raise
                raise SimulationError(
                    f"process {self.name!r} raised {exc!r} at t={sim.now}"
                ) from exc
            self.fail(exc)
            return
        if not isinstance(target, Event):
            sim._blocked -= 1
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event objects"
            )
            raise error
        target.add_callback(self._on_wait_done)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.spawn(my_generator())
        sim.run()

    ``run`` executes events until the queue drains (or an optional time
    horizon).  If the queue drains while spawned processes are still
    blocked, a :class:`DeadlockError` is raised -- that always indicates
    a bug in a machine model or application (e.g. a barrier nobody
    releases).
    """

    def __init__(self, fail_fast: bool = True, checkers=()):
        self._now = 0
        self._queue: List = []
        self._sequence = 0
        self._blocked = 0
        #: When True (default) an exception escaping a process aborts the
        #: whole simulation immediately instead of failing the process
        #: event silently.
        self.fail_fast = fail_fast
        #: Count of low-level scheduler steps; exposed because the paper's
        #: "speed of simulation" comparison is about event counts.
        self.events_executed = 0
        #: Sanitizer checkers observing this engine (see
        #: :mod:`repro.checkers`).  Only their engine-level hooks are
        #: dispatched here; machine models wire the rest.
        from ..checkers.base import Checker
        self.checkers = tuple(checkers)
        self._event_hooks = tuple(
            checker.on_event for checker in self.checkers
            if getattr(type(checker), "on_event", None)
            not in (None, Checker.on_event)
        )
        self._schedule_hooks = tuple(
            checker.on_schedule for checker in self.checkers
            if getattr(type(checker), "on_schedule", None)
            not in (None, Checker.on_schedule)
        )

    def state_digest(self) -> Optional[str]:
        """Rolling execution digest, or None without a determinism checker.

        Two runs of the same seed and configuration must return the same
        value -- the property the golden-digest regression tests gate.
        """
        for checker in self.checkers:
            digest = getattr(checker, "state_digest", None)
            if digest is not None:
                return digest()
        return None

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling primitives ----------------------------------------------

    def _schedule(self, at: int, action: Callable[[], None]) -> None:
        if self._schedule_hooks:
            for hook in self._schedule_hooks:
                hook(at, self._now)
        self._sequence += 1
        heapq.heappush(self._queue, (at, self._sequence, action))

    def _schedule_event(self, event: Event) -> None:
        self._schedule(self._now, event._dispatch)

    # -- public API ----------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: ProcessGenerator, name: str = "process") -> Process:
        """Start a new simulated process."""
        return Process(self, generator, name)

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None,
            until_ns: Optional[int] = None) -> int:
        """Execute events; return the final simulated time.

        :param until: optional horizon; events at times strictly greater
            than ``until`` are left in the queue and the clock stops at
            ``until``.
        :param until_ns: alias for ``until`` (they may not both be set).
        :param max_events: watchdog budget -- if this many events execute
            within this ``run`` call without the queue draining, a
            :class:`~repro.errors.WatchdogError` is raised with progress
            diagnostics.  This is the defense against livelock (e.g. a
            retry loop that never converges), which -- unlike deadlock --
            keeps the queue busy forever and would otherwise hang the
            host process.
        :raises DeadlockError: the queue drained with blocked processes.
        :raises WatchdogError: the ``max_events`` budget was exhausted.
        """
        if until_ns is not None:
            if until is not None:
                raise SimulationError("pass either until or until_ns, not both")
            until = until_ns
        if max_events is not None and max_events <= 0:
            raise SimulationError(
                f"max_events must be positive, got {max_events}"
            )
        queue = self._queue
        event_hooks = self._event_hooks
        executed = 0
        while queue:
            at, seq, action = queue[0]
            if until is not None and at > until:
                self._now = until
                return self._now
            if max_events is not None and executed >= max_events:
                raise WatchdogError(
                    self._now, executed, self._blocked, len(queue)
                )
            heapq.heappop(queue)
            if at < self._now:
                raise SimulationError(
                    f"time went backwards: {at} < {self._now}"
                )
            self._now = at
            self.events_executed += 1
            executed += 1
            if event_hooks:
                for hook in event_hooks:
                    hook(at, seq, action)
            action()
        if until is None and self._blocked > 0:
            raise DeadlockError(self._blocked, self._now)
        if until is not None:
            self._now = max(self._now, until)
        return self._now


def all_of(sim: Simulator, events: List[Event]) -> Event:
    """Return an event that triggers once every listed event has.

    The composite's value is the list of individual event values in the
    order given.  An empty list yields an event that triggers at the
    current time.
    """
    done = Event(sim)
    remaining = len(events)
    if remaining == 0:
        done.succeed([])
        return done
    values: List[Any] = [None] * remaining
    state = {"left": remaining}

    def make_callback(index: int) -> Callable[[Event], None]:
        def callback(event: Event) -> None:
            if event._exception is not None:
                if not done.triggered:
                    done.fail(event._exception)
                return
            values[index] = event.value
            state["left"] -= 1
            if state["left"] == 0 and not done.triggered:
                done.succeed(values)

        return callback

    for i, event in enumerate(events):
        event.add_callback(make_callback(i))
    return done
