"""Core discrete-event machinery: clock, events, processes.

Simulated processes are plain Python generators.  A process advances by
``yield``-ing :class:`Event` objects; the engine resumes it (with the
event's value sent into the generator) once the event triggers.  A
generator may also delegate with ``yield from`` to compose behaviour,
which the machine models use heavily: an application generator delegates
to a processor generator which delegates to cache/network generators.

Design notes
------------
* Time is an integer nanosecond count (see :mod:`repro.units`).
* Pending *future* work lives in a binary heap keyed by
  ``(time, sequence)`` so same-time events fire in schedule order --
  this makes every run deterministic, which the tests rely on.
* Work scheduled at the *current* time -- event dispatches from
  :meth:`Event.succeed`, zero-delay timeouts, process start-ups --
  bypasses the heap through a FIFO ring (a ``deque``).  This preserves
  the exact ``(time, sequence)`` execution order of the heap-only
  engine: every heap entry for time ``t`` was necessarily pushed while
  ``now < t`` (once the clock reaches ``t`` a same-time schedule goes
  to the ring instead), so its sequence number is smaller than that of
  any ring entry created at ``t``.  The run loop therefore drains all
  heap entries at ``now`` before touching the ring, and the ring is
  FIFO, which is sequence order.
* Events trigger *immediately* (callbacks run synchronously from
  ``succeed``) only if the engine is not mid-callback for that event;
  to keep semantics simple we always defer callbacks through the ring
  at the current time.  ``succeed`` is therefore safe to call from any
  context, including from inside another callback.
* When sanitizer checkers attach engine hooks the engine runs the
  legacy heap-only path so every action carries a real ``(time, seq)``
  pair for the hooks; both paths execute identical event sequences.
* ``Timeout`` objects created through :meth:`Simulator.timeout` are
  pooled: after a timeout expires and its callbacks have run, the
  object is recycled for the next ``timeout()`` call.  Internal code
  never touches a timeout after resuming from it, which makes this
  safe; holding a reference to an *expired* timeout (e.g. registering
  a late callback on it) is not supported for pooled timeouts.
* Two allocation-free yield forms exist for the hottest waits.  A
  process may ``yield <int>`` for a plain sleep nobody else observes
  (equivalent to ``yield sim.timeout(n)``, minus the Timeout object),
  and may ``yield TURN`` after taking a free resource synchronously
  via ``Resource.try_acquire`` (equivalent to yielding the granted
  event).  Both re-enqueue the process at exactly the queue position
  the event-based form would have used, so the executed event sequence
  -- and therefore every simulated result -- is identical.
* A process may also ``yield`` an :class:`Acquirable` (a
  :class:`~repro.engine.resource.Resource`) directly; the engine then
  resolves the grant in whichever way is cheapest for the running
  kernel.  On this object kernel a free resource behaves exactly like
  the ``try_acquire`` + ``TURN`` pair and a busy one exactly like
  yielding ``request()`` -- same scheduled actions, same ``(time,
  seq)`` positions, so instrumented digests are unchanged.  The
  struct-of-arrays kernel (:mod:`repro.engine.soa`) instead parks the
  process as a packed integer in the resource's waiter queue, which is
  why the call sites moved to this form.
* This module is the *object* kernel.  The un-instrumented fast path
  normally runs on the struct-of-arrays kernel in
  :mod:`repro.engine.soa`; use :func:`repro.engine.make_simulator` to
  select one.  Whenever sanitizer checkers attach engine hooks the
  object kernel is used regardless, so hooks always observe real
  ``(time, seq)`` actions.
"""

from __future__ import annotations

import heapq
from collections import deque
from functools import partial
from typing import Any, Callable, Dict, Generator, List, Optional

from ..errors import DeadlockError, ReproError, SimulationError, WatchdogError

#: Type alias for simulated-process generators.
ProcessGenerator = Generator["Event", Any, Any]


class _Turn:
    """Sentinel a generator yields after a synchronous resource grant.

    When a :class:`~repro.engine.resource.Resource` is free, the
    requester may take it synchronously (``try_acquire``) and then
    ``yield TURN`` instead of yielding a granted :class:`Event`.  The
    engine re-enqueues the process at the exact queue position the
    event's dispatch would have occupied -- the executed event sequence
    is identical to the event-based grant -- but no Event, callback
    list, or bound-method allocation happens.  The process resumes with
    a value of ``0`` (the wait duration of an immediate grant).
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TURN"


#: The singleton yielded for synchronous grants (see :class:`_Turn`).
TURN = _Turn()


class _FlatTx:
    """Sentinel yielded by a caller whose memory transaction runs as a
    flat op.

    On a flat-capable kernel a machine may compile a whole directory
    transaction into a tag-dispatched table entry
    (:meth:`repro.engine.soa.SoaSimulator.flat_transact`).  The caller
    then yields this sentinel instead of delegating to the transaction
    generator; the kernel parks the process on the op and resumes it
    with the transaction's ``(latency_ns, service_ns)`` tuple when the
    op completes -- at the exact event the generator form's ``return``
    would have resumed it, so the executed event sequence is identical.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FLAT_TX"


#: The singleton yielded after ``flat_transact`` (see :class:`_FlatTx`).
FLAT_TX = _FlatTx()


class Acquirable:
    """Marker base for counted FIFO resources a process may ``yield``.

    Subclasses (:class:`~repro.engine.resource.Resource`) expose the
    grant protocol both kernels rely on -- ``in_use``, ``capacity``,
    ``_waiters``, ``try_acquire()`` and ``request()`` -- and the SoA
    kernel inlines the attribute form of ``try_acquire`` on its hot
    path, so the attribute names are part of the contract.  The marker
    lives here (rather than next to Resource) because the process-step
    dispatch below must recognize it without importing the resource
    module, which imports this one.
    """

    __slots__ = ()


#: Bits a packed resource waiter reserves for the process index: the
#: SoA kernel parks a waiting process in a Resource's queue as the
#: integer ``(wait_start_ns << PROC_BITS) | process_index`` instead of
#: allocating a request Event.  20 bits caps *live* (not total)
#: processes at ~1M, far beyond any simulated machine here; spawn
#: raises cleanly at the limit.
PROC_BITS = 20
PROC_MASK = (1 << PROC_BITS) - 1


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once.  Processes waiting on the event resume at
    the simulated time of the trigger with ``value`` sent into their
    generator (or the exception thrown into it).
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value", "_exception")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: Optional[List[Callable[[Event], None]]] = []
        self.triggered = False
        self.value: Any = None
        self._exception: Optional[BaseException] = None

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into their generator.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.triggered = True
        self._exception = exception
        self.sim._schedule_event(self)
        return self

    # -- waiting ------------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event triggers.

        If the event already ran its callbacks, the callback fires on the
        next queue step at the current time (never synchronously).
        """
        if self._callbacks is None:
            # Already dispatched: schedule a late joiner.
            self.sim._schedule(self.sim._now, partial(callback, self))
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                # Under the SoA kernel a waiting process is parked as a
                # plain int (its process index), and a flat transaction
                # op waiting on its invalidation join is parked as the
                # complement ``~opidx`` (negative, so it cannot collide
                # with a process index); the object kernel only ever
                # registers callables, so both branches are dead there.
                if callback.__class__ is int:
                    if callback >= 0:
                        self.sim._advance(
                            callback, self.value, self._exception
                        )
                    else:
                        self.sim._flat_resume(
                            ~callback, self.value, self._exception
                        )
                else:
                    callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    Timeouts obtained from :meth:`Simulator.timeout` are recycled after
    they expire (see the module design notes); constructing ``Timeout``
    directly yields an unpooled one-shot object.
    """

    __slots__ = ("_expire_bound",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None,
                 _pooled: bool = False):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.sim = sim
        self._callbacks = []
        self.triggered = True  # nobody may succeed() it again
        self.value = value
        self._exception = None
        self._expire_bound = self._expire_pooled if _pooled else self._dispatch
        sim._schedule(sim._now + delay, self._expire_bound)

    def _expire_pooled(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                if callback.__class__ is int:
                    # SoA-kernel waiter (see Event._dispatch).
                    self.sim._advance(callback, self.value, None)
                else:
                    callback(self)
            callbacks.clear()
        else:
            callbacks = []
        # Reset and return to the pool; the callbacks list is reused.
        self._callbacks = callbacks
        self.value = None
        self.sim._timeout_pool.append(self)


class Process(Event):
    """A simulated process driving a generator.

    The process is itself an :class:`Event` that triggers when the
    generator returns; its ``value`` is the generator's return value.
    Other processes can therefore ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "name", "_waiter", "_resume_zero",
                 "_resume_none")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "process"):
        self.sim = sim
        self._callbacks = []
        self.triggered = False
        self.value = None
        self._exception = None
        self._generator = generator
        self.name = name
        # Bind once: ``_step`` registers the waiter on every yielded
        # event, and attribute access on a method would allocate a fresh
        # bound method each time.
        self._waiter = self._on_wait_done
        # Reusable resumptions for ``yield TURN`` (immediate grants)
        # and ``yield <int>`` (plain sleeps).
        self._resume_zero = partial(self._step, 0, None)
        self._resume_none = partial(self._step, None, None)
        sim._blocked += 1
        sim._schedule(sim._now, self._start)

    def _start(self) -> None:
        self._step(None, None)

    def _on_wait_done(self, event: Event) -> None:
        if event._exception is not None:
            self._step(None, event._exception)
        else:
            self._step(event.value, None)

    def _step(self, value: Any, exception: Optional[BaseException]) -> None:
        sim = self.sim
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            sim._blocked -= 1
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._blocked -= 1
            if sim.fail_fast:
                if isinstance(exc, ReproError):
                    # Simulator errors keep their type so callers can
                    # catch e.g. RetryLimitError specifically.
                    raise
                raise SimulationError(
                    f"process {self.name!r} raised {exc!r} at t={sim.now}"
                ) from exc
            self.fail(exc)
            return
        if type(target) is int:
            # Plain sleep: resume ``target`` ns from now, at the queue
            # position a Timeout's expiry action would have occupied --
            # without allocating (or pooling) a Timeout at all.
            if target < 0:
                sim._blocked -= 1
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {target}"
                )
            sim._schedule(sim._now + target, self._resume_none)
            return
        if target is TURN:
            # Synchronous grant: resume on the next queue step at the
            # position an event dispatch would have taken.
            sim._schedule(sim._now, self._resume_zero)
            return
        if isinstance(target, Event):
            callbacks = target._callbacks
            if callbacks is None:
                # Already dispatched: resume on the next queue step.
                sim._schedule(sim._now, partial(self._waiter, target))
            else:
                callbacks.append(self._waiter)
            return
        if isinstance(target, Acquirable):
            # Kernel-resolved resource grant (``yield resource``).  A
            # free resource behaves exactly like the try_acquire + TURN
            # pair; a busy one exactly like yielding ``request()`` --
            # the scheduled actions (and thus instrumented digests) are
            # identical to the old call-site spelling.
            if target.try_acquire():
                sim._schedule(sim._now, self._resume_zero)
            else:
                target.request()._callbacks.append(self._waiter)
            return
        sim._blocked -= 1
        raise SimulationError(
            f"process {self.name!r} yielded {target!r}; processes must "
            "yield an Event, a Resource, an int delay, or TURN"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.spawn(my_generator())
        sim.run()

    ``run`` executes events until the queue drains (or an optional time
    horizon).  If the queue drains while spawned processes are still
    blocked, a :class:`DeadlockError` is raised -- that always indicates
    a bug in a machine model or application (e.g. a barrier nobody
    releases).
    """

    #: Kernel name reported in profiles and result metadata.  This
    #: class is the object kernel; :class:`repro.engine.soa.SoaSimulator`
    #: overrides it.
    kernel = "object"

    #: Whether this kernel executes flattened leaf resumes (flat ops,
    #: see :meth:`repro.engine.soa.SoaSimulator.flat_transmit`).  Call
    #: sites that can post one check this flag and fall back to the
    #: generator form on the object kernel -- both produce the same
    #: event sequence.
    _flat_capable = False

    def __init__(self, fail_fast: bool = True, checkers=()):
        self._now = 0
        self._queue: List = []
        self._fifo: deque = deque()
        self._sequence = 0
        self._blocked = 0
        self._timeout_pool: List[Timeout] = []
        #: When True (default) an exception escaping a process aborts the
        #: whole simulation immediately instead of failing the process
        #: event silently.
        self.fail_fast = fail_fast
        #: Count of low-level scheduler steps; exposed because the paper's
        #: "speed of simulation" comparison is about event counts.
        self.events_executed = 0
        # Allocation-light profiling counters (always maintained; plain
        # integer bumps are far cheaper than the allocations they count).
        self._ring_scheduled = 0
        self._timeouts_issued = 0
        self._timeouts_pooled = 0
        self._processes_spawned = 0
        self._ring_executed = 0
        #: Sanitizer checkers observing this engine (see
        #: :mod:`repro.checkers`).  Only their engine-level hooks are
        #: dispatched here; machine models wire the rest.
        from ..checkers.base import Checker
        self.checkers = tuple(checkers)
        self._event_hooks = tuple(
            checker.on_event for checker in self.checkers
            if getattr(type(checker), "on_event", None)
            not in (None, Checker.on_event)
        )
        self._schedule_hooks = tuple(
            checker.on_schedule for checker in self.checkers
            if getattr(type(checker), "on_schedule", None)
            not in (None, Checker.on_schedule)
        )
        #: The determinism checker (first checker exposing
        #: ``state_digest``), resolved once so :meth:`state_digest` is a
        #: plain delegation instead of a per-call ``getattr`` scan.
        self._determinism = None
        for checker in self.checkers:
            if getattr(checker, "state_digest", None) is not None:
                self._determinism = checker
                break
        #: True when engine-level hooks are attached: the engine then
        #: runs the legacy heap-only path so every action carries a real
        #: ``(time, seq)`` pair for the hooks.
        self._instrumented = bool(self._event_hooks or self._schedule_hooks)
        if not self._instrumented:
            # Shadow the hooked scheduling methods with the ring-aware
            # fast versions; instance attributes win over class methods.
            self._schedule = self._schedule_fast
            self._schedule_event = self._schedule_event_fast

    def state_digest(self) -> Optional[str]:
        """Rolling execution digest, or None without a determinism checker.

        Two runs of the same seed and configuration must return the same
        value -- the property the golden-digest regression tests gate.
        """
        if self._determinism is None:
            return None
        return self._determinism.state_digest()

    def engine_profile(self) -> Dict[str, Any]:
        """Snapshot of the engine's internal activity counters.

        Exposed behind the CLI's ``--profile-engine`` flag and the
        service ``/stats`` endpoint; the counters themselves are
        maintained unconditionally (plain integer bumps).  ``heap_pops``
        / ``ring_pops`` break executed events out by queue;
        ``rows_recycled`` counts free-list row reuse and is only
        non-zero on the SoA kernel (the object kernel has no row table).
        """
        return {
            "kernel": self.kernel,
            "events_executed": self.events_executed,
            "ring_executed": self._ring_executed,
            "heap_executed": self.events_executed - self._ring_executed,
            "heap_pops": self.events_executed - self._ring_executed,
            "ring_pops": self._ring_executed,
            "heap_pushes": self._sequence,
            "ring_scheduled": self._ring_scheduled,
            "rows_recycled": 0,
            "compactions": 0,
            "flat_posts": 0,
            "flat_tx": 0,
            "timeouts_issued": self._timeouts_issued,
            "timeouts_pooled": self._timeouts_pooled,
            "timeout_pool_size": len(self._timeout_pool),
            "processes_spawned": self._processes_spawned,
            "instrumented": int(self._instrumented),
        }

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling primitives ----------------------------------------------

    def _schedule(self, at: int, action: Callable[[], None]) -> None:
        # Hooked (legacy) path: every action goes through the heap with
        # a real sequence number.  Un-instrumented simulators shadow
        # this with :meth:`_schedule_fast` in ``__init__``.
        for hook in self._schedule_hooks:
            hook(at, self._now)
        self._sequence += 1
        heapq.heappush(self._queue, (at, self._sequence, action))

    def _schedule_fast(self, at: int, action: Callable[[], None]) -> None:
        if at == self._now:
            self._ring_scheduled += 1
            self._fifo.append(action)
        else:
            self._sequence += 1
            heapq.heappush(self._queue, (at, self._sequence, action))

    def _schedule_event(self, event: Event) -> None:
        self._schedule(self._now, event._dispatch)

    def _schedule_event_fast(self, event: Event) -> None:
        self._ring_scheduled += 1
        self._fifo.append(event._dispatch)

    # -- public API ----------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` ns from now."""
        self._timeouts_issued += 1
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay}")
            self._timeouts_pooled += 1
            timeout = pool.pop()
            timeout.value = value
            self._schedule(self._now + delay, timeout._expire_bound)
            return timeout
        return Timeout(self, delay, value, _pooled=True)

    def spawn(self, generator: ProcessGenerator, name: str = "process") -> Process:
        """Start a new simulated process."""
        self._processes_spawned += 1
        return Process(self, generator, name)

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None,
            until_ns: Optional[int] = None) -> int:
        """Execute events; return the final simulated time.

        :param until: optional horizon; events at times strictly greater
            than ``until`` are left in the queue and the clock stops at
            ``until``.
        :param until_ns: alias for ``until`` (they may not both be set).
        :param max_events: watchdog budget -- if this many events execute
            within this ``run`` call without the queue draining, a
            :class:`~repro.errors.WatchdogError` is raised with progress
            diagnostics.  This is the defense against livelock (e.g. a
            retry loop that never converges), which -- unlike deadlock --
            keeps the queue busy forever and would otherwise hang the
            host process.
        :raises DeadlockError: the queue drained with blocked processes.
        :raises WatchdogError: the ``max_events`` budget was exhausted.
        """
        if until_ns is not None:
            if until is not None:
                raise SimulationError("pass either until or until_ns, not both")
            until = until_ns
        if max_events is not None and max_events <= 0:
            raise SimulationError(
                f"max_events must be positive, got {max_events}"
            )
        if self._instrumented:
            return self._run_hooked(until, max_events)
        if until is None and max_events is None:
            return self._run_fast()
        return self._run_guarded(until, max_events)

    def _run_fast(self) -> int:
        """Checker-free loop: no hook dispatch, no horizon/watchdog checks.

        Heap entries at the current time run before ring entries (see
        the module design notes for why that reproduces ``(time, seq)``
        order exactly).
        """
        queue = self._queue
        fifo = self._fifo
        fifo_popleft = fifo.popleft
        heappop = heapq.heappop
        executed = 0
        ring_executed = 0
        now = self._now
        try:
            while True:
                if queue:
                    at = queue[0][0]
                    if at <= now:
                        if at < now:
                            raise SimulationError(
                                f"time went backwards: {at} < {now}"
                            )
                        action = heappop(queue)[2]
                        executed += 1
                        action()
                        continue
                    if not fifo:
                        action = heappop(queue)[2]
                        now = self._now = at
                        executed += 1
                        action()
                        continue
                elif not fifo:
                    break
                action = fifo_popleft()
                executed += 1
                ring_executed += 1
                action()
        finally:
            self.events_executed += executed
            self._ring_executed += ring_executed
        if self._blocked > 0:
            raise DeadlockError(self._blocked, self._now)
        return self._now

    def _run_guarded(self, until: Optional[int],
                     max_events: Optional[int]) -> int:
        """Ring-aware loop with horizon and watchdog checks (no hooks)."""
        queue = self._queue
        fifo = self._fifo
        executed = 0
        now = self._now
        while True:
            if queue:
                at = queue[0][0]
                use_ring = at > now and bool(fifo)
            elif fifo:
                use_ring = True
            else:
                break
            if use_ring:
                at = now
            if until is not None and at > until:
                self._now = until
                return until
            if max_events is not None and executed >= max_events:
                raise WatchdogError(
                    self._now, executed, self._blocked,
                    len(queue) + len(fifo)
                )
            if use_ring:
                action = fifo.popleft()
                self._ring_executed += 1
            else:
                if at < now:
                    raise SimulationError(
                        f"time went backwards: {at} < {now}"
                    )
                action = heapq.heappop(queue)[2]
                now = self._now = at
            self.events_executed += 1
            executed += 1
            action()
        if until is None and self._blocked > 0:
            raise DeadlockError(self._blocked, self._now)
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def _run_hooked(self, until: Optional[int],
                    max_events: Optional[int]) -> int:
        """Legacy heap-only loop dispatching sanitizer hooks per event."""
        queue = self._queue
        event_hooks = self._event_hooks
        executed = 0
        while queue:
            at, seq, action = queue[0]
            if until is not None and at > until:
                self._now = until
                return self._now
            if max_events is not None and executed >= max_events:
                raise WatchdogError(
                    self._now, executed, self._blocked, len(queue)
                )
            heapq.heappop(queue)
            if at < self._now:
                raise SimulationError(
                    f"time went backwards: {at} < {self._now}"
                )
            self._now = at
            self.events_executed += 1
            executed += 1
            if event_hooks:
                for hook in event_hooks:
                    hook(at, seq, action)
            action()
        if until is None and self._blocked > 0:
            raise DeadlockError(self._blocked, self._now)
        if until is not None:
            self._now = max(self._now, until)
        return self._now


def all_of(sim: Simulator, events: List[Event]) -> Event:
    """Return an event that triggers once every listed event has.

    The composite's value is the list of individual event values in the
    order given.  An empty list yields an event that triggers at the
    current time.
    """
    done = Event(sim)
    remaining = len(events)
    if remaining == 0:
        done.succeed([])
        return done
    values: List[Any] = [None] * remaining
    left = [remaining]

    def on_done(index: int, event: Event) -> None:
        if event._exception is not None:
            if not done.triggered:
                done.fail(event._exception)
            return
        values[index] = event.value
        left[0] -= 1
        if left[0] == 0 and not done.triggered:
            done.succeed(values)

    for i, event in enumerate(events):
        event.add_callback(partial(on_done, i))
    return done
