"""Compiled event-core tier: the SoA kernel driven by a C hot loop.

The optional ``repro.engine._csoa`` extension (built best-effort by
``setup.py``; see ``_csoa.c``) ports :meth:`SoaSimulator._run_fast` to
C while leaving *all* kernel state -- heap, ring, row columns, process
table, flat-op table -- in Python, so every method-form push and the
epoch compactor keep working unchanged and the executed event sequence
stays bit-identical across all three tiers.

This module is the import-time gate:

* ``HAVE_EXTENSION`` is True when the extension imported (and the
  ``REPRO_CSOA`` env knob did not disable it).  Kernel selection in
  :func:`repro.engine.resolve_kernel` consults it: ``auto`` prefers
  the compiled tier when available, and an explicit ``compiled``
  request degrades to the pure-Python SoA kernel with a
  ``RuntimeWarning`` when it is not.
* ``REPRO_CSOA=0`` (also ``off`` / ``no`` / ``false``) pretends the
  extension is absent -- the test suite uses this to pin the fallback
  path, and it is the escape hatch if a build ever misbehaves.

:class:`CompiledSimulator` adds no state of its own; it only swaps the
run loop.  When the C loop meets a value outside its int64 fast range
(simulated time beyond the packed-key budget) it flushes its counters
and returns a handoff code, and the pure-Python loop -- which computes
with arbitrary-precision ints -- finishes the run from the exact same
kernel state.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from ..errors import DeadlockError, SimulationError
from .core import FLAT_TX, TURN, Acquirable, Event
from .soa import SoaSimulator


def _extension_enabled() -> bool:
    """True unless the ``REPRO_CSOA`` env knob disables the extension."""
    knob = os.environ.get("REPRO_CSOA", "").strip().lower()
    return knob not in ("0", "off", "no", "false")


_csoa = None
if _extension_enabled():
    try:
        from . import _csoa  # type: ignore[no-redef]
    except ImportError:
        _csoa = None
    else:
        _csoa.configure(Acquirable, Event, TURN, SimulationError, FLAT_TX)

#: True when the C hot loop is importable and enabled.  Evaluated once
#: at import (kernel selection is an import-time decision); tests that
#: need the fallback path spawn a subprocess with ``REPRO_CSOA=0``.
HAVE_EXTENSION = _csoa is not None


class CompiledSimulator(SoaSimulator):
    """SoA kernel whose unguarded run loop executes in C.

    Construct through :func:`repro.engine.make_simulator`; direct
    construction requires the extension (``HAVE_EXTENSION``).  Guarded
    runs (``until`` / ``max_events``) still use the Python word loop --
    they are diagnostic paths where the watchdog checks dominate.
    """

    kernel = "compiled"

    def _run_fast(self) -> int:
        if _csoa is None:  # pragma: no cover - selection prevents this
            return SoaSimulator._run_fast(self)
        if _csoa.run_fast(self):
            if self._blocked > 0:
                raise DeadlockError(self._blocked, self._now)
            return self._now
        # int64-range handoff: the pure-Python loop continues from the
        # same kernel state with arbitrary-precision ints.
        return SoaSimulator._run_fast(self)

    def engine_profile(self) -> Dict[str, Any]:
        profile = super().engine_profile()
        profile["extension_loaded"] = 1 if HAVE_EXTENSION else 0
        return profile
