"""Deterministic named random streams.

Every machine model must replay *exactly* the same workload, otherwise a
figure comparing Target vs LogP vs CLogP would be comparing different
executions.  Applications therefore never touch ``random`` or the global
numpy state; they draw from :class:`RandomStreams`, which derives an
independent, reproducible ``numpy.random.Generator`` per (name, index)
pair from a single master seed.
"""

from __future__ import annotations

import zlib
from typing import Dict, Tuple

import numpy as np


def _stable_hash(name: str) -> int:
    """A process-independent hash (``hash(str)`` is salted per process)."""
    return zlib.crc32(name.encode("utf-8"))


#: Reserved stream name for fault injection.  Applications must never
#: draw from it: keeping fault randomness on its own stream is what
#: makes a faulty run inject reproducible faults *and* leaves every
#: application draw bit-identical to a fault-free run.
FAULT_STREAM = "__fault_injection__"


class RandomStreams:
    """A factory of independent seeded :class:`numpy.random.Generator` s."""

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)
        self._cache: Dict[Tuple[str, int], np.random.Generator] = {}

    def stream(self, name: str, index: int = 0) -> np.random.Generator:
        """Return the generator for ``(name, index)``.

        Repeated calls with the same key return the *same* generator
        object, so a stream's state advances across uses within one
        simulation but is identical across simulations built from the
        same master seed.
        """
        key = (name, index)
        generator = self._cache.get(key)
        if generator is None:
            seed_seq = np.random.SeedSequence(
                entropy=self.master_seed,
                spawn_key=(_stable_hash(name), index),
            )
            generator = np.random.default_rng(seed_seq)
            self._cache[key] = generator
        return generator

    def fault_stream(self) -> np.random.Generator:
        """The dedicated fault-injection stream (see :data:`FAULT_STREAM`)."""
        return self.stream(FAULT_STREAM)

    def fresh(self, name: str, index: int = 0) -> np.random.Generator:
        """Return a *new* generator for the key, resetting any prior state.

        Used by applications at setup so that re-running the same
        application object twice yields identical inputs.
        """
        self._cache.pop((name, index), None)
        return self.stream(name, index)
