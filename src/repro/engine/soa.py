"""Struct-of-arrays event kernel: the un-instrumented fast engine.

The object kernel in :mod:`repro.engine.core` drives every event
through Python objects -- a heap of ``(time, seq, action)`` tuples, a
``functools.partial`` per resumption, a ``Process._step`` frame per
yield.  At a few microseconds of host time per simulated event that
interpreter-dispatch overhead is the repo's scaling ceiling (see
ROADMAP item 2).  This module replaces the storage and the loop while
keeping the executed *event sequence* bit-identical:

Packed queue words
    Most events are process resumptions that carry at most a small int
    (a grant's wait time): they need no object at all, so the queues
    hold plain ints and the run loop decodes them with shifts and
    masks.  A future resumption is a heap key
    ``(time << ROW_BITS) | row``; a same-time resumption is a ring word
    ``(value << VAL_SHIFT) | (proc << 3) | tag`` -- pushed, popped, and
    decoded without touching the allocator at all.

Row table (struct of arrays)
    Events that carry a Python object (event dispatches, late event
    waiters, legacy callables) park it in a preallocated, growable row
    table: an ``array('q')`` metadata column holding
    ``(target << 3) | kind`` plus a parallel object payload column.
    The *row index* stands in for the old action object.  There is no
    separate time or sequence column: a heap key's high bits are the
    time, and heap rows are allocated in strictly increasing order, so
    the row index *is* the sequence number -- the tie-break the object
    kernel stores explicitly comes for free.

Index-based heap + same-time FIFO ring
    Future rows sit in a binary heap of packed int keys ordered by C
    ``heapq``; because heap rows are monotone, the key's low bits break
    same-time ties in schedule order -- exactly the ``(time, seq)``
    order of the object kernel.  ``ROW_BITS`` is a fixed 32: a constant
    field width means the decode masks in the run loop can never go
    stale, no matter when a nested call grows the table.  Work
    scheduled at the current time bypasses the heap through a deque
    holding packed resume words (tag bit set) and shifted row indices
    (tag bit clear), mirroring the object kernel's ring.

Free-list row recycling
    Every popped row is returned to a free list before its action runs
    and is typically reused by the next payload-carrying push, so
    steady-state scheduling allocates nothing: resume events are pure
    int arithmetic and payload events recycle rows.

Epoch compaction
    When the monotone allocator reaches the end of the row table the
    kernel renumbers live rows into a fresh epoch: pending heap entries
    are gathered in key order (preserving ``(time, seq)``), assigned
    rows ``0..h-1``, ring rows follow (packed resume words carry no row
    and pass through untouched), and the columns grow in place (same
    array objects, so the run loop's cached locals stay valid) doubling
    only while live rows exceed half the capacity.  Live rows are
    bounded by blocked processes, so with the default capacity a long
    run compacts every few thousand heap pushes at a cost of a few
    dozen row copies.

Direct generator drive
    The run loop resumes process generators through a cached bound
    ``gen.send`` and handles the yielded value inline -- no ``Process``
    step frame, no partial, no tuple.  Event dispatch still runs waiter
    callbacks *synchronously inside the dispatch event* (so event
    counts match the object kernel exactly); waiting processes are
    parked in ``Event._callbacks`` / ``Resource._waiters`` as plain
    ints and resumed via :meth:`SoaSimulator._advance`.

Kernel selection (see :func:`repro.engine.make_simulator`): the SoA
kernel is the default un-instrumented engine; ``REPRO_ENGINE=object``
or ``SystemConfig.engine_kernel`` forces the fallback, and simulators
with engine-level checker hooks *always* run the object kernel so
sanitizers observe real ``(time, seq)`` actions.  Both kernels execute
identical event sequences -- same ``sim_events``, same results, same
determinism digests -- which the parity tests pin.

The loop is deliberately written in a compile-friendly style -- int
words, flat branches on small int tags, no closures in the hot path --
so a later mypyc/Cython build of this module is a compile flag, not
another refactor.
"""

from __future__ import annotations

import heapq
from array import array
from collections import deque
from typing import Any, Dict, List, Optional

from ..errors import DeadlockError, ReproError, SimulationError, WatchdogError
from .core import (
    FLAT_TX,
    PROC_BITS,
    PROC_MASK,
    TURN,
    Acquirable,
    Event,
    ProcessGenerator,
    Simulator,
    all_of,
)

# Row kinds, stored in the metadata column's low 3 bits.
K_RESUME_NONE = 0  #: resume generator with None (process start, sleeps)
K_RESUME_ZERO = 1  #: resume with 0 (TURN / immediate resource grant)
K_RESUME_VAL = 2   #: resume with the packed value (queued resource grant)
K_EVENT = 3        #: dispatch the payload Event's callbacks/waiters
K_EVWAIT = 4       #: late waiter on an already-dispatched payload Event
K_CALL = 5         #: invoke the payload callable (legacy ``_schedule``)
K_FLAT = 6         #: flat-op transmission wake (settle, see flat_transmit)

# Ring word encoding.  Bit 0 distinguishes packed resumptions (no row)
# from row indices:
#
#   packed resume:  (value << VAL_SHIFT) | (proc << 3) | tag
#   row index:      row << 1
#
# where only K_RESUME_VAL carries a value (a grant's wait time, >= 0).
_R_NONE = 1        #: ring word tag for K_RESUME_NONE
_R_ZERO = 3        #: ring word tag for K_RESUME_ZERO
_R_VAL = 5         #: ring word tag for K_RESUME_VAL
_R_FLAT = 7        #: flat-op step word: ``(opidx << 3) | 7`` (no value)
VAL_SHIFT = 3 + PROC_BITS

# Flat-op program tags, stored in op slot 11 (see the flat-op section
# of SoaSimulator).  F_XMIT is the fire-and-forget transmit program;
# the rest are the states of the compiled memory-transaction programs
# (flat_transact), named <phase the op is currently in>.  A _R_FLAT
# ring word means "next leg link granted" for leg tags and "home lock
# granted, run the directory plan" for the two LOCK tags; a K_FLAT
# heap row means "transmission done, settle" for leg tags and "service
# sleep done" for the MEM/HIT tags.
F_XMIT = 0       #: fire-and-forget transmit (flat_transmit)
F_RD_REQ = 1     #: read: request leg pid -> home in flight
F_RD_LOCK = 2    #: read: waiting on / granted the home lock
F_RD_MEM = 3     #: read: home memory service sleep
F_RD_FWD = 4     #: read: forward leg home -> owner in flight
F_RD_HIT = 5     #: read: owner cache service sleep
F_RD_DATA = 6    #: read: data leg source -> pid in flight
F_WR_REQ = 7     #: write: request leg pid -> home in flight
F_WR_LOCK = 8    #: write: waiting on / granted the home lock
F_WR_MEM = 9     #: write: home memory service sleep
F_WR_FWD = 10    #: write: forward leg home -> owner in flight
F_WR_WAIT = 11   #: write: parked on the invalidation-round join
F_WR_GRANT = 12  #: write: ownership-grant leg home -> pid in flight
F_WR_DATA = 13   #: write: data leg home/source -> pid in flight
F_WR_HIT = 14    #: write: owner cache service sleep

#: Fixed width of the row field in a packed heap key.  A constant --
#: rather than one derived from the current capacity -- means the
#: decode masks in the run loop can never go stale and compaction never
#: re-packs keys for a width change.  4G live rows is far beyond what
#: host memory admits; :meth:`SoaSimulator._compact` enforces the bound.
ROW_BITS = 32
ROW_MASK = (1 << ROW_BITS) - 1

#: Initial row-table capacity (rows, grown by epoch compaction).
DEFAULT_ROW_CAPACITY = 4096


class SoaProcess(Event):
    """Joinable shell of a process driven by the SoA kernel.

    The generator itself lives in the simulator's process table; this
    object is only the :class:`Event` other processes ``yield`` to join
    -- it triggers with the generator's return value, exactly like
    :class:`~repro.engine.core.Process`.
    """

    __slots__ = ("name",)

    def __init__(self, sim: "SoaSimulator", name: str):
        self.sim = sim
        self._callbacks: Optional[List[Any]] = []
        self.triggered = False
        self.value: Any = None
        self._exception: Optional[BaseException] = None
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<SoaProcess {self.name} {state}>"


class SoaSimulator(Simulator):
    """Drop-in :class:`~repro.engine.core.Simulator` on the SoA kernel.

    The public API (``spawn`` / ``timeout`` / ``event`` / ``run`` /
    ``engine_profile``) is unchanged; only the internal event storage
    and the run loop differ.  Construct through
    :func:`repro.engine.make_simulator`, which enforces the
    object-path-for-hooks invariant.
    """

    kernel = "soa"

    #: This kernel executes flattened leaf resumes (flat ops) natively;
    #: see :meth:`flat_transmit`.
    _flat_capable = True

    def __init__(self, fail_fast: bool = True, checkers=(),
                 row_capacity: int = DEFAULT_ROW_CAPACITY):
        super().__init__(fail_fast=fail_fast, checkers=checkers)
        if self._instrumented:
            raise SimulationError(
                "the SoA kernel cannot host engine-level checker hooks; "
                "instrumented simulators must run the object kernel "
                "(use repro.engine.make_simulator)"
            )
        if row_capacity < 8:
            row_capacity = 8
        cap = 1 << (row_capacity - 1).bit_length()  # power of two
        self._cap = cap
        #: Metadata column: ``(target << 3) | kind`` per row.
        self._c_meta = array("q", [0]) * cap
        #: Parallel object column (event / callable payloads).
        self._payload: List[Any] = [None] * cap
        #: Monotone row allocator; heap rows must come from here so the
        #: key's low bits preserve push order (see module docstring).
        self._top = 0
        #: Free list of recycled rows, fed by every row pop and
        #: consumed by payload-carrying ring pushes (packed resume
        #: words never touch it).
        self._free: List[int] = []
        self._heap: List[int] = []
        self._ring: deque = deque()
        self._rows_recycled = 0
        self._compactions = 0
        # Process table: generator, cached bound send, joinable shell.
        self._gens: List[Any] = []
        self._sends: List[Any] = []
        self._procs: List[Optional[SoaProcess]] = []
        self._pfree: List[int] = []
        # Flat-op table: tag-dispatched leaf programs the kernel
        # executes without a generator frame (see flat_transmit and
        # flat_transact).
        self._flat_ops: List[Optional[list]] = []
        self._flat_free: List[int] = []
        self._flat_posts = 0
        #: Memory transactions compiled into flat ops (profiling).
        self.flat_tx = 0
        # Handoff slot between flat_transact and the FLAT_TX yield
        # dispatch: the op index whose caller is about to park.
        self._pending_flat_op = -1
        # Compiled-tier acceleration registration (see target.py):
        # ``(transact_flat, block_bytes, home_cache, home_of_block,
        # home_locks, home_lock, flat_ctx)``.  When the C loop sees a
        # deferred-call tuple whose callable is entry 0, it builds the
        # transaction op natively from the remaining entries instead
        # of calling into the interpreter; every other kernel (and the
        # C loop for any other callable) just makes the call.
        self._flat_mctx: Optional[tuple] = None
        # Event.succeed / timeouts / late callbacks schedule through
        # these entry points; shadow the object-kernel pair installed by
        # Simulator.__init__ with row pushes.
        self._schedule = self._schedule_row
        self._schedule_event = self._schedule_event_row

    # -- row scheduling ------------------------------------------------------

    def _payload_row(self, kind: int, target: int, pay: Any) -> None:
        """Enqueue a payload-carrying row on the FIFO ring."""
        free = self._free
        if free:
            row = free.pop()
            self._rows_recycled += 1
        else:
            row = self._top
            if row == self._cap:
                self._compact()
                row = self._top
            self._top = row + 1
        self._c_meta[row] = (target << 3) | kind
        self._payload[row] = pay
        self._ring_scheduled += 1
        self._ring.append(row << 1)

    def _heap_row(self, at: int, kind: int, target: int,
                  pay: Any = None) -> None:
        """Enqueue a future row on the packed-key heap (monotone rows)."""
        row = self._top
        if row == self._cap:
            self._compact()
            row = self._top
        self._top = row + 1
        self._c_meta[row] = (target << 3) | kind
        if pay is not None:
            self._payload[row] = pay
        heapq.heappush(self._heap, (at << ROW_BITS) | row)

    def _schedule_row(self, at: int, action) -> None:
        # Legacy entry point (unpooled Timeouts, late add_callback
        # joiners): the callable rides in the payload column.
        if at == self._now:
            self._payload_row(K_CALL, 0, action)
        else:
            self._heap_row(at, K_CALL, 0, action)

    def _schedule_event_row(self, event: Event) -> None:
        # ``_payload_row`` inlined: Event.succeed lands here for every
        # triggered event, making this the hottest method-form push.
        free = self._free
        if free:
            row = free.pop()
            self._rows_recycled += 1
        else:
            row = self._top
            if row == self._cap:
                self._compact()
                row = self._top
            self._top = row + 1
        self._c_meta[row] = K_EVENT
        self._payload[row] = event
        self._ring_scheduled += 1
        self._ring.append(row << 1)

    def _grant(self, p: int, waited: int) -> None:
        """Ring-resume a process whose packed resource wait was granted.

        Called by :meth:`~repro.engine.resource.Resource.release`; the
        word occupies the exact ring position the grant event's dispatch
        would have taken on the object kernel.
        """
        self._ring_scheduled += 1
        self._ring.append((waited << VAL_SHIFT) | (p << 3) | _R_VAL)

    # -- flat ops ------------------------------------------------------------
    #
    # A *flat op* replaces the highest-frequency generators with a table
    # entry the kernel steps through directly.  Two op programs exist:
    # fire-and-forget link transmits on the plain fabric (writebacks,
    # sharing writebacks, invalidation+ack rounds; ``flat_transmit``)
    # and whole plain-fabric directory transactions of the target
    # machine (``flat_transact``).  Each op is a plain list with fixed
    # slots; slots 0-10 are the transmit program's state (3-8 double as
    # the current-leg state of a transaction's in-flight message), 11 is
    # the program tag, and 12+ exist only on transaction ops:
    #
    #   0 shell    joinable Event, succeeded when a transmit finishes
    #   1 fabric   the Fabric charged at settle time
    #   2 legs     tuple of (path, nbytes, transmit_ns) legs (transmit)
    #   3 path     current leg's tuple of Links
    #   4 nbytes   current leg's payload size
    #   5 tx_ns    current leg's contention-free transmission time
    #   6 i        links of the current leg acquired so far
    #   7 start    simulated time the current leg started
    #   8 circuit  simulated time the current leg's circuit completed
    #   9 value    the shell's success value (transmit)
    #  10 legidx   index of the current leg (transmit)
    #  11 tag      program state (F_XMIT, or a transaction F_* tag)
    #  12 waiter   process index of the parked caller (-1 until parked)
    #  13 ctx      machine context tuple (see flat_transact)
    #  14 pid      requesting processor
    #  15 block    block number of the access
    #  16 home     the block's home node
    #  17 lock     the block's home-lock Resource
    #  18 plan     directory plan (set by the LOCK step)
    #  19 latency  accumulated contention-free latency_ns
    #  20 service  accumulated memory/owner service_ns
    #  21 invs     spawned invalidation-round shells, or None
    #  22 hri      1 when any invalidation target was remote
    #
    # An op's timeline mirrors the generator it replaces *step for
    # step*: the start word doubles as the first acquire attempt,
    # every link (and home-lock) grant is one ring word
    # (``(opidx << 3) | _R_FLAT`` here, ``_R_ZERO``/``_R_VAL`` there),
    # every transmission or service sleep is a fresh monotone heap row
    # (kind ``K_FLAT``), and the settle step applies the same
    # per-link/fabric accounting at the same event.  A transmit op ends
    # by succeeding its shell (the ``K_EVENT`` dispatch a finished
    # process produces); a transaction op ends by resuming its parked
    # caller with ``(latency_ns, service_ns)`` inside the final wake --
    # exactly where the generator form's ``return`` resumes the
    # ``yield from`` caller.  Event counts, queue positions, and all
    # statistics are therefore identical to the generator form, which
    # the cross-kernel parity tests pin.  Busy links or home locks park
    # the op as the complement-packed *negative* int
    # ``~((now << PROC_BITS) | opidx)`` so ``Resource.release`` can
    # tell it from a process waiter, and a transaction waiting on its
    # invalidation join parks ``~opidx`` in the join event's callbacks
    # (see ``Event._dispatch``).

    def flat_transmit(self, fabric, legs, value: Any = None) -> Event:
        """Post a flattened fire-and-forget transmit; returns the shell.

        ``legs`` is a tuple of ``(path, nbytes, transmit_ns)`` with
        non-empty link paths.  Only valid on flat-capable kernels (see
        ``_flat_capable``); callers fall back to spawning the generator
        twin otherwise, producing the same event sequence.
        """
        shell = Event(self)
        path, nbytes, tx = legs[0]
        op = [shell, fabric, legs, path, nbytes, tx, 0, self._now, 0,
              value, 0, F_XMIT]
        free = self._flat_free
        if free:
            opidx = free.pop()
            self._flat_ops[opidx] = op
        else:
            opidx = len(self._flat_ops)
            if opidx >= (1 << PROC_BITS):  # pragma: no cover - ~1M live
                raise SimulationError(
                    f"too many live flat ops ({opidx}); see PROC_BITS "
                    "in repro.engine.core"
                )
            self._flat_ops.append(op)
        self._flat_posts += 1
        self._blocked += 1
        # The start word doubles as the first acquire attempt, exactly
        # where the generator's start-up resumption would have run.
        self._ring_scheduled += 1
        self._ring.append((opidx << 3) | _R_FLAT)
        return shell

    def flat_transact(self, ctx, pid: int, block: int, home: int,
                      lock, is_write: bool):
        """Start a compiled memory transaction; returns ``FLAT_TX``.

        Called by a machine's ``transact_flat`` from inside the
        requesting process's own resumption.  ``ctx`` is the machine
        context tuple ``(fabric, routes, nprocs, ctrl_bytes,
        data_bytes, ctrl_ns, data_ns, mem_ns, hit_ns,
        inv_round_latency, plan_read, plan_write, machine)``.  This
        only builds the op; the first step -- the request leg's first
        link acquire, or the home-lock attempt on a home-local miss
        (``op[3] is None`` distinguishes the two) -- runs in the
        kernel's ``FLAT_TX`` yield branch, which executes immediately
        after this returns (the caller must ``yield FLAT_TX`` next).
        That is the exact position the generator twin's first
        ``yield`` is handled, and it lets the compiled tier run the
        step natively.  The op resumes the caller with the
        ``(latency_ns, service_ns)`` split when the transaction
        completes.
        """
        op = [None, ctx[0], None, None, 0, 0, 0, 0, 0, None, 0,
              0, -1, ctx, pid, block, home, lock, None, 0, 0, None, 0]
        free = self._flat_free
        if free:
            opidx = free.pop()
            self._flat_ops[opidx] = op
        else:
            opidx = len(self._flat_ops)
            if opidx >= (1 << PROC_BITS):  # pragma: no cover - ~1M live
                raise SimulationError(
                    f"too many live flat ops ({opidx}); see PROC_BITS "
                    "in repro.engine.core"
                )
            self._flat_ops.append(op)
        self._flat_posts += 1
        self.flat_tx += 1
        self._pending_flat_op = opidx
        if pid != home:
            # Request leg pid -> home (control message).
            op[3] = ctx[1][pid * ctx[2] + home]
            op[4] = ctx[3]
            op[5] = ctx[5]
            op[7] = self._now
            op[11] = F_WR_REQ if is_write else F_RD_REQ
        else:
            op[11] = F_WR_LOCK if is_write else F_RD_LOCK
        return FLAT_TX

    def _flat_step(self, opidx: int) -> None:
        """One acquire-or-transmit step of a flat op (ring word pop)."""
        op = self._flat_ops[opidx]
        tag = op[11]
        if tag == F_RD_LOCK:
            self._flat_rd_plan(opidx, op)
            return
        if tag == F_WR_LOCK:
            self._flat_wr_plan(opidx, op)
            return
        path = op[3]
        i = op[6]
        if i < len(path):
            link = path[i]
            # Inlined try_acquire (the Acquirable attribute contract),
            # mirroring the kernel's ``yield link`` handling.
            if link.in_use < link.capacity and not link._waiters:
                link.in_use += 1
                link.grants += 1
                op[6] = i + 1
                self._ring_scheduled += 1
                self._ring.append((opidx << 3) | _R_FLAT)
            else:
                link._waiters.append(
                    ~((self._now << PROC_BITS) | opidx)
                )
            return
        # Circuit complete: the transmission sleep, as a fresh monotone
        # heap row -- the position the generator's ``yield tx`` takes.
        op[8] = self._now
        self._heap_row(self._now + op[5], K_FLAT, opidx)

    def _flat_grant(self, opidx: int) -> None:
        """A parked flat op was granted its resource (Resource.release)."""
        # The grant transferred the unit, so the op now holds the link
        # (or home lock); the step word lands at the exact ring position
        # the generator's ``_R_VAL`` resume word would have taken.
        op = self._flat_ops[opidx]
        tag = op[11]
        if tag != F_RD_LOCK and tag != F_WR_LOCK:
            op[6] += 1
        self._ring_scheduled += 1
        self._ring.append((opidx << 3) | _R_FLAT)

    def _flat_wake(self, opidx: int) -> None:
        """Wake step of a flat op (K_FLAT heap row popped).

        For leg tags this is the settle step of a finished
        transmission; for the service tags (MEM/HIT sleeps) it is the
        end of the directory's memory or owner-cache service time, with
        no message to settle.  Transitions run inside this wake event,
        exactly as the generator's resumption runs on to its next
        ``yield``.
        """
        op = self._flat_ops[opidx]
        tag = op[11]
        now = self._now
        if tag == F_XMIT:
            fabric = op[1]
            path = op[3]
            nbytes = op[4]
            tx = op[5]
            circuit = op[8]
            held_ns = now - circuit
            for link in path:
                link.messages += 1
                link.bytes_carried += nbytes
                link.busy_ns += held_ns
                if link._waiters:
                    link.release()
                else:
                    # Uncontended release inlined (this op holds the
                    # link, so in_use >= 1) -- same as
                    # Fabric.settle_fast.
                    link.in_use -= 1
            fabric.messages += 1
            fabric.bytes_transported += nbytes
            fabric.total_latency_ns += tx
            fabric.total_contention_ns += circuit - op[7]
            legs = op[2]
            legidx = op[10] + 1
            if legidx < len(legs):
                # Next leg starts inside this settle step, exactly as
                # the generator's wake resumption runs on to its next
                # ``yield link``.
                path, nbytes, tx = legs[legidx]
                op[3] = path
                op[4] = nbytes
                op[5] = tx
                op[6] = 0
                op[7] = now
                op[10] = legidx
                self._flat_step(opidx)
                return
            # Done: mirror ``_finish`` -- unblock, recycle, succeed the
            # shell (its K_EVENT dispatch is the trailing parity event).
            self._blocked -= 1
            shell = op[0]
            value = op[9]
            self._flat_ops[opidx] = None
            self._flat_free.append(opidx)
            shell.succeed(value)
            return
        # -- transaction wakes --------------------------------------------
        ctx = op[13]
        if tag == F_RD_REQ or tag == F_WR_REQ:
            self._flat_settle(op, now)
            self._flat_lock(opidx, op,
                            F_RD_LOCK if tag == F_RD_REQ else F_WR_LOCK)
            return
        if tag == F_RD_MEM:
            # Memory read served: release the directory, then the data
            # reply (unless the requester is the home node).
            self._flat_unlock(op)
            if op[16] != op[14]:
                self._flat_leg(opidx, op, op[16], op[14], True, F_RD_DATA)
                return
            self._flat_done(opidx, op)
            return
        if tag == F_RD_FWD:
            # Forward delivered to the owner: directory released, owner
            # cache service begins.
            self._flat_settle(op, now)
            self._flat_unlock(op)
            op[20] += ctx[8]
            op[11] = F_RD_HIT
            self._heap_row(now + ctx[8], K_FLAT, opidx)
            return
        if tag == F_RD_HIT:
            self._flat_leg(opidx, op, op[18].source, op[14], True,
                           F_RD_DATA)
            return
        if tag == F_RD_DATA:
            self._flat_settle(op, now)
            plan = op[18]
            if (not plan.from_memory and plan.sharing_writeback
                    and plan.source != op[16]):
                # Illinois: the dirty owner's data also returns to the
                # home -- real traffic, off the critical path.
                op[1].post_fast(plan.source, op[16], ctx[4], name="shwb")
            self._flat_done(opidx, op)
            return
        if tag == F_WR_MEM:
            self._flat_wr_join(opidx, op)
            return
        if tag == F_WR_FWD:
            self._flat_settle(op, now)
            self._flat_wr_join(opidx, op)
            return
        if tag == F_WR_HIT:
            self._flat_leg(opidx, op, op[18].source, op[14], True,
                           F_WR_DATA)
            return
        # F_WR_GRANT / F_WR_DATA: final leg of a write.
        self._flat_settle(op, now)
        self._flat_done(opidx, op)

    # -- flat transaction helpers -----------------------------------------

    def _flat_settle(self, op: list, now: int) -> None:
        """Book one completed transaction leg (Fabric.settle_fast twin)."""
        fabric = op[1]
        path = op[3]
        nbytes = op[4]
        tx = op[5]
        circuit = op[8]
        held_ns = now - circuit
        for link in path:
            link.messages += 1
            link.bytes_carried += nbytes
            link.busy_ns += held_ns
            if link._waiters:
                link.release()
            else:
                link.in_use -= 1
        fabric.messages += 1
        fabric.bytes_transported += nbytes
        fabric.total_latency_ns += tx
        fabric.total_contention_ns += circuit - op[7]
        op[19] += tx

    def _flat_leg(self, opidx: int, op: list, src: int, dst: int,
                  data: bool, tag: int) -> None:
        """Start a message leg and attempt its first link inline."""
        ctx = op[13]
        op[3] = ctx[1][src * ctx[2] + dst]
        if data:
            op[4] = ctx[4]
            op[5] = ctx[6]
        else:
            op[4] = ctx[3]
            op[5] = ctx[5]
        op[6] = 0
        op[7] = self._now
        op[11] = tag
        self._flat_step(opidx)

    def _flat_lock(self, opidx: int, op: list, tag: int) -> None:
        """Attempt the home lock (FIFO; parks complement-packed)."""
        op[11] = tag
        lock = op[17]
        if lock.in_use < lock.capacity and not lock._waiters:
            lock.in_use += 1
            lock.grants += 1
            self._ring_scheduled += 1
            self._ring.append((opidx << 3) | _R_FLAT)
        else:
            lock._waiters.append(~((self._now << PROC_BITS) | opidx))

    def _flat_unlock(self, op: list) -> None:
        """Release the home lock (uncontended release inlined)."""
        lock = op[17]
        if lock._waiters:
            lock.release()
        else:
            lock.in_use -= 1

    def _flat_done(self, opidx: int, op: list) -> None:
        """Complete a transaction: writeback, recycle, resume caller."""
        plan = op[18]
        op[13][12]._post_writeback(op[14], plan.writeback)
        p = op[12]
        result = (op[19], op[20])
        self._flat_ops[opidx] = None
        self._flat_free.append(opidx)
        # The caller resumes inside this wake event -- the position the
        # generator form's ``return`` hands control back to the
        # ``yield from`` caller.
        self._advance(p, result, None)

    def _flat_done_early(self, opidx: int, op: list) -> None:
        """Raced-with-ourselves exit: ``return 0, hit_ns`` twin."""
        self._flat_unlock(op)
        p = op[12]
        result = (0, op[13][8])
        self._flat_ops[opidx] = None
        self._flat_free.append(opidx)
        self._advance(p, result, None)

    def _flat_fail(self, opidx: int, op: list,
                   exc: BaseException) -> None:
        """A plan callout raised: propagate into the parked caller.

        Mirrors the generator form, where the exception unwinds the
        ``yield from`` chain into the caller's frame.
        """
        p = op[12]
        self._flat_ops[opidx] = None
        self._flat_free.append(opidx)
        self._throw(p, exc)

    def _flat_rd_plan(self, opidx: int, op: list) -> None:
        """Home-lock granted on a read: run the directory plan."""
        ctx = op[13]
        try:
            plan = ctx[10](op[14], op[15])
        except BaseException as exc:
            self._flat_fail(opidx, op, exc)
            return
        op[18] = plan
        if plan.hit:  # raced with ourselves; cannot normally happen
            self._flat_done_early(opidx, op)
            return
        if plan.from_memory:
            op[20] += ctx[7]
            op[11] = F_RD_MEM
            self._heap_row(self._now + ctx[7], K_FLAT, opidx)
            return
        # Owned by a remote cache: home forwards, owner supplies.
        source = plan.source
        home = op[16]
        if home != source:
            self._flat_leg(opidx, op, home, source, False, F_RD_FWD)
            return
        self._flat_unlock(op)
        op[20] += ctx[8]
        op[11] = F_RD_HIT
        self._heap_row(self._now + ctx[8], K_FLAT, opidx)

    def _flat_wr_plan(self, opidx: int, op: list) -> None:
        """Home-lock granted on a write: plan, launch invalidations."""
        ctx = op[13]
        try:
            plan = ctx[11](op[14], op[15])
        except BaseException as exc:
            self._flat_fail(opidx, op, exc)
            return
        op[18] = plan
        if plan.fast:  # raced with ourselves; cannot normally happen
            self._flat_done_early(opidx, op)
            return
        if plan.invalidated:
            self._flat_wr_invs(op, plan)
        source = plan.source
        home = op[16]
        if not plan.had_data:
            if plan.from_memory:
                op[20] += ctx[7]
                op[11] = F_WR_MEM
                self._heap_row(self._now + ctx[7], K_FLAT, opidx)
                return
            if home != source:
                self._flat_leg(opidx, op, home, source, False, F_WR_FWD)
                return
        self._flat_wr_join(opidx, op)

    def _flat_wr_invs(self, op: list, plan) -> None:
        """Launch a write's invalidation rounds (plan-time spawn).

        Invalidations go out in parallel with the home-side work.  The
        previous owner (when it supplies the data) is invalidated by
        the forwarded request itself, so it is filtered out here.
        Shared between the Python plan step and the C port, which
        calls it only when ``plan.invalidated`` is non-empty.
        """
        source = plan.source
        inv_targets = [s for s in plan.invalidated if s != source]
        if inv_targets:
            home = op[16]
            machine = op[13][12]
            pid = op[14]
            op[21] = [
                machine._spawn_inv(pid, home, node) for node in inv_targets
            ]
            for node in inv_targets:
                if node != home:
                    op[22] = 1
                    break

    def _flat_wr_join(self, opidx: int, op: list) -> None:
        """Home-side work done: wait for the invalidation rounds."""
        invs = op[21]
        if invs:
            # Sequential consistency: the home releases the block only
            # after every stale copy is gone.  The join event is built
            # here -- not at plan time -- exactly where the generator
            # form evaluates ``all_of``; the op parks in its callbacks
            # as the complement ``~opidx`` (see Event._dispatch).
            op[21] = None
            op[11] = F_WR_WAIT
            all_of(self, invs)._callbacks.append(~opidx)
            return
        self._flat_wr_unlock(opidx, op)

    def _flat_resume(self, opidx: int, value: Any,
                     exc: Optional[BaseException]) -> None:
        """The invalidation join dispatched: resume the write program."""
        op = self._flat_ops[opidx]
        if exc is not None:
            self._flat_fail(opidx, op, exc)
            return
        if op[22]:
            # Contention-free the rounds overlap, so one round's worth
            # of transmission time is genuine latency; queuing beyond
            # that surfaces as contention.
            op[19] += op[13][9]
        self._flat_wr_unlock(opidx, op)

    def _flat_wr_unlock(self, opidx: int, op: list) -> None:
        """Release the directory and launch the write's final leg."""
        self._flat_unlock(op)
        plan = op[18]
        ctx = op[13]
        pid = op[14]
        home = op[16]
        if plan.had_data:
            # Ownership upgrade: permission only, granted by the home.
            if pid != home:
                self._flat_leg(opidx, op, home, pid, False, F_WR_GRANT)
                return
        elif plan.from_memory:
            if home != pid:
                self._flat_leg(opidx, op, home, pid, True, F_WR_DATA)
                return
        else:
            op[20] += ctx[8]
            op[11] = F_WR_HIT
            self._heap_row(self._now + ctx[8], K_FLAT, opidx)
            return
        self._flat_done(opidx, op)

    def _compact(self) -> None:
        """Renumber live rows into a fresh epoch (see module docstring).

        Pending heap entries are gathered in key order -- which *is*
        ``(time, seq)`` order -- so renumbering them ``0..h-1`` keeps
        every tie-break intact, and the sorted key list rebuilt with the
        new row numbers is already a valid heap.  Ring words with the
        packed-resume tag carry no row and pass through unchanged.  All
        containers are mutated in place so the run loop's cached locals
        stay valid across a compaction triggered from arbitrarily deep
        inside a process resumption.
        """
        c_meta = self._c_meta
        payload = self._payload
        entries = sorted(self._heap)
        nheap = len(entries)
        live_rows = [key & ROW_MASK for key in entries]
        ring_words = list(self._ring)
        for word in ring_words:
            if not word & 1:
                live_rows.append(word >> 1)
        live = len(live_rows)
        # Snapshot before overwriting: source and destination rows
        # overlap arbitrarily.
        times = [key >> ROW_BITS for key in entries]
        metas = [c_meta[r] for r in live_rows]
        pays = [payload[r] for r in live_rows]
        cap = self._cap
        while live * 2 > cap:
            cap *= 2
        if cap > (1 << ROW_BITS):  # pragma: no cover - 4G live rows
            raise SimulationError(
                f"row table cannot grow past 2**{ROW_BITS} rows"
            )
        if cap != self._cap:
            grow = cap - self._cap
            c_meta.extend(array("q", [0]) * grow)
            payload.extend([None] * grow)
            self._cap = cap
        for i in range(live):
            c_meta[i] = metas[i]
            payload[i] = pays[i]
        for i in range(live, self._top):
            payload[i] = None
        self._heap[:] = [(times[i] << ROW_BITS) | i for i in range(nheap)]
        ring = self._ring
        ring.clear()
        nxt = nheap
        for word in ring_words:
            if word & 1:
                ring.append(word)
            else:
                ring.append(nxt << 1)
                nxt += 1
        del self._free[:]
        self._top = live
        self._compactions += 1

    # -- processes -----------------------------------------------------------

    def spawn(self, generator: ProcessGenerator,
              name: str = "process") -> SoaProcess:
        """Start a new simulated process (API-compatible with the
        object kernel; returns the joinable shell event)."""
        self._processes_spawned += 1
        shell = SoaProcess(self, name)
        pfree = self._pfree
        if pfree:
            p = pfree.pop()
            self._gens[p] = generator
            self._sends[p] = generator.send
            self._procs[p] = shell
        else:
            p = len(self._gens)
            if p >= (1 << PROC_BITS):
                raise SimulationError(
                    f"too many live processes for the SoA kernel "
                    f"({p}); see PROC_BITS in repro.engine.core"
                )
            self._gens.append(generator)
            self._sends.append(generator.send)
            self._procs.append(shell)
        self._blocked += 1
        # Start-up occupies the same ring position the object kernel's
        # ``_schedule(now, self._start)`` would have taken.
        self._ring_scheduled += 1
        self._ring.append((p << 3) | _R_NONE)
        return shell

    def _finish(self, p: int, value: Any) -> None:
        """Generator returned: free the slot, trigger the shell."""
        self._blocked -= 1
        shell = self._procs[p]
        self._gens[p] = None
        self._sends[p] = None
        self._procs[p] = None
        self._pfree.append(p)
        shell.succeed(value)

    def _crash(self, p: int, exc: BaseException) -> None:
        """Generator raised: mirror ``Process._step`` failure semantics."""
        self._blocked -= 1
        shell = self._procs[p]
        self._gens[p] = None
        self._sends[p] = None
        self._procs[p] = None
        self._pfree.append(p)
        if self.fail_fast:
            if isinstance(exc, ReproError):
                # Simulator errors keep their type so callers can catch
                # e.g. RetryLimitError specifically.
                raise exc
            raise SimulationError(
                f"process {shell.name!r} raised {exc!r} at t={self._now}"
            ) from exc
        shell.fail(exc)

    def _handle_yield(self, p: int, y: Any) -> None:
        """Schedule process ``p``'s next resumption for yield ``y``.

        Method-form twin of the run loop's inline dispatch, used when a
        process is resumed from a handler context (event callbacks,
        pooled-timeout expiry, the guarded loop).  Every branch lands
        the resumption at the exact queue position the object kernel
        would have used.
        """
        cls = y.__class__
        if cls is int:
            if y > 0:
                self._heap_row(self._now + y, K_RESUME_NONE, p)
            elif y == 0:
                self._ring_scheduled += 1
                self._ring.append((p << 3) | _R_NONE)
            else:
                self._blocked -= 1
                raise SimulationError(
                    f"process {self._procs[p].name!r} yielded negative "
                    f"delay {y}"
                )
            return
        if cls is tuple:
            # ``yield (transact_flat, pid, addr, is_write)``: a
            # deferred flat-transaction request.  The kernel makes the
            # call itself -- the compiled tier recognizes the
            # registered callable (see ``_flat_mctx``) and builds the
            # op natively without entering the interpreter.
            if y[0](y[1], y[2], y[3]) is not FLAT_TX:
                self._blocked -= 1
                raise SimulationError(
                    f"process {self._procs[p].name!r} yielded a tuple "
                    "whose call did not start a flat transaction"
                )
            y = FLAT_TX
        if y is FLAT_TX:
            # Record the caller so completion can resume it (see
            # _flat_done), then run the op's first step -- the request
            # leg's first link, or the home-lock attempt on a
            # home-local miss.
            opidx = self._pending_flat_op
            op = self._flat_ops[opidx]
            op[12] = p
            if op[3] is None:
                self._flat_lock(opidx, op, op[11])
            else:
                self._flat_step(opidx)
            return
        if isinstance(y, Acquirable):
            # Inlined try_acquire (the Acquirable attribute contract).
            if y.in_use < y.capacity and not y._waiters:
                y.in_use += 1
                y.grants += 1
                self._ring_scheduled += 1
                self._ring.append((p << 3) | _R_ZERO)
            else:
                y._waiters.append((self._now << PROC_BITS) | p)
            return
        if isinstance(y, Event):
            callbacks = y._callbacks
            if callbacks is None:
                self._payload_row(K_EVWAIT, p, y)
            else:
                callbacks.append(p)
            return
        if y is TURN:
            self._ring_scheduled += 1
            self._ring.append((p << 3) | _R_ZERO)
            return
        self._blocked -= 1
        raise SimulationError(
            f"process {self._procs[p].name!r} yielded {y!r}; processes "
            "must yield an Event, a Resource, an int delay, or TURN"
        )

    def _advance(self, p: int, value: Any,
                 exc: Optional[BaseException]) -> None:
        """Resume process ``p`` synchronously from a handler context.

        Event callbacks run inside the dispatching event (matching the
        object kernel, so event counts agree); this is the resumption
        they use for int waiters.
        """
        if exc is not None:
            self._throw(p, exc)
            return
        try:
            y = self._sends[p](value)
        except StopIteration as stop:
            self._finish(p, stop.value)
            return
        except BaseException as e:
            self._crash(p, e)
            return
        self._handle_yield(p, y)

    def _throw(self, p: int, exc: BaseException) -> None:
        try:
            y = self._gens[p].throw(exc)
        except StopIteration as stop:
            self._finish(p, stop.value)
            return
        except BaseException as e:
            self._crash(p, e)
            return
        self._handle_yield(p, y)

    # -- profiling -----------------------------------------------------------

    def engine_profile(self) -> Dict[str, Any]:
        profile = super().engine_profile()
        # Heap pushes are not separately counted on the hot path (the
        # object kernel reuses its sequence counter for this); every
        # push was either already popped or is still pending.
        heap_executed = self.events_executed - self._ring_executed
        profile["heap_pushes"] = heap_executed + len(self._heap)
        profile["rows_recycled"] = self._rows_recycled
        profile["compactions"] = self._compactions
        profile["flat_posts"] = self._flat_posts
        profile["flat_tx"] = self.flat_tx
        profile["row_capacity"] = self._cap
        profile["rows_live"] = len(self._heap) + sum(
            1 for word in self._ring if not word & 1
        )
        return profile

    # -- run loops -----------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None,
            until_ns: Optional[int] = None) -> int:
        """Execute events; see :meth:`Simulator.run` for the contract."""
        if until_ns is not None:
            if until is not None:
                raise SimulationError(
                    "pass either until or until_ns, not both"
                )
            until = until_ns
        if max_events is not None and max_events <= 0:
            raise SimulationError(
                f"max_events must be positive, got {max_events}"
            )
        if until is None and max_events is None:
            return self._run_fast()
        return self._run_guarded(until, max_events)

    def _run_fast(self) -> int:
        """The hot loop: pop words, drive generators, push words.

        Heap rows at the current time run before ring words (same
        argument as the object kernel's ring design note).  The common
        resume tags and the single-int-waiter event dispatch are fully
        inlined -- the deliberate duplication with :meth:`_handle_yield`
        buys one less Python frame per event.  Locals cache every
        container; all of them are mutated in place (compaction grows
        the array rather than replacing it), so the cached references
        stay valid across anything a process resumption does.  Ring and
        recycle tallies accumulate in locals and flush once on exit;
        ``self._top`` stays an attribute because nested method-form
        pushes (``Event.succeed``, ``release``, ``spawn``) share the
        allocator mid-iteration.
        """
        heap = self._heap
        ring = self._ring
        free = self._free
        c_meta = self._c_meta
        payload = self._payload
        sends = self._sends
        heappop = heapq.heappop
        heappush = heapq.heappush
        ring_popleft = ring.popleft
        ring_append = ring.append
        free_append = free.append
        free_pop = free.pop
        now = self._now
        executed = 0
        ring_executed = 0
        ring_scheduled = 0
        recycled = 0
        try:
            while True:
                # -- pop: decode one event into (p, value) ------------
                e = -1
                if heap:
                    key = heap[0]
                    at = key >> ROW_BITS
                    if at <= now:
                        if at < now:
                            raise SimulationError(
                                f"time went backwards: {at} < {now}"
                            )
                        heappop(heap)
                    elif ring:
                        e = ring_popleft()
                        ring_executed += 1
                    else:
                        heappop(heap)
                        now = self._now = at
                elif ring:
                    e = ring_popleft()
                    ring_executed += 1
                else:
                    break
                executed += 1
                if e < 0:
                    # Heap row: sleeps, flat-op wakes, and legacy
                    # callables live on the heap.
                    row = key & ROW_MASK
                    free_append(row)
                    meta = c_meta[row]
                    kind = meta & 7
                    if kind == 0:        # K_RESUME_NONE
                        p = meta >> 3
                        value = None
                    elif kind == 6:      # K_FLAT
                        self._flat_wake(meta >> 3)
                        continue
                    else:                # K_CALL
                        action = payload[row]
                        payload[row] = None
                        action()
                        continue
                elif e & 1:
                    # Packed resume word: no row, pure decode.
                    tag = e & 7
                    if tag == _R_NONE:
                        p = e >> 3
                        value = None
                    elif tag == _R_ZERO:
                        p = e >> 3
                        value = 0
                    elif tag == _R_VAL:
                        p = (e >> 3) & PROC_MASK
                        value = e >> VAL_SHIFT
                    else:                # _R_FLAT
                        self._flat_step(e >> 3)
                        continue
                else:
                    # Payload row.  The row is returned to the free
                    # list before dispatch -- everything it held is
                    # read first.
                    row = e >> 1
                    free_append(row)
                    meta = c_meta[row]
                    kind = meta & 7
                    if kind == 3:        # K_EVENT
                        ev = payload[row]
                        payload[row] = None
                        callbacks = ev._callbacks
                        if (callbacks is not None
                                and len(callbacks) == 1
                                and callbacks[0].__class__ is int
                                and callbacks[0] >= 0
                                and ev._exception is None):
                            # Sole waiter is a process: resume it
                            # directly, inside this dispatch event
                            # (same event count as the object kernel's
                            # synchronous callback).
                            ev._callbacks = None
                            p = callbacks[0]
                            value = ev.value
                        else:
                            ev._dispatch()
                            continue
                    elif kind == 4:      # K_EVWAIT
                        ev = payload[row]
                        payload[row] = None
                        if ev._exception is not None:
                            self._throw(meta >> 3, ev._exception)
                            continue
                        p = meta >> 3
                        value = ev.value
                    else:                # K_CALL
                        action = payload[row]
                        payload[row] = None
                        action()
                        continue
                # -- drive: resume the generator, handle its yield ----
                try:
                    y = sends[p](value)
                except StopIteration as stop:
                    self._finish(p, stop.value)
                    continue
                except BaseException as exc:
                    self._crash(p, exc)
                    continue
                ycls = y.__class__
                if ycls is int:
                    if y > 0:
                        # Plain sleep: future heap row at the queue
                        # position a Timeout's expiry would have taken.
                        at = now + y
                        row = self._top
                        if row == self._cap:
                            self._compact()
                            row = self._top
                        self._top = row + 1
                        c_meta[row] = p << 3
                        heappush(heap, (at << ROW_BITS) | row)
                        continue
                    if y < 0:
                        self._blocked -= 1
                        raise SimulationError(
                            f"process {self._procs[p].name!r} yielded "
                            f"negative delay {y}"
                        )
                    # Zero-delay sleep: same-time redispatch via the
                    # ring, as a packed word.
                    ring_append((p << 3) | _R_NONE)
                    ring_scheduled += 1
                    continue
                if ycls is tuple:
                    # ``yield (transact_flat, pid, addr, is_write)``:
                    # a deferred flat-transaction request.  The kernel
                    # makes the call itself -- the compiled tier
                    # recognizes the registered callable (see
                    # ``_flat_mctx``) and builds the op natively
                    # without entering the interpreter.
                    if y[0](y[1], y[2], y[3]) is not FLAT_TX:
                        self._blocked -= 1
                        raise SimulationError(
                            f"process {self._procs[p].name!r} yielded "
                            "a tuple whose call did not start a flat "
                            "transaction"
                        )
                    y = FLAT_TX
                if y is FLAT_TX:
                    # ``yield machine.transact_flat(...)``: record the
                    # caller so completion can resume it (see
                    # _flat_done), then run the op's first step.
                    opidx = self._pending_flat_op
                    op = self._flat_ops[opidx]
                    op[12] = p
                    if op[3] is None:
                        self._flat_lock(opidx, op, op[11])
                    else:
                        self._flat_step(opidx)
                    continue
                if isinstance(y, Acquirable):
                    # ``yield resource``: inlined try_acquire, else park
                    # as a packed (wait_start << PROC_BITS) | p waiter.
                    if y.in_use < y.capacity and not y._waiters:
                        y.in_use += 1
                        y.grants += 1
                        ring_append((p << 3) | _R_ZERO)
                        ring_scheduled += 1
                    else:
                        y._waiters.append((now << PROC_BITS) | p)
                    continue
                if isinstance(y, Event):
                    callbacks = y._callbacks
                    if callbacks is None:
                        # Already dispatched: resume on the next queue
                        # step at the current time.
                        if free:
                            row = free_pop()
                            recycled += 1
                        else:
                            row = self._top
                            if row == self._cap:
                                self._compact()
                                row = self._top
                            self._top = row + 1
                        c_meta[row] = (p << 3) | 4   # K_EVWAIT
                        payload[row] = y
                        ring_append(row << 1)
                        ring_scheduled += 1
                    else:
                        callbacks.append(p)
                    continue
                if y is TURN:
                    ring_append((p << 3) | _R_ZERO)
                    ring_scheduled += 1
                    continue
                self._blocked -= 1
                raise SimulationError(
                    f"process {self._procs[p].name!r} yielded {y!r}; "
                    "processes must yield an Event, a Resource, an int "
                    "delay, or TURN"
                )
        finally:
            self.events_executed += executed
            self._ring_executed += ring_executed
            self._ring_scheduled += ring_scheduled
            self._rows_recycled += recycled
        if self._blocked > 0:
            raise DeadlockError(self._blocked, self._now)
        return self._now

    def _execute_row(self, row: int) -> None:
        """Method-form row dispatch for the guarded loop."""
        meta = self._c_meta[row]
        kind = meta & 7
        payload = self._payload
        if kind == 0:
            self._advance(meta >> 3, None, None)
        elif kind == 6:
            self._flat_wake(meta >> 3)
        elif kind == 3:
            ev = payload[row]
            payload[row] = None
            ev._dispatch()
        elif kind == 4:
            ev = payload[row]
            payload[row] = None
            self._advance(meta >> 3, ev.value, ev._exception)
        else:
            action = payload[row]
            payload[row] = None
            action()

    def _execute_word(self, e: int) -> None:
        """Method-form ring-word dispatch for the guarded loop."""
        if e & 1:
            tag = e & 7
            if tag == _R_NONE:
                self._advance(e >> 3, None, None)
            elif tag == _R_ZERO:
                self._advance(e >> 3, 0, None)
            elif tag == _R_VAL:
                self._advance((e >> 3) & PROC_MASK, e >> VAL_SHIFT, None)
            else:
                self._flat_step(e >> 3)
        else:
            row = e >> 1
            self._free.append(row)
            self._execute_row(row)

    def _run_guarded(self, until: Optional[int],
                     max_events: Optional[int]) -> int:
        """Word-based loop with horizon and watchdog checks."""
        heap = self._heap
        ring = self._ring
        free = self._free
        executed = 0
        now = self._now
        while True:
            key = 0
            if heap:
                key = heap[0]
                at = key >> ROW_BITS
                use_ring = at > now and bool(ring)
                if use_ring:
                    at = now
            elif ring:
                use_ring = True
                at = now
            else:
                break
            if until is not None and at > until:
                self._now = until
                return until
            if max_events is not None and executed >= max_events:
                raise WatchdogError(
                    self._now, executed, self._blocked,
                    len(heap) + len(ring)
                )
            self.events_executed += 1
            executed += 1
            if use_ring:
                self._ring_executed += 1
                self._execute_word(ring.popleft())
            else:
                if at < now:
                    raise SimulationError(
                        f"time went backwards: {at} < {now}"
                    )
                heapq.heappop(heap)
                now = self._now = at
                row = key & ROW_MASK
                free.append(row)
                self._execute_row(row)
        if until is None and self._blocked > 0:
            raise DeadlockError(self._blocked, self._now)
        if until is not None:
            self._now = max(self._now, until)
        return self._now
