"""Struct-of-arrays event kernel: the un-instrumented fast engine.

The object kernel in :mod:`repro.engine.core` drives every event
through Python objects -- a heap of ``(time, seq, action)`` tuples, a
``functools.partial`` per resumption, a ``Process._step`` frame per
yield.  At a few microseconds of host time per simulated event that
interpreter-dispatch overhead is the repo's scaling ceiling (see
ROADMAP item 2).  This module replaces the storage and the loop while
keeping the executed *event sequence* bit-identical:

Packed queue words
    Most events are process resumptions that carry at most a small int
    (a grant's wait time): they need no object at all, so the queues
    hold plain ints and the run loop decodes them with shifts and
    masks.  A future resumption is a heap key
    ``(time << ROW_BITS) | row``; a same-time resumption is a ring word
    ``(value << VAL_SHIFT) | (proc << 3) | tag`` -- pushed, popped, and
    decoded without touching the allocator at all.

Row table (struct of arrays)
    Events that carry a Python object (event dispatches, late event
    waiters, legacy callables) park it in a preallocated, growable row
    table: an ``array('q')`` metadata column holding
    ``(target << 3) | kind`` plus a parallel object payload column.
    The *row index* stands in for the old action object.  There is no
    separate time or sequence column: a heap key's high bits are the
    time, and heap rows are allocated in strictly increasing order, so
    the row index *is* the sequence number -- the tie-break the object
    kernel stores explicitly comes for free.

Index-based heap + same-time FIFO ring
    Future rows sit in a binary heap of packed int keys ordered by C
    ``heapq``; because heap rows are monotone, the key's low bits break
    same-time ties in schedule order -- exactly the ``(time, seq)``
    order of the object kernel.  ``ROW_BITS`` is a fixed 32: a constant
    field width means the decode masks in the run loop can never go
    stale, no matter when a nested call grows the table.  Work
    scheduled at the current time bypasses the heap through a deque
    holding packed resume words (tag bit set) and shifted row indices
    (tag bit clear), mirroring the object kernel's ring.

Free-list row recycling
    Every popped row is returned to a free list before its action runs
    and is typically reused by the next payload-carrying push, so
    steady-state scheduling allocates nothing: resume events are pure
    int arithmetic and payload events recycle rows.

Epoch compaction
    When the monotone allocator reaches the end of the row table the
    kernel renumbers live rows into a fresh epoch: pending heap entries
    are gathered in key order (preserving ``(time, seq)``), assigned
    rows ``0..h-1``, ring rows follow (packed resume words carry no row
    and pass through untouched), and the columns grow in place (same
    array objects, so the run loop's cached locals stay valid) doubling
    only while live rows exceed half the capacity.  Live rows are
    bounded by blocked processes, so with the default capacity a long
    run compacts every few thousand heap pushes at a cost of a few
    dozen row copies.

Direct generator drive
    The run loop resumes process generators through a cached bound
    ``gen.send`` and handles the yielded value inline -- no ``Process``
    step frame, no partial, no tuple.  Event dispatch still runs waiter
    callbacks *synchronously inside the dispatch event* (so event
    counts match the object kernel exactly); waiting processes are
    parked in ``Event._callbacks`` / ``Resource._waiters`` as plain
    ints and resumed via :meth:`SoaSimulator._advance`.

Kernel selection (see :func:`repro.engine.make_simulator`): the SoA
kernel is the default un-instrumented engine; ``REPRO_ENGINE=object``
or ``SystemConfig.engine_kernel`` forces the fallback, and simulators
with engine-level checker hooks *always* run the object kernel so
sanitizers observe real ``(time, seq)`` actions.  Both kernels execute
identical event sequences -- same ``sim_events``, same results, same
determinism digests -- which the parity tests pin.

The loop is deliberately written in a compile-friendly style -- int
words, flat branches on small int tags, no closures in the hot path --
so a later mypyc/Cython build of this module is a compile flag, not
another refactor.
"""

from __future__ import annotations

import heapq
from array import array
from collections import deque
from typing import Any, Dict, List, Optional

from ..errors import DeadlockError, ReproError, SimulationError, WatchdogError
from .core import (
    PROC_BITS,
    PROC_MASK,
    TURN,
    Acquirable,
    Event,
    ProcessGenerator,
    Simulator,
)

# Row kinds, stored in the metadata column's low 3 bits.
K_RESUME_NONE = 0  #: resume generator with None (process start, sleeps)
K_RESUME_ZERO = 1  #: resume with 0 (TURN / immediate resource grant)
K_RESUME_VAL = 2   #: resume with the packed value (queued resource grant)
K_EVENT = 3        #: dispatch the payload Event's callbacks/waiters
K_EVWAIT = 4       #: late waiter on an already-dispatched payload Event
K_CALL = 5         #: invoke the payload callable (legacy ``_schedule``)
K_FLAT = 6         #: flat-op transmission wake (settle, see flat_transmit)

# Ring word encoding.  Bit 0 distinguishes packed resumptions (no row)
# from row indices:
#
#   packed resume:  (value << VAL_SHIFT) | (proc << 3) | tag
#   row index:      row << 1
#
# where only K_RESUME_VAL carries a value (a grant's wait time, >= 0).
_R_NONE = 1        #: ring word tag for K_RESUME_NONE
_R_ZERO = 3        #: ring word tag for K_RESUME_ZERO
_R_VAL = 5         #: ring word tag for K_RESUME_VAL
_R_FLAT = 7        #: flat-op step word: ``(opidx << 3) | 7`` (no value)
VAL_SHIFT = 3 + PROC_BITS

#: Fixed width of the row field in a packed heap key.  A constant --
#: rather than one derived from the current capacity -- means the
#: decode masks in the run loop can never go stale and compaction never
#: re-packs keys for a width change.  4G live rows is far beyond what
#: host memory admits; :meth:`SoaSimulator._compact` enforces the bound.
ROW_BITS = 32
ROW_MASK = (1 << ROW_BITS) - 1

#: Initial row-table capacity (rows, grown by epoch compaction).
DEFAULT_ROW_CAPACITY = 4096


class SoaProcess(Event):
    """Joinable shell of a process driven by the SoA kernel.

    The generator itself lives in the simulator's process table; this
    object is only the :class:`Event` other processes ``yield`` to join
    -- it triggers with the generator's return value, exactly like
    :class:`~repro.engine.core.Process`.
    """

    __slots__ = ("name",)

    def __init__(self, sim: "SoaSimulator", name: str):
        self.sim = sim
        self._callbacks: Optional[List[Any]] = []
        self.triggered = False
        self.value: Any = None
        self._exception: Optional[BaseException] = None
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "running"
        return f"<SoaProcess {self.name} {state}>"


class SoaSimulator(Simulator):
    """Drop-in :class:`~repro.engine.core.Simulator` on the SoA kernel.

    The public API (``spawn`` / ``timeout`` / ``event`` / ``run`` /
    ``engine_profile``) is unchanged; only the internal event storage
    and the run loop differ.  Construct through
    :func:`repro.engine.make_simulator`, which enforces the
    object-path-for-hooks invariant.
    """

    kernel = "soa"

    #: This kernel executes flattened leaf resumes (flat ops) natively;
    #: see :meth:`flat_transmit`.
    _flat_capable = True

    def __init__(self, fail_fast: bool = True, checkers=(),
                 row_capacity: int = DEFAULT_ROW_CAPACITY):
        super().__init__(fail_fast=fail_fast, checkers=checkers)
        if self._instrumented:
            raise SimulationError(
                "the SoA kernel cannot host engine-level checker hooks; "
                "instrumented simulators must run the object kernel "
                "(use repro.engine.make_simulator)"
            )
        if row_capacity < 8:
            row_capacity = 8
        cap = 1 << (row_capacity - 1).bit_length()  # power of two
        self._cap = cap
        #: Metadata column: ``(target << 3) | kind`` per row.
        self._c_meta = array("q", [0]) * cap
        #: Parallel object column (event / callable payloads).
        self._payload: List[Any] = [None] * cap
        #: Monotone row allocator; heap rows must come from here so the
        #: key's low bits preserve push order (see module docstring).
        self._top = 0
        #: Free list of recycled rows, fed by every row pop and
        #: consumed by payload-carrying ring pushes (packed resume
        #: words never touch it).
        self._free: List[int] = []
        self._heap: List[int] = []
        self._ring: deque = deque()
        self._rows_recycled = 0
        self._compactions = 0
        # Process table: generator, cached bound send, joinable shell.
        self._gens: List[Any] = []
        self._sends: List[Any] = []
        self._procs: List[Optional[SoaProcess]] = []
        self._pfree: List[int] = []
        # Flat-op table: tag-dispatched leaf transmits the kernel
        # executes without a generator frame (see flat_transmit).
        self._flat_ops: List[Optional[list]] = []
        self._flat_free: List[int] = []
        self._flat_posts = 0
        # Event.succeed / timeouts / late callbacks schedule through
        # these entry points; shadow the object-kernel pair installed by
        # Simulator.__init__ with row pushes.
        self._schedule = self._schedule_row
        self._schedule_event = self._schedule_event_row

    # -- row scheduling ------------------------------------------------------

    def _payload_row(self, kind: int, target: int, pay: Any) -> None:
        """Enqueue a payload-carrying row on the FIFO ring."""
        free = self._free
        if free:
            row = free.pop()
            self._rows_recycled += 1
        else:
            row = self._top
            if row == self._cap:
                self._compact()
                row = self._top
            self._top = row + 1
        self._c_meta[row] = (target << 3) | kind
        self._payload[row] = pay
        self._ring_scheduled += 1
        self._ring.append(row << 1)

    def _heap_row(self, at: int, kind: int, target: int,
                  pay: Any = None) -> None:
        """Enqueue a future row on the packed-key heap (monotone rows)."""
        row = self._top
        if row == self._cap:
            self._compact()
            row = self._top
        self._top = row + 1
        self._c_meta[row] = (target << 3) | kind
        if pay is not None:
            self._payload[row] = pay
        heapq.heappush(self._heap, (at << ROW_BITS) | row)

    def _schedule_row(self, at: int, action) -> None:
        # Legacy entry point (unpooled Timeouts, late add_callback
        # joiners): the callable rides in the payload column.
        if at == self._now:
            self._payload_row(K_CALL, 0, action)
        else:
            self._heap_row(at, K_CALL, 0, action)

    def _schedule_event_row(self, event: Event) -> None:
        # ``_payload_row`` inlined: Event.succeed lands here for every
        # triggered event, making this the hottest method-form push.
        free = self._free
        if free:
            row = free.pop()
            self._rows_recycled += 1
        else:
            row = self._top
            if row == self._cap:
                self._compact()
                row = self._top
            self._top = row + 1
        self._c_meta[row] = K_EVENT
        self._payload[row] = event
        self._ring_scheduled += 1
        self._ring.append(row << 1)

    def _grant(self, p: int, waited: int) -> None:
        """Ring-resume a process whose packed resource wait was granted.

        Called by :meth:`~repro.engine.resource.Resource.release`; the
        word occupies the exact ring position the grant event's dispatch
        would have taken on the object kernel.
        """
        self._ring_scheduled += 1
        self._ring.append((waited << VAL_SHIFT) | (p << 3) | _R_VAL)

    # -- flat ops ------------------------------------------------------------
    #
    # A *flat op* replaces the highest-frequency spawned generators --
    # fire-and-forget link transmits on the plain fabric (writebacks,
    # sharing writebacks, invalidation+ack rounds) -- with a table entry
    # the kernel steps through directly.  Each op is a plain list with
    # fixed slots:
    #
    #   0 shell    joinable Event, succeeded when the op finishes
    #   1 fabric   the Fabric charged at settle time
    #   2 legs     tuple of (path, nbytes, transmit_ns) legs
    #   3 path     current leg's tuple of Links
    #   4 nbytes   current leg's payload size
    #   5 tx_ns    current leg's contention-free transmission time
    #   6 i        links of the current leg acquired so far
    #   7 start    simulated time the current leg started
    #   8 circuit  simulated time the current leg's circuit completed
    #   9 value    the shell's success value
    #  10 legidx   index of the current leg
    #
    # The op's timeline mirrors the generator it replaces *step for
    # step*: the spawn word doubles as the first link-acquire attempt,
    # every link grant is one ring word (``(opidx << 3) | _R_FLAT``
    # here, ``_R_ZERO``/``_R_VAL`` there), the transmission sleep is a
    # fresh monotone heap row (kind ``K_FLAT``), and the settle step
    # applies the same per-link/fabric accounting before succeeding the
    # shell -- whose ``K_EVENT`` dispatch is the same trailing event a
    # finished process produces.  Event counts, queue positions, and all
    # statistics are therefore identical to the generator form, which
    # the cross-kernel parity tests pin.  Busy links park the op as the
    # complement-packed *negative* int ``~((now << PROC_BITS) | opidx)``
    # so ``Resource.release`` can tell it from a process waiter.

    def flat_transmit(self, fabric, legs, value: Any = None) -> Event:
        """Post a flattened fire-and-forget transmit; returns the shell.

        ``legs`` is a tuple of ``(path, nbytes, transmit_ns)`` with
        non-empty link paths.  Only valid on flat-capable kernels (see
        ``_flat_capable``); callers fall back to spawning the generator
        twin otherwise, producing the same event sequence.
        """
        shell = Event(self)
        path, nbytes, tx = legs[0]
        op = [shell, fabric, legs, path, nbytes, tx, 0, self._now, 0,
              value, 0]
        free = self._flat_free
        if free:
            opidx = free.pop()
            self._flat_ops[opidx] = op
        else:
            opidx = len(self._flat_ops)
            if opidx >= (1 << PROC_BITS):  # pragma: no cover - ~1M live
                raise SimulationError(
                    f"too many live flat ops ({opidx}); see PROC_BITS "
                    "in repro.engine.core"
                )
            self._flat_ops.append(op)
        self._flat_posts += 1
        self._blocked += 1
        # The start word doubles as the first acquire attempt, exactly
        # where the generator's start-up resumption would have run.
        self._ring_scheduled += 1
        self._ring.append((opidx << 3) | _R_FLAT)
        return shell

    def _flat_step(self, opidx: int) -> None:
        """One acquire-or-transmit step of a flat op (ring word pop)."""
        op = self._flat_ops[opidx]
        path = op[3]
        i = op[6]
        if i < len(path):
            link = path[i]
            # Inlined try_acquire (the Acquirable attribute contract),
            # mirroring the kernel's ``yield link`` handling.
            if link.in_use < link.capacity and not link._waiters:
                link.in_use += 1
                link.grants += 1
                op[6] = i + 1
                self._ring_scheduled += 1
                self._ring.append((opidx << 3) | _R_FLAT)
            else:
                link._waiters.append(
                    ~((self._now << PROC_BITS) | opidx)
                )
            return
        # Circuit complete: the transmission sleep, as a fresh monotone
        # heap row -- the position the generator's ``yield tx`` takes.
        op[8] = self._now
        self._heap_row(self._now + op[5], K_FLAT, opidx)

    def _flat_grant(self, opidx: int) -> None:
        """A parked flat op was granted its link (Resource.release)."""
        # The grant transferred the unit, so the op now holds the link;
        # the step word lands at the exact ring position the generator's
        # ``_R_VAL`` resume word would have taken.
        self._flat_ops[opidx][6] += 1
        self._ring_scheduled += 1
        self._ring.append((opidx << 3) | _R_FLAT)

    def _flat_wake(self, opidx: int) -> None:
        """Settle step of a flat op (transmission heap row popped)."""
        op = self._flat_ops[opidx]
        fabric = op[1]
        path = op[3]
        nbytes = op[4]
        tx = op[5]
        now = self._now
        circuit = op[8]
        held_ns = now - circuit
        for link in path:
            link.messages += 1
            link.bytes_carried += nbytes
            link.busy_ns += held_ns
            if link._waiters:
                link.release()
            else:
                # Uncontended release inlined (this op holds the link,
                # so in_use >= 1) -- same as Fabric.settle_fast.
                link.in_use -= 1
        fabric.messages += 1
        fabric.bytes_transported += nbytes
        fabric.total_latency_ns += tx
        fabric.total_contention_ns += circuit - op[7]
        legs = op[2]
        legidx = op[10] + 1
        if legidx < len(legs):
            # Next leg starts inside this settle step, exactly as the
            # generator's wake resumption runs on to its next
            # ``yield link``.
            path, nbytes, tx = legs[legidx]
            op[3] = path
            op[4] = nbytes
            op[5] = tx
            op[6] = 0
            op[7] = now
            op[10] = legidx
            self._flat_step(opidx)
            return
        # Done: mirror ``_finish`` -- unblock, recycle, succeed the
        # shell (its K_EVENT dispatch is the trailing parity event).
        self._blocked -= 1
        shell = op[0]
        value = op[9]
        self._flat_ops[opidx] = None
        self._flat_free.append(opidx)
        shell.succeed(value)

    def _compact(self) -> None:
        """Renumber live rows into a fresh epoch (see module docstring).

        Pending heap entries are gathered in key order -- which *is*
        ``(time, seq)`` order -- so renumbering them ``0..h-1`` keeps
        every tie-break intact, and the sorted key list rebuilt with the
        new row numbers is already a valid heap.  Ring words with the
        packed-resume tag carry no row and pass through unchanged.  All
        containers are mutated in place so the run loop's cached locals
        stay valid across a compaction triggered from arbitrarily deep
        inside a process resumption.
        """
        c_meta = self._c_meta
        payload = self._payload
        entries = sorted(self._heap)
        nheap = len(entries)
        live_rows = [key & ROW_MASK for key in entries]
        ring_words = list(self._ring)
        for word in ring_words:
            if not word & 1:
                live_rows.append(word >> 1)
        live = len(live_rows)
        # Snapshot before overwriting: source and destination rows
        # overlap arbitrarily.
        times = [key >> ROW_BITS for key in entries]
        metas = [c_meta[r] for r in live_rows]
        pays = [payload[r] for r in live_rows]
        cap = self._cap
        while live * 2 > cap:
            cap *= 2
        if cap > (1 << ROW_BITS):  # pragma: no cover - 4G live rows
            raise SimulationError(
                f"row table cannot grow past 2**{ROW_BITS} rows"
            )
        if cap != self._cap:
            grow = cap - self._cap
            c_meta.extend(array("q", [0]) * grow)
            payload.extend([None] * grow)
            self._cap = cap
        for i in range(live):
            c_meta[i] = metas[i]
            payload[i] = pays[i]
        for i in range(live, self._top):
            payload[i] = None
        self._heap[:] = [(times[i] << ROW_BITS) | i for i in range(nheap)]
        ring = self._ring
        ring.clear()
        nxt = nheap
        for word in ring_words:
            if word & 1:
                ring.append(word)
            else:
                ring.append(nxt << 1)
                nxt += 1
        del self._free[:]
        self._top = live
        self._compactions += 1

    # -- processes -----------------------------------------------------------

    def spawn(self, generator: ProcessGenerator,
              name: str = "process") -> SoaProcess:
        """Start a new simulated process (API-compatible with the
        object kernel; returns the joinable shell event)."""
        self._processes_spawned += 1
        shell = SoaProcess(self, name)
        pfree = self._pfree
        if pfree:
            p = pfree.pop()
            self._gens[p] = generator
            self._sends[p] = generator.send
            self._procs[p] = shell
        else:
            p = len(self._gens)
            if p >= (1 << PROC_BITS):
                raise SimulationError(
                    f"too many live processes for the SoA kernel "
                    f"({p}); see PROC_BITS in repro.engine.core"
                )
            self._gens.append(generator)
            self._sends.append(generator.send)
            self._procs.append(shell)
        self._blocked += 1
        # Start-up occupies the same ring position the object kernel's
        # ``_schedule(now, self._start)`` would have taken.
        self._ring_scheduled += 1
        self._ring.append((p << 3) | _R_NONE)
        return shell

    def _finish(self, p: int, value: Any) -> None:
        """Generator returned: free the slot, trigger the shell."""
        self._blocked -= 1
        shell = self._procs[p]
        self._gens[p] = None
        self._sends[p] = None
        self._procs[p] = None
        self._pfree.append(p)
        shell.succeed(value)

    def _crash(self, p: int, exc: BaseException) -> None:
        """Generator raised: mirror ``Process._step`` failure semantics."""
        self._blocked -= 1
        shell = self._procs[p]
        self._gens[p] = None
        self._sends[p] = None
        self._procs[p] = None
        self._pfree.append(p)
        if self.fail_fast:
            if isinstance(exc, ReproError):
                # Simulator errors keep their type so callers can catch
                # e.g. RetryLimitError specifically.
                raise exc
            raise SimulationError(
                f"process {shell.name!r} raised {exc!r} at t={self._now}"
            ) from exc
        shell.fail(exc)

    def _handle_yield(self, p: int, y: Any) -> None:
        """Schedule process ``p``'s next resumption for yield ``y``.

        Method-form twin of the run loop's inline dispatch, used when a
        process is resumed from a handler context (event callbacks,
        pooled-timeout expiry, the guarded loop).  Every branch lands
        the resumption at the exact queue position the object kernel
        would have used.
        """
        cls = y.__class__
        if cls is int:
            if y > 0:
                self._heap_row(self._now + y, K_RESUME_NONE, p)
            elif y == 0:
                self._ring_scheduled += 1
                self._ring.append((p << 3) | _R_NONE)
            else:
                self._blocked -= 1
                raise SimulationError(
                    f"process {self._procs[p].name!r} yielded negative "
                    f"delay {y}"
                )
            return
        if isinstance(y, Acquirable):
            # Inlined try_acquire (the Acquirable attribute contract).
            if y.in_use < y.capacity and not y._waiters:
                y.in_use += 1
                y.grants += 1
                self._ring_scheduled += 1
                self._ring.append((p << 3) | _R_ZERO)
            else:
                y._waiters.append((self._now << PROC_BITS) | p)
            return
        if isinstance(y, Event):
            callbacks = y._callbacks
            if callbacks is None:
                self._payload_row(K_EVWAIT, p, y)
            else:
                callbacks.append(p)
            return
        if y is TURN:
            self._ring_scheduled += 1
            self._ring.append((p << 3) | _R_ZERO)
            return
        self._blocked -= 1
        raise SimulationError(
            f"process {self._procs[p].name!r} yielded {y!r}; processes "
            "must yield an Event, a Resource, an int delay, or TURN"
        )

    def _advance(self, p: int, value: Any,
                 exc: Optional[BaseException]) -> None:
        """Resume process ``p`` synchronously from a handler context.

        Event callbacks run inside the dispatching event (matching the
        object kernel, so event counts agree); this is the resumption
        they use for int waiters.
        """
        if exc is not None:
            self._throw(p, exc)
            return
        try:
            y = self._sends[p](value)
        except StopIteration as stop:
            self._finish(p, stop.value)
            return
        except BaseException as e:
            self._crash(p, e)
            return
        self._handle_yield(p, y)

    def _throw(self, p: int, exc: BaseException) -> None:
        try:
            y = self._gens[p].throw(exc)
        except StopIteration as stop:
            self._finish(p, stop.value)
            return
        except BaseException as e:
            self._crash(p, e)
            return
        self._handle_yield(p, y)

    # -- profiling -----------------------------------------------------------

    def engine_profile(self) -> Dict[str, Any]:
        profile = super().engine_profile()
        # Heap pushes are not separately counted on the hot path (the
        # object kernel reuses its sequence counter for this); every
        # push was either already popped or is still pending.
        heap_executed = self.events_executed - self._ring_executed
        profile["heap_pushes"] = heap_executed + len(self._heap)
        profile["rows_recycled"] = self._rows_recycled
        profile["compactions"] = self._compactions
        profile["flat_posts"] = self._flat_posts
        profile["row_capacity"] = self._cap
        profile["rows_live"] = len(self._heap) + sum(
            1 for word in self._ring if not word & 1
        )
        return profile

    # -- run loops -----------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None,
            until_ns: Optional[int] = None) -> int:
        """Execute events; see :meth:`Simulator.run` for the contract."""
        if until_ns is not None:
            if until is not None:
                raise SimulationError(
                    "pass either until or until_ns, not both"
                )
            until = until_ns
        if max_events is not None and max_events <= 0:
            raise SimulationError(
                f"max_events must be positive, got {max_events}"
            )
        if until is None and max_events is None:
            return self._run_fast()
        return self._run_guarded(until, max_events)

    def _run_fast(self) -> int:
        """The hot loop: pop words, drive generators, push words.

        Heap rows at the current time run before ring words (same
        argument as the object kernel's ring design note).  The common
        resume tags and the single-int-waiter event dispatch are fully
        inlined -- the deliberate duplication with :meth:`_handle_yield`
        buys one less Python frame per event.  Locals cache every
        container; all of them are mutated in place (compaction grows
        the array rather than replacing it), so the cached references
        stay valid across anything a process resumption does.  Ring and
        recycle tallies accumulate in locals and flush once on exit;
        ``self._top`` stays an attribute because nested method-form
        pushes (``Event.succeed``, ``release``, ``spawn``) share the
        allocator mid-iteration.
        """
        heap = self._heap
        ring = self._ring
        free = self._free
        c_meta = self._c_meta
        payload = self._payload
        sends = self._sends
        heappop = heapq.heappop
        heappush = heapq.heappush
        ring_popleft = ring.popleft
        ring_append = ring.append
        free_append = free.append
        free_pop = free.pop
        now = self._now
        executed = 0
        ring_executed = 0
        ring_scheduled = 0
        recycled = 0
        try:
            while True:
                # -- pop: decode one event into (p, value) ------------
                e = -1
                if heap:
                    key = heap[0]
                    at = key >> ROW_BITS
                    if at <= now:
                        if at < now:
                            raise SimulationError(
                                f"time went backwards: {at} < {now}"
                            )
                        heappop(heap)
                    elif ring:
                        e = ring_popleft()
                        ring_executed += 1
                    else:
                        heappop(heap)
                        now = self._now = at
                elif ring:
                    e = ring_popleft()
                    ring_executed += 1
                else:
                    break
                executed += 1
                if e < 0:
                    # Heap row: sleeps, flat-op wakes, and legacy
                    # callables live on the heap.
                    row = key & ROW_MASK
                    free_append(row)
                    meta = c_meta[row]
                    kind = meta & 7
                    if kind == 0:        # K_RESUME_NONE
                        p = meta >> 3
                        value = None
                    elif kind == 6:      # K_FLAT
                        self._flat_wake(meta >> 3)
                        continue
                    else:                # K_CALL
                        action = payload[row]
                        payload[row] = None
                        action()
                        continue
                elif e & 1:
                    # Packed resume word: no row, pure decode.
                    tag = e & 7
                    if tag == _R_NONE:
                        p = e >> 3
                        value = None
                    elif tag == _R_ZERO:
                        p = e >> 3
                        value = 0
                    elif tag == _R_VAL:
                        p = (e >> 3) & PROC_MASK
                        value = e >> VAL_SHIFT
                    else:                # _R_FLAT
                        self._flat_step(e >> 3)
                        continue
                else:
                    # Payload row.  The row is returned to the free
                    # list before dispatch -- everything it held is
                    # read first.
                    row = e >> 1
                    free_append(row)
                    meta = c_meta[row]
                    kind = meta & 7
                    if kind == 3:        # K_EVENT
                        ev = payload[row]
                        payload[row] = None
                        callbacks = ev._callbacks
                        if (callbacks is not None
                                and len(callbacks) == 1
                                and callbacks[0].__class__ is int
                                and ev._exception is None):
                            # Sole waiter is a process: resume it
                            # directly, inside this dispatch event
                            # (same event count as the object kernel's
                            # synchronous callback).
                            ev._callbacks = None
                            p = callbacks[0]
                            value = ev.value
                        else:
                            ev._dispatch()
                            continue
                    elif kind == 4:      # K_EVWAIT
                        ev = payload[row]
                        payload[row] = None
                        if ev._exception is not None:
                            self._throw(meta >> 3, ev._exception)
                            continue
                        p = meta >> 3
                        value = ev.value
                    else:                # K_CALL
                        action = payload[row]
                        payload[row] = None
                        action()
                        continue
                # -- drive: resume the generator, handle its yield ----
                try:
                    y = sends[p](value)
                except StopIteration as stop:
                    self._finish(p, stop.value)
                    continue
                except BaseException as exc:
                    self._crash(p, exc)
                    continue
                ycls = y.__class__
                if ycls is int:
                    if y > 0:
                        # Plain sleep: future heap row at the queue
                        # position a Timeout's expiry would have taken.
                        at = now + y
                        row = self._top
                        if row == self._cap:
                            self._compact()
                            row = self._top
                        self._top = row + 1
                        c_meta[row] = p << 3
                        heappush(heap, (at << ROW_BITS) | row)
                        continue
                    if y < 0:
                        self._blocked -= 1
                        raise SimulationError(
                            f"process {self._procs[p].name!r} yielded "
                            f"negative delay {y}"
                        )
                    # Zero-delay sleep: same-time redispatch via the
                    # ring, as a packed word.
                    ring_append((p << 3) | _R_NONE)
                    ring_scheduled += 1
                    continue
                if isinstance(y, Acquirable):
                    # ``yield resource``: inlined try_acquire, else park
                    # as a packed (wait_start << PROC_BITS) | p waiter.
                    if y.in_use < y.capacity and not y._waiters:
                        y.in_use += 1
                        y.grants += 1
                        ring_append((p << 3) | _R_ZERO)
                        ring_scheduled += 1
                    else:
                        y._waiters.append((now << PROC_BITS) | p)
                    continue
                if isinstance(y, Event):
                    callbacks = y._callbacks
                    if callbacks is None:
                        # Already dispatched: resume on the next queue
                        # step at the current time.
                        if free:
                            row = free_pop()
                            recycled += 1
                        else:
                            row = self._top
                            if row == self._cap:
                                self._compact()
                                row = self._top
                            self._top = row + 1
                        c_meta[row] = (p << 3) | 4   # K_EVWAIT
                        payload[row] = y
                        ring_append(row << 1)
                        ring_scheduled += 1
                    else:
                        callbacks.append(p)
                    continue
                if y is TURN:
                    ring_append((p << 3) | _R_ZERO)
                    ring_scheduled += 1
                    continue
                self._blocked -= 1
                raise SimulationError(
                    f"process {self._procs[p].name!r} yielded {y!r}; "
                    "processes must yield an Event, a Resource, an int "
                    "delay, or TURN"
                )
        finally:
            self.events_executed += executed
            self._ring_executed += ring_executed
            self._ring_scheduled += ring_scheduled
            self._rows_recycled += recycled
        if self._blocked > 0:
            raise DeadlockError(self._blocked, self._now)
        return self._now

    def _execute_row(self, row: int) -> None:
        """Method-form row dispatch for the guarded loop."""
        meta = self._c_meta[row]
        kind = meta & 7
        payload = self._payload
        if kind == 0:
            self._advance(meta >> 3, None, None)
        elif kind == 6:
            self._flat_wake(meta >> 3)
        elif kind == 3:
            ev = payload[row]
            payload[row] = None
            ev._dispatch()
        elif kind == 4:
            ev = payload[row]
            payload[row] = None
            self._advance(meta >> 3, ev.value, ev._exception)
        else:
            action = payload[row]
            payload[row] = None
            action()

    def _execute_word(self, e: int) -> None:
        """Method-form ring-word dispatch for the guarded loop."""
        if e & 1:
            tag = e & 7
            if tag == _R_NONE:
                self._advance(e >> 3, None, None)
            elif tag == _R_ZERO:
                self._advance(e >> 3, 0, None)
            elif tag == _R_VAL:
                self._advance((e >> 3) & PROC_MASK, e >> VAL_SHIFT, None)
            else:
                self._flat_step(e >> 3)
        else:
            row = e >> 1
            self._free.append(row)
            self._execute_row(row)

    def _run_guarded(self, until: Optional[int],
                     max_events: Optional[int]) -> int:
        """Word-based loop with horizon and watchdog checks."""
        heap = self._heap
        ring = self._ring
        free = self._free
        executed = 0
        now = self._now
        while True:
            key = 0
            if heap:
                key = heap[0]
                at = key >> ROW_BITS
                use_ring = at > now and bool(ring)
                if use_ring:
                    at = now
            elif ring:
                use_ring = True
                at = now
            else:
                break
            if until is not None and at > until:
                self._now = until
                return until
            if max_events is not None and executed >= max_events:
                raise WatchdogError(
                    self._now, executed, self._blocked,
                    len(heap) + len(ring)
                )
            self.events_executed += 1
            executed += 1
            if use_ring:
                self._ring_executed += 1
                self._execute_word(ring.popleft())
            else:
                if at < now:
                    raise SimulationError(
                        f"time went backwards: {at} < {now}"
                    )
                heapq.heappop(heap)
                now = self._now = at
                row = key & ROW_MASK
                free.append(row)
                self._execute_row(row)
        if until is None and self._blocked > 0:
            raise DeadlockError(self._blocked, self._now)
        if until is not None:
            self._now = max(self._now, until)
        return self._now
