"""FIFO resources with finite capacity.

A :class:`Resource` models a piece of hardware that at most ``capacity``
processes may hold at once -- a unidirectional network link
(``capacity=1``), or a directory entry's request serialization point.
Requests are granted strictly in arrival order, which both matches how
a circuit-switched link arbitrates and keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from ..errors import SimulationError
from .core import PROC_BITS, PROC_MASK, Acquirable, Event, Simulator


class Resource(Acquirable):
    """A counted FIFO resource.

    Usage from a process generator::

        grant = link.request()
        yield grant
        ...  # hold the link
        link.release()

    or simply ``yield link`` -- the engine kernel resolves the grant
    (immediately when free, FIFO-queued when busy) without allocating a
    grant :class:`Event` on the fast path.  The waiter queue is
    heterogeneous: event-based requests enqueue the grant Event, while
    kernel-yielded waiters are packed ints
    ``(wait_start_ns << PROC_BITS) | process_index`` resumed through
    ``sim._grant``, and flat-op waiters are the *complement-packed*
    negative ints ``~((wait_start_ns << PROC_BITS) | opidx)`` resumed
    through ``sim._flat_grant``.  All forms are granted strictly in
    arrival order.
    """

    __slots__ = ("sim", "capacity", "in_use", "_waiters", "name",
                 "grants", "total_wait_ns")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Any] = deque()
        self.name = name
        #: Number of grants handed out (instrumentation).
        self.grants = 0
        #: Cumulative time requesters spent queued (instrumentation).
        self.total_wait_ns = 0

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting."""
        return len(self._waiters)

    @property
    def available(self) -> bool:
        """True when a request issued now would be granted immediately."""
        return self.in_use < self.capacity and not self._waiters

    def try_acquire(self) -> bool:
        """Take one unit synchronously when the resource is free.

        Returns True (unit taken) when a :meth:`request` issued now
        would be granted immediately.  The caller must then ``yield``
        :data:`~repro.engine.core.TURN` so the engine re-enqueues it at
        the position the grant event's dispatch would have occupied --
        keeping the executed event sequence identical to the event-based
        grant while skipping the Event allocation.  Returns False when
        the unit is busy; the caller falls back to :meth:`request`.
        """
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            self.grants += 1
            return True
        return False

    def request(self) -> Event:
        """Ask for one unit; the returned event triggers when granted.

        The event's value is the wait duration in nanoseconds.
        """
        event = Event(self.sim)
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            self.grants += 1
            event.succeed(0)
        else:
            # Stash the request time on the event for wait accounting.
            event.value = self.sim.now
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, granting the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            if waiter.__class__ is int:
                if waiter >= 0:
                    # Packed kernel waiter: (wait_start << PROC_BITS) | p.
                    waited = self.sim.now - (waiter >> PROC_BITS)
                    self.total_wait_ns += waited
                    self.grants += 1
                    self.sim._grant(waiter & PROC_MASK, waited)
                else:
                    # Flat-op waiter, complement-packed so it is
                    # distinguishable from a process index:
                    # ~((wait_start << PROC_BITS) | opidx).  See
                    # SoaSimulator.flat_transmit.
                    packed = ~waiter
                    waited = self.sim.now - (packed >> PROC_BITS)
                    self.total_wait_ns += waited
                    self.grants += 1
                    self.sim._flat_grant(packed & PROC_MASK)
            else:
                waited = self.sim.now - waiter.value
                waiter.value = None
                self.total_wait_ns += waited
                self.grants += 1
                waiter.succeed(waited)
        else:
            self.in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name} {self.in_use}/{self.capacity} "
            f"queue={len(self._waiters)}>"
        )
