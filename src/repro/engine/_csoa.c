/* Compiled event-core tier: the SoA kernel's hot loop in C.
 *
 * This module implements exactly one thing: `run_fast(sim)`, a C port
 * of `repro.engine.soa.SoaSimulator._run_fast`.  It operates on the
 * *same* Python-side state (heap list, ring deque, row columns,
 * process table) so every method-form push that runs inside a process
 * resumption -- `Event.succeed`, `Resource.release`, `spawn`,
 * `flat_transmit`, epoch compaction -- keeps working unchanged, and
 * the executed event sequence is bit-identical to the pure-Python
 * kernels (the cross-kernel parity tests pin this).
 *
 * What the C loop removes is the per-event interpreter work: word
 * decode, tag dispatch, the generator `send` call, and the yield
 * dispatch all run as straight-line C with no Python frames.  Flat
 * ops (see soa.py) still step through the Python `_flat_step` /
 * `_flat_wake` methods -- the win there is that no generator frame
 * exists at all.
 *
 * Contract with the Python wrapper (repro/engine/compiled.py):
 *
 *   run_fast(sim) -> 1   queues drained; the wrapper performs the
 *                        deadlock check and returns sim._now.
 *   run_fast(sim) -> 0   an int64-range guard tripped (a heap key or
 *                        simulated time beyond ~2**31 ns per epoch
 *                        bit-budget); all counters are flushed and the
 *                        wrapper hands off to the pure-Python loop,
 *                        which handles arbitrary-precision ints.
 *
 * Deliberate choices, so future edits do not regress parity:
 *
 *  - The heap is a native binary heap over the same Python list the
 *    pure loop feeds through heapq, with PyObject_RichCompareBool
 *    comparisons (so arbitrary-precision keys pushed by nested Python
 *    handlers still order correctly).  The sift direction differs
 *    from heapq's bottom-up variant, so the *array layout* can
 *    diverge -- but heap keys are unique (the row field is a monotone
 *    sequence number), so the pop ORDER is identical regardless of
 *    layout, and epoch compaction sorts the pending keys anyway.
 *  - `_c_meta` (an array('q')) is accessed through the sequence
 *    protocol, never the buffer protocol: a held buffer export would
 *    make compaction's in-place `extend` raise BufferError.
 *  - Container references are cached once (compaction mutates them in
 *    place), but list *items* are re-read through the macros on every
 *    use and INCREF'd before any call-out.
 *  - `self._now` is written through on every time advance and
 *    `self._top` on every row allocation, because nested method-form
 *    pushes share the clock and the allocator mid-iteration.
 *  - Generator sends use the call + catch-StopIteration path (not
 *    PyIter_Send, which is 3.10+); the supported floor is CPython 3.9.
 *  - Ring words or yields that fall outside the int64 fast path are
 *    delegated to the bound Python methods (`_execute_word`,
 *    `_handle_yield`), which implement the slow cases with Python
 *    ints at the exact same queue positions.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>

/* Mirrors of the constants in repro/engine/core.py + soa.py.  Checked
 * against the Python values at configure() time. */
#define ROW_BITS 32
#define ROW_MASK ((int64_t)((((int64_t)1) << ROW_BITS) - 1))
#define PROC_BITS 20
#define PROC_MASK ((int64_t)((1 << PROC_BITS) - 1))
#define VAL_SHIFT (3 + PROC_BITS)

/* Ring word tags (bit 0 set). */
#define R_NONE 1
#define R_ZERO 3
#define R_VAL 5
#define R_FLAT 7

/* Row kinds (meta & 7). */
#define K_RESUME_NONE 0
#define K_EVENT 3
#define K_EVWAIT 4
#define K_FLAT 6

/* Largest simulated time whose packed heap key (at << ROW_BITS | row)
 * still fits a signed 64-bit int.  Beyond it the loop hands back to
 * the pure-Python kernel. */
#define MAX_AT ((((int64_t)1) << (63 - ROW_BITS)) - 1)

/* Injected by configure(): types/singletons from repro.engine.core. */
static PyObject *g_acquirable = NULL;
static PyObject *g_event = NULL;
static PyObject *g_turn = NULL;
static PyObject *g_simerror = NULL;
static int g_configured = 0;

/* Interned attribute/method names. */
static PyObject *s_heap, *s_ring, *s_free, *s_c_meta, *s_payload,
    *s_sends, *s_popleft, *s_append, *s_now, *s_top, *s_cap, *s_compact,
    *s_finish, *s_crash, *s_flat_wake, *s_flat_step, *s_handle_yield,
    *s_throw, *s_execute_word, *s_dispatch, *s_callbacks, *s_exception,
    *s_value, *s_in_use, *s_capacity, *s_waiters, *s_grants,
    *s_events_executed, *s_ring_executed, *s_ring_scheduled,
    *s_rows_recycled;

/* -- small helpers ------------------------------------------------------- */

static int
get_int_attr(PyObject *o, PyObject *name, int64_t *out)
{
    PyObject *v = PyObject_GetAttr(o, name);
    long long x;
    if (v == NULL)
        return -1;
    x = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (x == -1 && PyErr_Occurred())
        return -1;
    *out = (int64_t)x;
    return 0;
}

static int
set_int_attr(PyObject *o, PyObject *name, int64_t v)
{
    PyObject *num = PyLong_FromLongLong((long long)v);
    int rc;
    if (num == NULL)
        return -1;
    rc = PyObject_SetAttr(o, name, num);
    Py_DECREF(num);
    return rc;
}

static int
add_int_attr(PyObject *o, PyObject *name, int64_t delta)
{
    int64_t cur;
    if (delta == 0)
        return 0;
    if (get_int_attr(o, name, &cur) < 0)
        return -1;
    return set_int_attr(o, name, cur + delta);
}

static int
list_append_int(PyObject *list, int64_t v)
{
    PyObject *num = PyLong_FromLongLong((long long)v);
    int rc;
    if (num == NULL)
        return -1;
    rc = PyList_Append(list, num);
    Py_DECREF(num);
    return rc;
}

/* c_meta (array('q')) access via the sequence protocol -- see the file
 * comment for why not the buffer protocol. */
static int
seq_get_int(PyObject *seq, int64_t idx, int64_t *out)
{
    PyObject *v = PySequence_GetItem(seq, (Py_ssize_t)idx);
    long long x;
    if (v == NULL)
        return -1;
    x = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (x == -1 && PyErr_Occurred())
        return -1;
    *out = (int64_t)x;
    return 0;
}

static int
seq_set_int(PyObject *seq, int64_t idx, int64_t v)
{
    PyObject *num = PyLong_FromLongLong((long long)v);
    int rc;
    if (num == NULL)
        return -1;
    rc = PySequence_SetItem(seq, (Py_ssize_t)idx, num);
    Py_DECREF(num);
    return rc;
}

/* payload[row] = None, keeping the previous item alive only if the
 * caller INCREF'd it first (PyList_SetItem decrefs the old slot). */
static int
payload_clear(PyObject *payload, int64_t row)
{
    Py_INCREF(Py_None);
    return PyList_SetItem(payload, (Py_ssize_t)row, Py_None);
}

/* Call bound(int_arg) discarding the result. */
static int
call_bound_i(PyObject *bound, int64_t arg)
{
    PyObject *num = PyLong_FromLongLong((long long)arg);
    PyObject *r;
    if (num == NULL)
        return -1;
    r = PyObject_CallOneArg(bound, num);
    Py_DECREF(num);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Call bound(int_arg, obj_arg) discarding the result. */
static int
call_bound_io(PyObject *bound, int64_t arg, PyObject *obj)
{
    PyObject *num = PyLong_FromLongLong((long long)arg);
    PyObject *r;
    if (num == NULL)
        return -1;
    r = PyObject_CallFunctionObjArgs(bound, num, obj, NULL);
    Py_DECREF(num);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Append a packed int word to the ring via the cached bound append. */
static int
ring_append_word(PyObject *ring_append, int64_t word)
{
    PyObject *num = PyLong_FromLongLong((long long)word);
    PyObject *r;
    if (num == NULL)
        return -1;
    r = PyObject_CallOneArg(ring_append, num);
    Py_DECREF(num);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Allocate a fresh monotone row from self._top, compacting when the
 * table is full -- the C twin of the inline allocator in _run_fast.
 * Returns the row index, or -1 with an exception set. */
static int64_t
alloc_top_row(PyObject *sim, PyObject *compact_m)
{
    int64_t top, cap;
    if (get_int_attr(sim, s_top, &top) < 0)
        return -1;
    if (get_int_attr(sim, s_cap, &cap) < 0)
        return -1;
    if (top == cap) {
        PyObject *r = PyObject_CallNoArgs(compact_m);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        if (get_int_attr(sim, s_top, &top) < 0)
            return -1;
    }
    if (set_int_attr(sim, s_top, top + 1) < 0)
        return -1;
    return top;
}

/* Native binary-heap ops on the shared Python list.  Comparisons go
 * through PyObject_RichCompareBool so big-int keys (pushed by nested
 * Python handlers past the int64 range) still order correctly; for
 * the common two-machine-int case CPython compares them without
 * allocating.  Layout may diverge from heapq's (see file comment) --
 * pop order cannot, because keys are unique. */

static int
heap_push_native(PyObject *heap, PyObject *item)
{
    Py_ssize_t pos;
    PyObject *newitem;
    if (PyList_Append(heap, item) < 0)
        return -1;
    pos = PyList_GET_SIZE(heap) - 1;
    newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > 0) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = PyObject_RichCompareBool(newitem, parent, Py_LT);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent);
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem);  /* steals our extra ref */
    return 0;
}

/* Pop the root; the caller checked the heap is non-empty.  Returns a
 * new reference, or NULL with an exception set. */
static PyObject *
heap_pop_native(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    Py_ssize_t pos;
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    PyObject *returnitem;
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    n -= 1;
    if (n == 0)
        return lastelt;
    returnitem = PyList_GET_ITEM(heap, 0);
    Py_INCREF(returnitem);
    PyList_SetItem(heap, 0, lastelt);  /* steals lastelt */
    pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        Py_ssize_t right = child + 1;
        PyObject *a, *b;
        int lt;
        if (child >= n)
            break;
        if (right < n) {
            lt = PyObject_RichCompareBool(PyList_GET_ITEM(heap, right),
                                          PyList_GET_ITEM(heap, child),
                                          Py_LT);
            if (lt < 0)
                goto fail;
            if (lt)
                child = right;
        }
        lt = PyObject_RichCompareBool(PyList_GET_ITEM(heap, child),
                                      PyList_GET_ITEM(heap, pos), Py_LT);
        if (lt < 0)
            goto fail;
        if (!lt)
            break;
        a = PyList_GET_ITEM(heap, pos);
        b = PyList_GET_ITEM(heap, child);
        Py_INCREF(a);
        Py_INCREF(b);
        PyList_SetItem(heap, pos, b);
        PyList_SetItem(heap, child, a);
        pos = child;
    }
    return returnitem;
fail:
    Py_DECREF(returnitem);
    return NULL;
}

static int
flush_counters(PyObject *sim, int64_t executed, int64_t ring_exec,
               int64_t ring_sched, int64_t recycled)
{
    if (add_int_attr(sim, s_events_executed, executed) < 0)
        return -1;
    if (add_int_attr(sim, s_ring_executed, ring_exec) < 0)
        return -1;
    if (add_int_attr(sim, s_ring_scheduled, ring_sched) < 0)
        return -1;
    if (add_int_attr(sim, s_rows_recycled, recycled) < 0)
        return -1;
    return 0;
}

/* -- the run loop -------------------------------------------------------- */

static PyObject *
csoa_run_fast(PyObject *module, PyObject *sim)
{
    PyObject *heap = NULL, *ring = NULL, *freelist = NULL, *c_meta = NULL,
        *payload = NULL, *sends = NULL;
    PyObject *ring_popleft = NULL, *ring_append = NULL, *compact_m = NULL,
        *finish_m = NULL, *crash_m = NULL, *flat_wake_m = NULL,
        *flat_step_m = NULL, *handle_yield_m = NULL, *throw_m = NULL,
        *execute_word_m = NULL;
    PyObject *result = NULL;
    int64_t now;
    int64_t executed = 0, ring_executed = 0, ring_scheduled = 0,
        recycled = 0;
    int rc = -1;  /* -1 error, 0 handoff, 1 done */

    if (!g_configured) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_csoa.configure() has not been called");
        return NULL;
    }

    heap = PyObject_GetAttr(sim, s_heap);
    ring = PyObject_GetAttr(sim, s_ring);
    freelist = PyObject_GetAttr(sim, s_free);
    c_meta = PyObject_GetAttr(sim, s_c_meta);
    payload = PyObject_GetAttr(sim, s_payload);
    sends = PyObject_GetAttr(sim, s_sends);
    if (heap == NULL || ring == NULL || freelist == NULL || c_meta == NULL
            || payload == NULL || sends == NULL)
        goto cleanup;
    if (!PyList_CheckExact(heap) || !PyList_CheckExact(freelist)
            || !PyList_CheckExact(payload) || !PyList_CheckExact(sends)) {
        PyErr_SetString(PyExc_TypeError,
                        "_csoa.run_fast: kernel containers are not lists");
        goto cleanup;
    }
    ring_popleft = PyObject_GetAttr(ring, s_popleft);
    ring_append = PyObject_GetAttr(ring, s_append);
    compact_m = PyObject_GetAttr(sim, s_compact);
    finish_m = PyObject_GetAttr(sim, s_finish);
    crash_m = PyObject_GetAttr(sim, s_crash);
    flat_wake_m = PyObject_GetAttr(sim, s_flat_wake);
    flat_step_m = PyObject_GetAttr(sim, s_flat_step);
    handle_yield_m = PyObject_GetAttr(sim, s_handle_yield);
    throw_m = PyObject_GetAttr(sim, s_throw);
    execute_word_m = PyObject_GetAttr(sim, s_execute_word);
    if (ring_popleft == NULL || ring_append == NULL || compact_m == NULL
            || finish_m == NULL || crash_m == NULL || flat_wake_m == NULL
            || flat_step_m == NULL || handle_yield_m == NULL
            || throw_m == NULL || execute_word_m == NULL)
        goto cleanup;

    if (get_int_attr(sim, s_now, &now) < 0) {
        /* Clock already past int64: run on the pure-Python loop. */
        PyErr_Clear();
        rc = 0;
        goto flush;
    }

    for (;;) {
        int have_key = 0;
        int64_t key = 0, at = 0;
        int64_t p = -1;
        PyObject *value = NULL;  /* owned once set */

        /* -- pop: decode one event into (p, value) -------------------- */
        if (PyList_GET_SIZE(heap) > 0) {
            PyObject *key_obj = PyList_GET_ITEM(heap, 0);  /* borrowed */
            int overflow = 0;
            long long k = PyLong_AsLongLongAndOverflow(key_obj, &overflow);
            if (overflow || (k == -1 && PyErr_Occurred())) {
                /* Key beyond int64: hand off to the Python loop. */
                PyErr_Clear();
                rc = 0;
                goto flush;
            }
            key = (int64_t)k;
            at = key >> ROW_BITS;
            if (at <= now) {
                PyObject *popped;
                if (at < now) {
                    PyErr_Format(g_simerror,
                                 "time went backwards: %lld < %lld",
                                 (long long)at, (long long)now);
                    goto cleanup_flush;
                }
                popped = heap_pop_native(heap);
                if (popped == NULL)
                    goto cleanup_flush;
                Py_DECREF(popped);
                have_key = 1;
            }
            else {
                Py_ssize_t rn = PyObject_Size(ring);
                if (rn < 0)
                    goto cleanup_flush;
                if (rn == 0) {
                    PyObject *popped = heap_pop_native(heap);
                    if (popped == NULL)
                        goto cleanup_flush;
                    Py_DECREF(popped);
                    now = at;
                    if (set_int_attr(sim, s_now, now) < 0)
                        goto cleanup_flush;
                    have_key = 1;
                }
                /* else: drain the ring first (have_key stays 0). */
            }
        }
        else {
            Py_ssize_t rn = PyObject_Size(ring);
            if (rn < 0)
                goto cleanup_flush;
            if (rn == 0) {
                rc = 1;  /* drained */
                goto flush;
            }
        }
        executed++;

        if (have_key) {
            /* Heap row: sleeps, flat-op wakes, legacy callables. */
            int64_t row = key & ROW_MASK;
            int64_t meta;
            int kind;
            if (list_append_int(freelist, row) < 0)
                goto cleanup_flush;
            if (seq_get_int(c_meta, row, &meta) < 0)
                goto cleanup_flush;
            kind = (int)(meta & 7);
            if (kind == K_RESUME_NONE) {
                p = meta >> 3;
                Py_INCREF(Py_None);
                value = Py_None;
            }
            else if (kind == K_FLAT) {
                if (call_bound_i(flat_wake_m, meta >> 3) < 0)
                    goto cleanup_flush;
                continue;
            }
            else {  /* K_CALL */
                PyObject *action = PyList_GET_ITEM(payload, row);
                PyObject *r;
                Py_INCREF(action);
                if (payload_clear(payload, row) < 0) {
                    Py_DECREF(action);
                    goto cleanup_flush;
                }
                r = PyObject_CallNoArgs(action);
                Py_DECREF(action);
                if (r == NULL)
                    goto cleanup_flush;
                Py_DECREF(r);
                continue;
            }
        }
        else {
            PyObject *word_obj = PyObject_CallNoArgs(ring_popleft);
            int overflow = 0;
            long long e;
            if (word_obj == NULL)
                goto cleanup_flush;
            ring_executed++;
            e = PyLong_AsLongLongAndOverflow(word_obj, &overflow);
            if (overflow || (e == -1 && PyErr_Occurred())) {
                /* Oversized word (huge _R_VAL wait): method-form twin. */
                PyObject *r;
                PyErr_Clear();
                r = PyObject_CallOneArg(execute_word_m, word_obj);
                Py_DECREF(word_obj);
                if (r == NULL)
                    goto cleanup_flush;
                Py_DECREF(r);
                continue;
            }
            Py_DECREF(word_obj);
            if (e & 1) {
                /* Packed resume word: no row, pure decode. */
                int tag = (int)(e & 7);
                if (tag == R_NONE) {
                    p = e >> 3;
                    Py_INCREF(Py_None);
                    value = Py_None;
                }
                else if (tag == R_ZERO) {
                    p = e >> 3;
                    value = PyLong_FromLong(0);
                    if (value == NULL)
                        goto cleanup_flush;
                }
                else if (tag == R_VAL) {
                    p = (e >> 3) & PROC_MASK;
                    value = PyLong_FromLongLong((long long)(e >> VAL_SHIFT));
                    if (value == NULL)
                        goto cleanup_flush;
                }
                else {  /* R_FLAT */
                    if (call_bound_i(flat_step_m, e >> 3) < 0)
                        goto cleanup_flush;
                    continue;
                }
            }
            else {
                /* Payload row on the ring. */
                int64_t row = e >> 1;
                int64_t meta;
                int kind;
                if (list_append_int(freelist, row) < 0)
                    goto cleanup_flush;
                if (seq_get_int(c_meta, row, &meta) < 0)
                    goto cleanup_flush;
                kind = (int)(meta & 7);
                if (kind == K_EVENT) {
                    PyObject *ev = PyList_GET_ITEM(payload, row);
                    PyObject *callbacks;
                    int inlined = 0;
                    Py_INCREF(ev);
                    if (payload_clear(payload, row) < 0) {
                        Py_DECREF(ev);
                        goto cleanup_flush;
                    }
                    callbacks = PyObject_GetAttr(ev, s_callbacks);
                    if (callbacks == NULL) {
                        Py_DECREF(ev);
                        goto cleanup_flush;
                    }
                    if (PyList_CheckExact(callbacks)
                            && PyList_GET_SIZE(callbacks) == 1
                            && PyLong_CheckExact(
                                   PyList_GET_ITEM(callbacks, 0))) {
                        PyObject *exc = PyObject_GetAttr(ev, s_exception);
                        if (exc == NULL) {
                            Py_DECREF(callbacks);
                            Py_DECREF(ev);
                            goto cleanup_flush;
                        }
                        if (exc == Py_None) {
                            /* Sole waiter is a process: resume it
                             * inside this dispatch event.  Extract the
                             * index before clearing _callbacks. */
                            long long wp = PyLong_AsLongLong(
                                PyList_GET_ITEM(callbacks, 0));
                            if (wp == -1 && PyErr_Occurred()) {
                                PyErr_Clear();  /* absurd; dispatch */
                            }
                            else {
                                if (PyObject_SetAttr(ev, s_callbacks,
                                                     Py_None) < 0) {
                                    Py_DECREF(exc);
                                    Py_DECREF(callbacks);
                                    Py_DECREF(ev);
                                    goto cleanup_flush;
                                }
                                value = PyObject_GetAttr(ev, s_value);
                                if (value == NULL) {
                                    Py_DECREF(exc);
                                    Py_DECREF(callbacks);
                                    Py_DECREF(ev);
                                    goto cleanup_flush;
                                }
                                p = (int64_t)wp;
                                inlined = 1;
                            }
                        }
                        Py_DECREF(exc);
                    }
                    Py_DECREF(callbacks);
                    if (!inlined) {
                        PyObject *r =
                            PyObject_CallMethodNoArgs(ev, s_dispatch);
                        Py_DECREF(ev);
                        if (r == NULL)
                            goto cleanup_flush;
                        Py_DECREF(r);
                        continue;
                    }
                    Py_DECREF(ev);
                }
                else if (kind == K_EVWAIT) {
                    PyObject *ev = PyList_GET_ITEM(payload, row);
                    PyObject *exc;
                    Py_INCREF(ev);
                    if (payload_clear(payload, row) < 0) {
                        Py_DECREF(ev);
                        goto cleanup_flush;
                    }
                    exc = PyObject_GetAttr(ev, s_exception);
                    if (exc == NULL) {
                        Py_DECREF(ev);
                        goto cleanup_flush;
                    }
                    if (exc != Py_None) {
                        int trc = call_bound_io(throw_m, meta >> 3, exc);
                        Py_DECREF(exc);
                        Py_DECREF(ev);
                        if (trc < 0)
                            goto cleanup_flush;
                        continue;
                    }
                    Py_DECREF(exc);
                    p = meta >> 3;
                    value = PyObject_GetAttr(ev, s_value);
                    Py_DECREF(ev);
                    if (value == NULL)
                        goto cleanup_flush;
                }
                else {  /* K_CALL */
                    PyObject *action = PyList_GET_ITEM(payload, row);
                    PyObject *r;
                    Py_INCREF(action);
                    if (payload_clear(payload, row) < 0) {
                        Py_DECREF(action);
                        goto cleanup_flush;
                    }
                    r = PyObject_CallNoArgs(action);
                    Py_DECREF(action);
                    if (r == NULL)
                        goto cleanup_flush;
                    Py_DECREF(r);
                    continue;
                }
            }
        }

        /* -- drive: resume the generator, handle its yield ------------ */
        {
            PyObject *send = PyList_GET_ITEM(sends, (Py_ssize_t)p);
            PyObject *y;
            Py_INCREF(send);
            y = PyObject_CallOneArg(send, value);
            Py_DECREF(send);
            Py_DECREF(value);
            value = NULL;
            if (y == NULL) {
                if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                    PyObject *etype, *evalue, *etb, *retval;
                    int frc;
                    PyErr_Fetch(&etype, &evalue, &etb);
                    PyErr_NormalizeException(&etype, &evalue, &etb);
                    retval = evalue ? PyObject_GetAttr(evalue, s_value)
                                    : NULL;
                    if (retval == NULL) {
                        PyErr_Clear();
                        Py_INCREF(Py_None);
                        retval = Py_None;
                    }
                    Py_XDECREF(etype);
                    Py_XDECREF(evalue);
                    Py_XDECREF(etb);
                    frc = call_bound_io(finish_m, p, retval);
                    Py_DECREF(retval);
                    if (frc < 0)
                        goto cleanup_flush;
                    continue;
                }
                else {
                    /* Any other exception: mirror `self._crash(p, exc)`
                     * (which re-raises under fail_fast). */
                    PyObject *etype, *evalue, *etb;
                    int crc;
                    PyErr_Fetch(&etype, &evalue, &etb);
                    PyErr_NormalizeException(&etype, &evalue, &etb);
                    if (evalue == NULL) {
                        PyErr_Restore(etype, evalue, etb);
                        goto cleanup_flush;
                    }
                    if (etb != NULL)
                        PyException_SetTraceback(evalue, etb);
                    crc = call_bound_io(crash_m, p, evalue);
                    Py_XDECREF(etype);
                    Py_XDECREF(evalue);
                    Py_XDECREF(etb);
                    if (crc < 0)
                        goto cleanup_flush;
                    continue;
                }
            }
            if (PyLong_CheckExact(y)) {
                int overflow = 0;
                long long yv = PyLong_AsLongLongAndOverflow(y, &overflow);
                if (overflow || yv < 0 || (yv > 0 && now + yv > MAX_AT)) {
                    /* Negative delays raise there; oversized delays
                     * push arbitrary-precision heap keys there. */
                    int hrc = call_bound_io(handle_yield_m, p, y);
                    Py_DECREF(y);
                    if (hrc < 0)
                        goto cleanup_flush;
                    continue;
                }
                if (yv > 0) {
                    /* Plain sleep: future heap row. */
                    int64_t row = alloc_top_row(sim, compact_m);
                    PyObject *keyo;
                    int prc;
                    if (row < 0) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    if (seq_set_int(c_meta, row, p << 3) < 0) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    keyo = PyLong_FromLongLong(
                        (long long)(((now + yv) << ROW_BITS) | row));
                    if (keyo == NULL) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    prc = heap_push_native(heap, keyo);
                    Py_DECREF(keyo);
                    Py_DECREF(y);
                    if (prc < 0)
                        goto cleanup_flush;
                    continue;
                }
                /* Zero-delay: same-time redispatch via the ring. */
                Py_DECREF(y);
                if (ring_append_word(ring_append, (p << 3) | R_NONE) < 0)
                    goto cleanup_flush;
                ring_scheduled++;
                continue;
            }
            {
                int isacq = PyObject_IsInstance(y, g_acquirable);
                if (isacq < 0) {
                    Py_DECREF(y);
                    goto cleanup_flush;
                }
                if (isacq) {
                    /* `yield resource`: inlined try_acquire, else park
                     * as a packed (wait_start << PROC_BITS) | p int. */
                    int64_t in_use, capacity, grants;
                    PyObject *waiters;
                    Py_ssize_t wn;
                    if (get_int_attr(y, s_in_use, &in_use) < 0
                            || get_int_attr(y, s_capacity, &capacity) < 0) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    waiters = PyObject_GetAttr(y, s_waiters);
                    if (waiters == NULL) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    wn = PyObject_Size(waiters);
                    if (wn < 0) {
                        Py_DECREF(waiters);
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    if (in_use < capacity && wn == 0) {
                        if (set_int_attr(y, s_in_use, in_use + 1) < 0
                                || get_int_attr(y, s_grants, &grants) < 0
                                || set_int_attr(y, s_grants,
                                                grants + 1) < 0) {
                            Py_DECREF(waiters);
                            Py_DECREF(y);
                            goto cleanup_flush;
                        }
                        Py_DECREF(waiters);
                        Py_DECREF(y);
                        if (ring_append_word(ring_append,
                                             (p << 3) | R_ZERO) < 0)
                            goto cleanup_flush;
                        ring_scheduled++;
                        continue;
                    }
                    else {
                        PyObject *packed = PyLong_FromLongLong(
                            (long long)((now << PROC_BITS) | p));
                        PyObject *r = NULL;
                        if (packed != NULL) {
                            r = PyObject_CallMethodOneArg(waiters, s_append,
                                                          packed);
                            Py_DECREF(packed);
                        }
                        Py_DECREF(waiters);
                        Py_DECREF(y);
                        if (r == NULL)
                            goto cleanup_flush;
                        Py_DECREF(r);
                        continue;
                    }
                }
            }
            {
                int isev = PyObject_IsInstance(y, g_event);
                if (isev < 0) {
                    Py_DECREF(y);
                    goto cleanup_flush;
                }
                if (isev) {
                    PyObject *callbacks = PyObject_GetAttr(y, s_callbacks);
                    if (callbacks == NULL) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    if (callbacks == Py_None) {
                        /* Already dispatched: K_EVWAIT row, recycled
                         * from the free list when possible. */
                        int64_t row;
                        Py_ssize_t fn = PyList_GET_SIZE(freelist);
                        Py_DECREF(callbacks);
                        if (fn > 0) {
                            long long rv = PyLong_AsLongLong(
                                PyList_GET_ITEM(freelist, fn - 1));
                            if (rv == -1 && PyErr_Occurred()) {
                                Py_DECREF(y);
                                goto cleanup_flush;
                            }
                            if (PyList_SetSlice(freelist, fn - 1, fn,
                                                NULL) < 0) {
                                Py_DECREF(y);
                                goto cleanup_flush;
                            }
                            row = (int64_t)rv;
                            recycled++;
                        }
                        else {
                            row = alloc_top_row(sim, compact_m);
                            if (row < 0) {
                                Py_DECREF(y);
                                goto cleanup_flush;
                            }
                        }
                        if (seq_set_int(c_meta, row,
                                        (p << 3) | K_EVWAIT) < 0) {
                            Py_DECREF(y);
                            goto cleanup_flush;
                        }
                        /* payload[row] = y (list takes our ref). */
                        if (PyList_SetItem(payload, (Py_ssize_t)row,
                                           y) < 0) {
                            goto cleanup_flush;
                        }
                        if (ring_append_word(ring_append, row << 1) < 0)
                            goto cleanup_flush;
                        ring_scheduled++;
                        continue;
                    }
                    else {
                        PyObject *pnum = PyLong_FromLongLong((long long)p);
                        int arc = -1;
                        if (pnum != NULL) {
                            if (PyList_CheckExact(callbacks)) {
                                arc = PyList_Append(callbacks, pnum);
                            }
                            else {
                                PyObject *r = PyObject_CallMethodOneArg(
                                    callbacks, s_append, pnum);
                                arc = (r == NULL) ? -1 : 0;
                                Py_XDECREF(r);
                            }
                            Py_DECREF(pnum);
                        }
                        Py_DECREF(callbacks);
                        Py_DECREF(y);
                        if (arc < 0)
                            goto cleanup_flush;
                        continue;
                    }
                }
            }
            if (y == g_turn) {
                Py_DECREF(y);
                if (ring_append_word(ring_append, (p << 3) | R_ZERO) < 0)
                    goto cleanup_flush;
                ring_scheduled++;
                continue;
            }
            /* Unknown yield: _handle_yield raises with the process
             * name, after the same _blocked bookkeeping. */
            {
                int hrc = call_bound_io(handle_yield_m, p, y);
                Py_DECREF(y);
                if (hrc < 0)
                    goto cleanup_flush;
                continue;
            }
        }
    }

flush:
    if (flush_counters(sim, executed, ring_executed, ring_scheduled,
                       recycled) < 0)
        goto cleanup;
    result = PyLong_FromLong(rc);
    goto cleanup;

cleanup_flush:
    /* Error exit: flush counters while preserving the exception. */
    {
        PyObject *etype, *evalue, *etb;
        PyErr_Fetch(&etype, &evalue, &etb);
        if (flush_counters(sim, executed, ring_executed, ring_scheduled,
                           recycled) < 0)
            PyErr_Clear();
        PyErr_Restore(etype, evalue, etb);
    }

cleanup:
    Py_XDECREF(heap);
    Py_XDECREF(ring);
    Py_XDECREF(freelist);
    Py_XDECREF(c_meta);
    Py_XDECREF(payload);
    Py_XDECREF(sends);
    Py_XDECREF(ring_popleft);
    Py_XDECREF(ring_append);
    Py_XDECREF(compact_m);
    Py_XDECREF(finish_m);
    Py_XDECREF(crash_m);
    Py_XDECREF(flat_wake_m);
    Py_XDECREF(flat_step_m);
    Py_XDECREF(handle_yield_m);
    Py_XDECREF(throw_m);
    Py_XDECREF(execute_word_m);
    return result;
}

/* -- module wiring ------------------------------------------------------- */

static PyObject *
csoa_configure(PyObject *module, PyObject *args)
{
    PyObject *acquirable, *event, *turn, *simerror;
    if (!PyArg_ParseTuple(args, "OOOO", &acquirable, &event, &turn,
                          &simerror))
        return NULL;
    Py_INCREF(acquirable);
    Py_XDECREF(g_acquirable);
    g_acquirable = acquirable;
    Py_INCREF(event);
    Py_XDECREF(g_event);
    g_event = event;
    Py_INCREF(turn);
    Py_XDECREF(g_turn);
    g_turn = turn;
    Py_INCREF(simerror);
    Py_XDECREF(g_simerror);
    g_simerror = simerror;
    g_configured = 1;
    Py_RETURN_NONE;
}

static PyMethodDef csoa_methods[] = {
    {"run_fast", csoa_run_fast, METH_O,
     "Drive the SoA event loop to completion; returns 1 when the "
     "queues drained, 0 on int64-range handoff."},
    {"configure", csoa_configure, METH_VARARGS,
     "configure(Acquirable, Event, TURN, SimulationError): inject the "
     "engine types this module dispatches on."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef csoa_module = {
    PyModuleDef_HEAD_INIT,
    "repro.engine._csoa",
    "C port of the SoA event kernel's hot loop (see module source).",
    -1,
    csoa_methods,
};

PyMODINIT_FUNC
PyInit__csoa(void)
{
    PyObject *m;
#define INTERN(var, text)                                   \
    do {                                                    \
        var = PyUnicode_InternFromString(text);             \
        if (var == NULL)                                    \
            return NULL;                                    \
    } while (0)
    INTERN(s_heap, "_heap");
    INTERN(s_ring, "_ring");
    INTERN(s_free, "_free");
    INTERN(s_c_meta, "_c_meta");
    INTERN(s_payload, "_payload");
    INTERN(s_sends, "_sends");
    INTERN(s_popleft, "popleft");
    INTERN(s_append, "append");
    INTERN(s_now, "_now");
    INTERN(s_top, "_top");
    INTERN(s_cap, "_cap");
    INTERN(s_compact, "_compact");
    INTERN(s_finish, "_finish");
    INTERN(s_crash, "_crash");
    INTERN(s_flat_wake, "_flat_wake");
    INTERN(s_flat_step, "_flat_step");
    INTERN(s_handle_yield, "_handle_yield");
    INTERN(s_throw, "_throw");
    INTERN(s_execute_word, "_execute_word");
    INTERN(s_dispatch, "_dispatch");
    INTERN(s_callbacks, "_callbacks");
    INTERN(s_exception, "_exception");
    INTERN(s_value, "value");
    INTERN(s_in_use, "in_use");
    INTERN(s_capacity, "capacity");
    INTERN(s_waiters, "_waiters");
    INTERN(s_grants, "grants");
    INTERN(s_events_executed, "events_executed");
    INTERN(s_ring_executed, "_ring_executed");
    INTERN(s_ring_scheduled, "_ring_scheduled");
    INTERN(s_rows_recycled, "_rows_recycled");
#undef INTERN
    m = PyModule_Create(&csoa_module);
    return m;
}
