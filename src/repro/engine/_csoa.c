/* Compiled event-core tier: the SoA kernel's hot loop in C.
 *
 * This module implements exactly one thing: `run_fast(sim)`, a C port
 * of `repro.engine.soa.SoaSimulator._run_fast`.  It operates on the
 * *same* Python-side state (heap list, ring deque, row columns,
 * process table) so every method-form push that runs inside a process
 * resumption -- `Event.succeed`, `Resource.release`, `spawn`,
 * `flat_transmit`, epoch compaction -- keeps working unchanged, and
 * the executed event sequence is bit-identical to the pure-Python
 * kernels (the cross-kernel parity tests pin this).
 *
 * What the C loop removes is the per-event interpreter work: word
 * decode, tag dispatch, the generator `send` call, and the yield
 * dispatch all run as straight-line C with no Python frames.  Flat
 * ops (see soa.py) execute natively too: link stepping, home-lock
 * attempts, settle accounting, leg transitions, and transaction
 * completion run as C over the shared op table, so an uncontended
 * remote read miss runs start-to-finish without entering the
 * interpreter.  Python is called out to only where the model itself
 * lives: the directory plan callouts (`_flat_step` on the lock tags),
 * the invalidation join (`_flat_wr_join`), contended `release()`,
 * shell `succeed`, and writeback posts.
 *
 * Contract with the Python wrapper (repro/engine/compiled.py):
 *
 *   run_fast(sim) -> 1   queues drained; the wrapper performs the
 *                        deadlock check and returns sim._now.
 *   run_fast(sim) -> 0   an int64-range guard tripped (a heap key or
 *                        simulated time beyond ~2**31 ns per epoch
 *                        bit-budget); all counters are flushed and the
 *                        wrapper hands off to the pure-Python loop,
 *                        which handles arbitrary-precision ints.
 *
 * Deliberate choices, so future edits do not regress parity:
 *
 *  - The heap is a native binary heap over the same Python list the
 *    pure loop feeds through heapq, with PyObject_RichCompareBool
 *    comparisons (so arbitrary-precision keys pushed by nested Python
 *    handlers still order correctly).  The sift direction differs
 *    from heapq's bottom-up variant, so the *array layout* can
 *    diverge -- but heap keys are unique (the row field is a monotone
 *    sequence number), so the pop ORDER is identical regardless of
 *    layout, and epoch compaction sorts the pending keys anyway.
 *  - `_c_meta` (an array('q')) is accessed through the sequence
 *    protocol, never the buffer protocol: a held buffer export would
 *    make compaction's in-place `extend` raise BufferError.
 *  - Container references are cached once (compaction mutates them in
 *    place), but list *items* are re-read through the macros on every
 *    use and INCREF'd before any call-out.
 *  - `self._now` is written through on every time advance and
 *    `self._top` on every row allocation, because nested method-form
 *    pushes share the clock and the allocator mid-iteration.
 *  - Generator sends use the call + catch-StopIteration path (not
 *    PyIter_Send, which is 3.10+); the supported floor is CPython 3.9.
 *  - Ring words or yields that fall outside the int64 fast path are
 *    delegated to the bound Python methods (`_execute_word`,
 *    `_handle_yield`), which implement the slow cases with Python
 *    ints at the exact same queue positions.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>

/* Mirrors of the constants in repro/engine/core.py + soa.py.  Checked
 * against the Python values at configure() time. */
#define ROW_BITS 32
#define ROW_MASK ((int64_t)((((int64_t)1) << ROW_BITS) - 1))
#define PROC_BITS 20
#define PROC_MASK ((int64_t)((1 << PROC_BITS) - 1))
#define VAL_SHIFT (3 + PROC_BITS)

/* Ring word tags (bit 0 set). */
#define R_NONE 1
#define R_ZERO 3
#define R_VAL 5
#define R_FLAT 7

/* Row kinds (meta & 7). */
#define K_RESUME_NONE 0
#define K_EVENT 3
#define K_EVWAIT 4
#define K_FLAT 6

/* Flat-op program tags (op[11]); mirrors of the F_* values in soa.py. */
#define F_XMIT 0
#define F_RD_REQ 1
#define F_RD_LOCK 2
#define F_RD_MEM 3
#define F_RD_FWD 4
#define F_RD_HIT 5
#define F_RD_DATA 6
#define F_WR_REQ 7
#define F_WR_LOCK 8
#define F_WR_MEM 9
#define F_WR_FWD 10
#define F_WR_WAIT 11
#define F_WR_GRANT 12
#define F_WR_DATA 13
#define F_WR_HIT 14

/* Largest simulated time whose packed heap key (at << ROW_BITS | row)
 * still fits a signed 64-bit int.  Beyond it the loop hands back to
 * the pure-Python kernel. */
#define MAX_AT ((((int64_t)1) << (63 - ROW_BITS)) - 1)

/* Injected by configure(): types/singletons from repro.engine.core. */
static PyObject *g_acquirable = NULL;
static PyObject *g_event = NULL;
static PyObject *g_turn = NULL;
static PyObject *g_simerror = NULL;
static PyObject *g_flat_tx = NULL;
static int g_configured = 0;

/* Interned attribute/method names. */
static PyObject *s_heap, *s_ring, *s_free, *s_c_meta, *s_payload,
    *s_sends, *s_popleft, *s_append, *s_now, *s_top, *s_cap, *s_compact,
    *s_finish, *s_crash, *s_flat_wake, *s_flat_step, *s_handle_yield,
    *s_throw, *s_execute_word, *s_dispatch, *s_callbacks, *s_exception,
    *s_value, *s_in_use, *s_capacity, *s_waiters, *s_grants,
    *s_events_executed, *s_ring_executed, *s_ring_scheduled,
    *s_rows_recycled, *s_blocked, *s_succeed, *s_release, *s_messages,
    *s_bytes_carried, *s_busy_ns, *s_bytes_transported,
    *s_total_latency_ns, *s_total_contention_ns, *s_flat_ops,
    *s_flat_free, *s_pending_flat_op, *s_heap_row, *s_flat_wr_join,
    *s_post_fast, *s_post_writeback, *s_source, *s_from_memory,
    *s_sharing_writeback, *s_had_data, *s_writeback, *s_shwb,
    *s_flat_fail, *s_flat_wr_invs, *s_invalidated, *s_fast, *s_hit,
    *s_flat_posts, *s_flat_tx, *s_flat_mctx, *s_triggered,
    *s_spawn_inv;

/* -- small helpers ------------------------------------------------------- */

static int
get_int_attr(PyObject *o, PyObject *name, int64_t *out)
{
    PyObject *v = PyObject_GetAttr(o, name);
    long long x;
    if (v == NULL)
        return -1;
    x = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (x == -1 && PyErr_Occurred())
        return -1;
    *out = (int64_t)x;
    return 0;
}

static int
set_int_attr(PyObject *o, PyObject *name, int64_t v)
{
    PyObject *num = PyLong_FromLongLong((long long)v);
    int rc;
    if (num == NULL)
        return -1;
    rc = PyObject_SetAttr(o, name, num);
    Py_DECREF(num);
    return rc;
}

static int
add_int_attr(PyObject *o, PyObject *name, int64_t delta)
{
    int64_t cur;
    if (delta == 0)
        return 0;
    if (get_int_attr(o, name, &cur) < 0)
        return -1;
    return set_int_attr(o, name, cur + delta);
}

static int
list_append_int(PyObject *list, int64_t v)
{
    PyObject *num = PyLong_FromLongLong((long long)v);
    int rc;
    if (num == NULL)
        return -1;
    rc = PyList_Append(list, num);
    Py_DECREF(num);
    return rc;
}

/* c_meta (array('q')) access via the sequence protocol -- see the file
 * comment for why not the buffer protocol. */
static int
seq_get_int(PyObject *seq, int64_t idx, int64_t *out)
{
    PyObject *v = PySequence_GetItem(seq, (Py_ssize_t)idx);
    long long x;
    if (v == NULL)
        return -1;
    x = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (x == -1 && PyErr_Occurred())
        return -1;
    *out = (int64_t)x;
    return 0;
}

static int
seq_set_int(PyObject *seq, int64_t idx, int64_t v)
{
    PyObject *num = PyLong_FromLongLong((long long)v);
    int rc;
    if (num == NULL)
        return -1;
    rc = PySequence_SetItem(seq, (Py_ssize_t)idx, num);
    Py_DECREF(num);
    return rc;
}

/* payload[row] = None, keeping the previous item alive only if the
 * caller INCREF'd it first (PyList_SetItem decrefs the old slot). */
static int
payload_clear(PyObject *payload, int64_t row)
{
    Py_INCREF(Py_None);
    return PyList_SetItem(payload, (Py_ssize_t)row, Py_None);
}

/* Call bound(int_arg) discarding the result. */
static int
call_bound_i(PyObject *bound, int64_t arg)
{
    PyObject *num = PyLong_FromLongLong((long long)arg);
    PyObject *r;
    if (num == NULL)
        return -1;
    r = PyObject_CallOneArg(bound, num);
    Py_DECREF(num);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Call bound(int_arg, obj_arg) discarding the result. */
static int
call_bound_io(PyObject *bound, int64_t arg, PyObject *obj)
{
    PyObject *num = PyLong_FromLongLong((long long)arg);
    PyObject *r;
    if (num == NULL)
        return -1;
    r = PyObject_CallFunctionObjArgs(bound, num, obj, NULL);
    Py_DECREF(num);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Append a packed int word to the ring via the cached bound append. */
static int
ring_append_word(PyObject *ring_append, int64_t word)
{
    PyObject *num = PyLong_FromLongLong((long long)word);
    PyObject *r;
    if (num == NULL)
        return -1;
    r = PyObject_CallOneArg(ring_append, num);
    Py_DECREF(num);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Allocate a fresh monotone row from self._top, compacting when the
 * table is full -- the C twin of the inline allocator in _run_fast.
 * Returns the row index, or -1 with an exception set. */
static int64_t
alloc_top_row(PyObject *sim, PyObject *compact_m)
{
    int64_t top, cap;
    if (get_int_attr(sim, s_top, &top) < 0)
        return -1;
    if (get_int_attr(sim, s_cap, &cap) < 0)
        return -1;
    if (top == cap) {
        PyObject *r = PyObject_CallNoArgs(compact_m);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        if (get_int_attr(sim, s_top, &top) < 0)
            return -1;
    }
    if (set_int_attr(sim, s_top, top + 1) < 0)
        return -1;
    return top;
}

/* Native binary-heap ops on the shared Python list.  Comparisons go
 * through PyObject_RichCompareBool so big-int keys (pushed by nested
 * Python handlers past the int64 range) still order correctly; for
 * the common two-machine-int case CPython compares them without
 * allocating.  Layout may diverge from heapq's (see file comment) --
 * pop order cannot, because keys are unique. */

static int
heap_push_native(PyObject *heap, PyObject *item)
{
    Py_ssize_t pos;
    PyObject *newitem;
    if (PyList_Append(heap, item) < 0)
        return -1;
    pos = PyList_GET_SIZE(heap) - 1;
    newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > 0) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = PyObject_RichCompareBool(newitem, parent, Py_LT);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent);
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem);  /* steals our extra ref */
    return 0;
}

/* Pop the root; the caller checked the heap is non-empty.  Returns a
 * new reference, or NULL with an exception set. */
static PyObject *
heap_pop_native(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    Py_ssize_t pos;
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    PyObject *returnitem;
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    n -= 1;
    if (n == 0)
        return lastelt;
    returnitem = PyList_GET_ITEM(heap, 0);
    Py_INCREF(returnitem);
    PyList_SetItem(heap, 0, lastelt);  /* steals lastelt */
    pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        Py_ssize_t right = child + 1;
        PyObject *a, *b;
        int lt;
        if (child >= n)
            break;
        if (right < n) {
            lt = PyObject_RichCompareBool(PyList_GET_ITEM(heap, right),
                                          PyList_GET_ITEM(heap, child),
                                          Py_LT);
            if (lt < 0)
                goto fail;
            if (lt)
                child = right;
        }
        lt = PyObject_RichCompareBool(PyList_GET_ITEM(heap, child),
                                      PyList_GET_ITEM(heap, pos), Py_LT);
        if (lt < 0)
            goto fail;
        if (!lt)
            break;
        a = PyList_GET_ITEM(heap, pos);
        b = PyList_GET_ITEM(heap, child);
        Py_INCREF(a);
        Py_INCREF(b);
        PyList_SetItem(heap, pos, b);
        PyList_SetItem(heap, child, a);
        pos = child;
    }
    return returnitem;
fail:
    Py_DECREF(returnitem);
    return NULL;
}

static int
flush_counters(PyObject *sim, int64_t executed, int64_t ring_exec,
               int64_t ring_sched, int64_t recycled)
{
    if (add_int_attr(sim, s_events_executed, executed) < 0)
        return -1;
    if (add_int_attr(sim, s_ring_executed, ring_exec) < 0)
        return -1;
    if (add_int_attr(sim, s_ring_scheduled, ring_sched) < 0)
        return -1;
    if (add_int_attr(sim, s_rows_recycled, recycled) < 0)
        return -1;
    return 0;
}

/* -- native flat-op execution -------------------------------------------- */
/*
 * C twins of SoaSimulator._flat_step / _flat_wake and their helpers,
 * operating on the shared Python op table (op is a plain list; see the
 * slot layout comment in soa.py).  Python is entered only for the
 * model callouts: the directory plan step (`_flat_step` on lock tags),
 * the invalidation join (`_flat_wr_join`), contended `release()`,
 * shell `succeed`, `post_fast` and `_post_writeback`.  Transaction
 * completion does not call `_advance`: it hands (caller, result) back
 * to the run loop, which falls into its native drive section -- the
 * resume runs inside the final wake event at the exact position the
 * Python kernels give it.
 */

typedef struct {
    PyObject *sim;
    PyObject *heap;       /* borrowed from the run loop's caches */
    PyObject *c_meta;
    PyObject *payload;    /* self._payload (list) */
    PyObject *freelist;   /* self._free (list) */
    PyObject *flat_ops;   /* self._flat_ops (list) */
    PyObject *flat_free;  /* self._flat_free (list) */
    PyObject *ring_append;
    PyObject *compact_m;
    PyObject *flat_step_py;     /* bound _flat_step (fallback) */
    PyObject *flat_wake_py;     /* bound _flat_wake (odd tags) */
    PyObject *flat_wr_join_py;  /* bound _flat_wr_join */
    int64_t *ring_scheduled;
    int64_t *recycled;
    /* Fabric-counter write-behind: settle totals for the (single)
     * plain fabric accumulate in these locals and flush on every loop
     * exit, saving four attribute round-trips per message.  A second
     * fabric (not seen in practice) falls back to write-through. */
    PyObject *fabric;     /* owned once set */
    int64_t fb_messages, fb_bytes, fb_latency, fb_contention;
    /* Simulator-counter write-behind for natively built/finished flat
     * ops (`_flat_posts`, `flat_tx`, `_blocked` deltas). */
    int64_t fb_flat_posts, fb_flat_tx, fb_blocked;
} FlatCtx;

/* Flush the batched fabric and simulator counters (no-ops when
 * nothing accumulated). */
static int
flat_flush_counters(FlatCtx *fc)
{
    if (fc->fabric != NULL) {
        if (add_int_attr(fc->fabric, s_messages, fc->fb_messages) < 0
                || add_int_attr(fc->fabric, s_bytes_transported,
                                fc->fb_bytes) < 0
                || add_int_attr(fc->fabric, s_total_latency_ns,
                                fc->fb_latency) < 0
                || add_int_attr(fc->fabric, s_total_contention_ns,
                                fc->fb_contention) < 0)
            return -1;
        fc->fb_messages = fc->fb_bytes = 0;
        fc->fb_latency = fc->fb_contention = 0;
    }
    if (fc->fb_flat_posts) {
        if (add_int_attr(fc->sim, s_flat_posts, fc->fb_flat_posts) < 0)
            return -1;
        fc->fb_flat_posts = 0;
    }
    if (fc->fb_flat_tx) {
        if (add_int_attr(fc->sim, s_flat_tx, fc->fb_flat_tx) < 0)
            return -1;
        fc->fb_flat_tx = 0;
    }
    if (fc->fb_blocked) {
        if (add_int_attr(fc->sim, s_blocked, fc->fb_blocked) < 0)
            return -1;
        fc->fb_blocked = 0;
    }
    return 0;
}

/* Op slot accessors.  Slots are machine ints by construction; a
 * non-int raises and propagates. */
static int
op_get_int(PyObject *op, int idx, int64_t *out)
{
    long long x = PyLong_AsLongLong(PyList_GET_ITEM(op, idx));
    if (x == -1 && PyErr_Occurred())
        return -1;
    *out = (int64_t)x;
    return 0;
}

static int
op_set_int(PyObject *op, int idx, int64_t v)
{
    PyObject *num = PyLong_FromLongLong((long long)v);
    if (num == NULL)
        return -1;
    return PyList_SetItem(op, idx, num);  /* steals */
}

static int
op_set_obj(PyObject *op, int idx, PyObject *v)
{
    Py_INCREF(v);
    return PyList_SetItem(op, idx, v);  /* steals our new ref */
}

/* Inlined try_acquire on the Acquirable attribute contract (links and
 * home locks alike).  Returns 1 granted, 0 parked (the complement-
 * packed `packed` word appended to the waiter deque), -1 error. */
static int
acquire_or_park(PyObject *res, int64_t packed)
{
    int64_t in_use, capacity, grants;
    PyObject *waiters;
    Py_ssize_t wn;
    if (get_int_attr(res, s_in_use, &in_use) < 0
            || get_int_attr(res, s_capacity, &capacity) < 0)
        return -1;
    waiters = PyObject_GetAttr(res, s_waiters);
    if (waiters == NULL)
        return -1;
    wn = PyObject_Size(waiters);
    if (wn < 0) {
        Py_DECREF(waiters);
        return -1;
    }
    if (in_use < capacity && wn == 0) {
        Py_DECREF(waiters);
        if (set_int_attr(res, s_in_use, in_use + 1) < 0
                || get_int_attr(res, s_grants, &grants) < 0
                || set_int_attr(res, s_grants, grants + 1) < 0)
            return -1;
        return 1;
    }
    {
        PyObject *packed_o = PyLong_FromLongLong((long long)packed);
        PyObject *r = NULL;
        if (packed_o != NULL) {
            r = PyObject_CallMethodOneArg(waiters, s_append, packed_o);
            Py_DECREF(packed_o);
        }
        Py_DECREF(waiters);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
}

/* Release an Acquirable this op holds: contended releases go through
 * the Python release() (waiter dispatch), uncontended ones decrement
 * in_use inline -- same split as the Python twins. */
static int
release_held(PyObject *res)
{
    PyObject *waiters = PyObject_GetAttr(res, s_waiters);
    Py_ssize_t wn;
    if (waiters == NULL)
        return -1;
    wn = PyObject_Size(waiters);
    Py_DECREF(waiters);
    if (wn < 0)
        return -1;
    if (wn > 0) {
        PyObject *r = PyObject_CallMethodNoArgs(res, s_release);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    {
        int64_t in_use;
        if (get_int_attr(res, s_in_use, &in_use) < 0)
            return -1;
        return set_int_attr(res, s_in_use, in_use - 1);
    }
}

/* Schedule a K_FLAT wake at `at` on a fresh monotone row (the C twin
 * of `_heap_row(at, K_FLAT, opidx)`). */
static int
flat_heap_row(FlatCtx *fc, int64_t at, int64_t opidx)
{
    int64_t row;
    PyObject *keyo;
    int prc;
    if (at > MAX_AT) {
        /* Key past the packed-int64 budget: the Python allocator
         * computes with arbitrary-precision ints. */
        PyObject *r = PyObject_CallMethod(
            fc->sim, "_heap_row", "LiL", (long long)at, K_FLAT,
            (long long)opidx);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    row = alloc_top_row(fc->sim, fc->compact_m);
    if (row < 0)
        return -1;
    if (seq_set_int(fc->c_meta, row, (opidx << 3) | K_FLAT) < 0)
        return -1;
    keyo = PyLong_FromLongLong((long long)((at << ROW_BITS) | row));
    if (keyo == NULL)
        return -1;
    prc = heap_push_native(fc->heap, keyo);
    Py_DECREF(keyo);
    return prc;
}

static int attr_true(PyObject *o, PyObject *name);

/* Event.succeed(value) inlined for a flat transmit's shell: mark it
 * triggered, store the value, and land the dispatch on the ring (the
 * `_schedule_event_row` twin, recycled rows and all).  Falls back to
 * the Python succeed for the already-triggered error path. */
static int
event_succeed_c(FlatCtx *fc, PyObject *shell, PyObject *value)
{
    int64_t row;
    int t = attr_true(shell, s_triggered);
    if (t < 0)
        return -1;
    if (t) {
        PyObject *r = PyObject_CallMethodOneArg(shell, s_succeed, value);
        if (r == NULL)
            return -1;  /* raises "already been triggered" */
        Py_DECREF(r);
        return 0;
    }
    if (PyObject_SetAttr(shell, s_triggered, Py_True) < 0
            || PyObject_SetAttr(shell, s_value, value) < 0)
        return -1;
    {
        Py_ssize_t nfree = PyList_GET_SIZE(fc->freelist);
        if (nfree > 0) {
            long long v = PyLong_AsLongLong(
                PyList_GET_ITEM(fc->freelist, nfree - 1));
            if (v == -1 && PyErr_Occurred())
                return -1;
            if (PyList_SetSlice(fc->freelist, nfree - 1, nfree,
                                NULL) < 0)
                return -1;
            (*fc->recycled)++;
            row = (int64_t)v;
        }
        else {
            row = alloc_top_row(fc->sim, fc->compact_m);
            if (row < 0)
                return -1;
        }
    }
    if (seq_set_int(fc->c_meta, row, K_EVENT) < 0)
        return -1;
    Py_INCREF(shell);
    if (PyList_SetItem(fc->payload, (Py_ssize_t)row, shell) < 0)
        return -1;
    if (ring_append_word(fc->ring_append, row << 1) < 0)
        return -1;
    (*fc->ring_scheduled)++;
    return 0;
}

/* Book one completed leg: per-link counters and releases plus the
 * fabric totals (Fabric.settle_fast twin).  Transaction legs also
 * bank the transmission time into op[19] (add_latency). */
static int
flat_settle_c(FlatCtx *fc, PyObject *op, int64_t now, int add_latency)
{
    PyObject *fabric = PyList_GET_ITEM(op, 1);
    PyObject *path = PyList_GET_ITEM(op, 3);
    int64_t nbytes, tx, start, circuit, held;
    Py_ssize_t i, n;
    if (!PyTuple_CheckExact(path)) {
        PyErr_SetString(PyExc_TypeError,
                        "_csoa: flat-op path is not a tuple");
        return -1;
    }
    if (op_get_int(op, 4, &nbytes) < 0 || op_get_int(op, 5, &tx) < 0
            || op_get_int(op, 7, &start) < 0
            || op_get_int(op, 8, &circuit) < 0)
        return -1;
    held = now - circuit;
    n = PyTuple_GET_SIZE(path);
    for (i = 0; i < n; i++) {
        PyObject *link = PyTuple_GET_ITEM(path, i);
        if (add_int_attr(link, s_messages, 1) < 0
                || add_int_attr(link, s_bytes_carried, nbytes) < 0
                || add_int_attr(link, s_busy_ns, held) < 0)
            return -1;
        if (release_held(link) < 0)
            return -1;
    }
    if (fc->fabric == NULL) {
        Py_INCREF(fabric);
        fc->fabric = fabric;
    }
    if (fabric == fc->fabric) {
        fc->fb_messages += 1;
        fc->fb_bytes += nbytes;
        fc->fb_latency += tx;
        fc->fb_contention += circuit - start;
    }
    else if (add_int_attr(fabric, s_messages, 1) < 0
            || add_int_attr(fabric, s_bytes_transported, nbytes) < 0
            || add_int_attr(fabric, s_total_latency_ns, tx) < 0
            || add_int_attr(fabric, s_total_contention_ns,
                            circuit - start) < 0)
        return -1;
    if (add_latency) {
        int64_t lat;
        if (op_get_int(op, 19, &lat) < 0
                || op_set_int(op, 19, lat + tx) < 0)
            return -1;
    }
    return 0;
}

static int flat_step_c(FlatCtx *fc, int64_t opidx, int64_t now,
                       int64_t *resume_p, PyObject **resume_value);
static int flat_done_c(FlatCtx *fc, int64_t opidx, PyObject *op,
                       int64_t *resume_p, PyObject **resume_value);
static int flat_wr_unlock_c(FlatCtx *fc, int64_t opidx, PyObject *op,
                            int64_t now, int64_t *resume_p,
                            PyObject **resume_value);

/* Truthiness of an attribute (plan flags): 1/0, -1 on error. */
static int
attr_true(PyObject *o, PyObject *name)
{
    PyObject *a = PyObject_GetAttr(o, name);
    int truth;
    if (a == NULL)
        return -1;
    truth = PyObject_IsTrue(a);
    Py_DECREF(a);
    return truth;
}

/* Start a message leg from ctx-resolved route/size/time and attempt
 * its first link inline (the `_flat_leg` twin). */
static int
flat_leg_c(FlatCtx *fc, int64_t opidx, PyObject *op, int64_t src,
           int64_t dst, int data, int64_t tag, int64_t now,
           int64_t *resume_p, PyObject **resume_value)
{
    PyObject *ctx = PyList_GET_ITEM(op, 13);
    PyObject *routes = PyTuple_GET_ITEM(ctx, 1);
    int64_t nprocs;
    long long v = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 2));
    if (v == -1 && PyErr_Occurred())
        return -1;
    nprocs = (int64_t)v;
    if (op_set_obj(op, 3, PyList_GET_ITEM(
            routes, (Py_ssize_t)(src * nprocs + dst))) < 0)
        return -1;
    if (op_set_obj(op, 4, PyTuple_GET_ITEM(ctx, data ? 4 : 3)) < 0
            || op_set_obj(op, 5, PyTuple_GET_ITEM(ctx, data ? 6 : 5)) < 0)
        return -1;
    if (op_set_int(op, 6, 0) < 0 || op_set_int(op, 7, now) < 0
            || op_set_int(op, 11, tag) < 0)
        return -1;
    return flat_step_c(fc, opidx, now, resume_p, resume_value);
}

/* A plan callout raised: route the live exception into the parked
 * caller via the Python `_flat_fail` twin (rare path). */
static int
flat_fail_c(FlatCtx *fc, int64_t opidx, PyObject *op)
{
    PyObject *etype, *evalue, *etb, *num, *r;
    PyErr_Fetch(&etype, &evalue, &etb);
    PyErr_NormalizeException(&etype, &evalue, &etb);
    if (evalue == NULL) {
        PyErr_Restore(etype, evalue, etb);
        return -1;
    }
    if (etb != NULL)
        PyException_SetTraceback(evalue, etb);
    num = PyLong_FromLongLong((long long)opidx);
    if (num == NULL) {
        Py_XDECREF(etype);
        Py_DECREF(evalue);
        Py_XDECREF(etb);
        return -1;
    }
    r = PyObject_CallMethodObjArgs(fc->sim, s_flat_fail, num, op,
                                   evalue, NULL);
    Py_DECREF(num);
    Py_XDECREF(etype);
    Py_DECREF(evalue);
    Py_XDECREF(etb);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Raced-with-ourselves exit (`_flat_done_early` twin): unlock,
 * resume the caller with (0, hit_ns). */
static int
flat_done_early_c(FlatCtx *fc, int64_t opidx, PyObject *op,
                  int64_t *resume_p, PyObject **resume_value)
{
    PyObject *ctx = PyList_GET_ITEM(op, 13);
    PyObject *tup, *zero;
    int64_t p;
    if (release_held(PyList_GET_ITEM(op, 17)) < 0)
        return -1;
    if (op_get_int(op, 12, &p) < 0)
        return -1;
    zero = PyLong_FromLong(0);
    if (zero == NULL)
        return -1;
    tup = PyTuple_Pack(2, zero, PyTuple_GET_ITEM(ctx, 8));
    Py_DECREF(zero);
    if (tup == NULL)
        return -1;
    Py_INCREF(Py_None);
    if (PyList_SetItem(fc->flat_ops, (Py_ssize_t)opidx, Py_None) < 0
            || list_append_int(fc->flat_free, opidx) < 0) {
        Py_DECREF(tup);
        return -1;
    }
    *resume_p = p;
    *resume_value = tup;
    return 0;
}

/* Home-lock granted on a read: run the directory plan (the
 * `_flat_rd_plan` twin; the plan callout itself is the model). */
static int
flat_rd_plan_c(FlatCtx *fc, int64_t opidx, PyObject *op, int64_t now,
               int64_t *resume_p, PyObject **resume_value)
{
    PyObject *ctx = PyList_GET_ITEM(op, 13);
    PyObject *plan;
    int truth;
    int64_t source, home, svc, dur;
    long long v;
    plan = PyObject_CallFunctionObjArgs(PyTuple_GET_ITEM(ctx, 10),
                                        PyList_GET_ITEM(op, 14),
                                        PyList_GET_ITEM(op, 15), NULL);
    if (plan == NULL)
        return flat_fail_c(fc, opidx, op);
    if (PyList_SetItem(op, 18, plan) < 0)  /* steals */
        return -1;
    truth = attr_true(plan, s_hit);
    if (truth < 0)
        return -1;
    if (truth)  /* raced with ourselves; cannot normally happen */
        return flat_done_early_c(fc, opidx, op, resume_p, resume_value);
    truth = attr_true(plan, s_from_memory);
    if (truth < 0)
        return -1;
    if (truth) {
        v = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 7));
        if (v == -1 && PyErr_Occurred())
            return -1;
        dur = (int64_t)v;
        if (op_get_int(op, 20, &svc) < 0
                || op_set_int(op, 20, svc + dur) < 0
                || op_set_int(op, 11, F_RD_MEM) < 0)
            return -1;
        return flat_heap_row(fc, now + dur, opidx);
    }
    /* Owned by a remote cache: home forwards, owner supplies. */
    if (get_int_attr(plan, s_source, &source) < 0
            || op_get_int(op, 16, &home) < 0)
        return -1;
    if (home != source)
        return flat_leg_c(fc, opidx, op, home, source, 0, F_RD_FWD, now,
                          resume_p, resume_value);
    if (release_held(PyList_GET_ITEM(op, 17)) < 0)
        return -1;
    v = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 8));
    if (v == -1 && PyErr_Occurred())
        return -1;
    dur = (int64_t)v;
    if (op_get_int(op, 20, &svc) < 0
            || op_set_int(op, 20, svc + dur) < 0
            || op_set_int(op, 11, F_RD_HIT) < 0)
        return -1;
    return flat_heap_row(fc, now + dur, opidx);
}

/* Launch a write's invalidation rounds (the `_flat_wr_invs` twin).
 * The common remote round -- two control legs, inv out and ack back
 * -- is a flat transmit built natively (the `flat_transmit` twin,
 * including its Event shell); only the degenerate home==node round
 * falls back to the machine's `_spawn_inv` so its generator-form
 * event sequence is preserved exactly. */
static int
flat_wr_invs_c(FlatCtx *fc, PyObject *op, PyObject *plan, int64_t now)
{
    PyObject *ctx = PyList_GET_ITEM(op, 13);
    PyObject *routes = PyTuple_GET_ITEM(ctx, 1);
    PyObject *fabric = PyTuple_GET_ITEM(ctx, 0);
    PyObject *ctrl = PyTuple_GET_ITEM(ctx, 3);
    PyObject *tx = PyTuple_GET_ITEM(ctx, 5);
    PyObject *machine = PyTuple_GET_ITEM(ctx, 12);
    PyObject *seq = NULL, *invs = NULL, *shell = NULL, *xop = NULL;
    Py_ssize_t n, k;
    int64_t source = -1, home, nprocs;
    long long v;
    int have_source = 0, any_remote = 0, rc = -1;

    {
        /* plan.source is None when memory supplies the data; the
         * twin's `s != source` then filters nothing. */
        PyObject *src_o = PyObject_GetAttr(plan, s_source);
        if (src_o == NULL)
            return -1;
        if (src_o != Py_None) {
            v = PyLong_AsLongLong(src_o);
            if (v == -1 && PyErr_Occurred()) {
                Py_DECREF(src_o);
                return -1;
            }
            source = (int64_t)v;
            have_source = 1;
        }
        Py_DECREF(src_o);
    }
    if (op_get_int(op, 16, &home) < 0)
        return -1;
    v = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 2));
    if (v == -1 && PyErr_Occurred())
        return -1;
    nprocs = (int64_t)v;
    {
        PyObject *inv_attr = PyObject_GetAttr(plan, s_invalidated);
        if (inv_attr == NULL)
            return -1;
        seq = PySequence_Fast(inv_attr,
                              "_csoa: plan.invalidated is not a sequence");
        Py_DECREF(inv_attr);
        if (seq == NULL)
            return -1;
    }
    invs = PyList_New(0);
    if (invs == NULL)
        goto out;
    n = PySequence_Fast_GET_SIZE(seq);
    for (k = 0; k < n; k++) {
        PyObject *node_o = PySequence_Fast_GET_ITEM(seq, k);
        int64_t node;
        v = PyLong_AsLongLong(node_o);
        if (v == -1 && PyErr_Occurred())
            goto out;
        node = (int64_t)v;
        if (have_source && node == source)
            continue;
        if (node != home)
            any_remote = 1;
        if (node == home) {
            shell = PyObject_CallMethodObjArgs(machine, s_spawn_inv,
                                               PyList_GET_ITEM(op, 14),
                                               PyList_GET_ITEM(op, 16),
                                               node_o, NULL);
            if (shell == NULL)
                goto out;
        }
        else {
            PyObject *out_path = PyList_GET_ITEM(
                routes, (Py_ssize_t)(home * nprocs + node));
            PyObject *back_path = PyList_GET_ITEM(
                routes, (Py_ssize_t)(node * nprocs + home));
            PyObject *legs;
            int64_t xidx;
            shell = PyObject_CallOneArg(g_event, fc->sim);
            if (shell == NULL)
                goto out;
            {
                PyObject *leg0 = PyTuple_Pack(3, out_path, ctrl, tx);
                PyObject *leg1;
                if (leg0 == NULL)
                    goto out;
                leg1 = PyTuple_Pack(3, back_path, ctrl, tx);
                if (leg1 == NULL) {
                    Py_DECREF(leg0);
                    goto out;
                }
                legs = PyTuple_Pack(2, leg0, leg1);
                Py_DECREF(leg0);
                Py_DECREF(leg1);
                if (legs == NULL)
                    goto out;
            }
            xop = PyList_New(12);
            if (xop == NULL) {
                Py_DECREF(legs);
                goto out;
            }
#define XSETI(idx, val)                                                 \
    do {                                                                \
        PyObject *_n = PyLong_FromLongLong((long long)(val));           \
        if (_n == NULL)                                                 \
            goto out;                                                   \
        PyList_SET_ITEM(xop, (idx), _n);                                \
    } while (0)
#define XSETO(idx, obj)                                                 \
    do {                                                                \
        PyObject *_o = (obj);                                           \
        Py_INCREF(_o);                                                  \
        PyList_SET_ITEM(xop, (idx), _o);                                \
    } while (0)
            XSETO(0, shell);
            XSETO(1, fabric);
            PyList_SET_ITEM(xop, 2, legs);  /* steals */
            XSETO(3, out_path);
            XSETO(4, ctrl);
            XSETO(5, tx);
            XSETI(6, 0);
            XSETI(7, now);
            XSETI(8, 0);
            XSETO(9, Py_None);
            XSETI(10, 0);
            XSETI(11, F_XMIT);
#undef XSETI
#undef XSETO
            {
                Py_ssize_t nfree = PyList_GET_SIZE(fc->flat_free);
                if (nfree > 0) {
                    v = PyLong_AsLongLong(
                        PyList_GET_ITEM(fc->flat_free, nfree - 1));
                    if (v == -1 && PyErr_Occurred())
                        goto out;
                    xidx = (int64_t)v;
                    if (PyList_SetSlice(fc->flat_free, nfree - 1, nfree,
                                        NULL) < 0)
                        goto out;
                    {
                        int src = PyList_SetItem(fc->flat_ops,
                                                 (Py_ssize_t)xidx,
                                                 xop);  /* steals */
                        xop = NULL;
                        if (src < 0)
                            goto out;
                    }
                }
                else {
                    xidx = (int64_t)PyList_GET_SIZE(fc->flat_ops);
                    if (xidx >= ((int64_t)1 << PROC_BITS)) {
                        PyErr_Format(g_simerror,
                                     "too many live flat ops (%lld); "
                                     "see PROC_BITS in "
                                     "repro.engine.core",
                                     (long long)xidx);
                        goto out;
                    }
                    if (PyList_Append(fc->flat_ops, xop) < 0)
                        goto out;
                    Py_CLEAR(xop);
                }
            }
            fc->fb_flat_posts += 1;
            fc->fb_blocked += 1;
            /* The start word doubles as the first acquire attempt,
             * exactly where the generator's start-up resumption
             * would have run. */
            (*fc->ring_scheduled)++;
            if (ring_append_word(fc->ring_append,
                                 (xidx << 3) | R_FLAT) < 0)
                goto out;
        }
        if (PyList_Append(invs, shell) < 0)
            goto out;
        Py_CLEAR(shell);
    }
    if (PyList_GET_SIZE(invs) > 0) {
        if (PyList_SetItem(op, 21, invs) < 0) {  /* steals */
            invs = NULL;
            goto out;
        }
        invs = NULL;
        if (any_remote && op_set_int(op, 22, 1) < 0)
            goto out;
    }
    rc = 0;
out:
    Py_XDECREF(seq);
    Py_XDECREF(invs);
    Py_XDECREF(shell);
    Py_XDECREF(xop);
    return rc;
}

/* Home-lock granted on a write: plan, launch invalidations (the
 * `_flat_wr_plan` twin). */
static int
flat_wr_plan_c(FlatCtx *fc, int64_t opidx, PyObject *op, int64_t now,
               int64_t *resume_p, PyObject **resume_value)
{
    PyObject *ctx = PyList_GET_ITEM(op, 13);
    PyObject *plan;
    int truth;
    int64_t source, home, svc, dur;
    long long v;
    plan = PyObject_CallFunctionObjArgs(PyTuple_GET_ITEM(ctx, 11),
                                        PyList_GET_ITEM(op, 14),
                                        PyList_GET_ITEM(op, 15), NULL);
    if (plan == NULL)
        return flat_fail_c(fc, opidx, op);
    if (PyList_SetItem(op, 18, plan) < 0)  /* steals */
        return -1;
    truth = attr_true(plan, s_fast);
    if (truth < 0)
        return -1;
    if (truth)  /* raced with ourselves; cannot normally happen */
        return flat_done_early_c(fc, opidx, op, resume_p, resume_value);
    truth = attr_true(plan, s_invalidated);
    if (truth < 0)
        return -1;
    if (truth && flat_wr_invs_c(fc, op, plan, now) < 0)
        return -1;
    truth = attr_true(plan, s_had_data);
    if (truth < 0)
        return -1;
    if (!truth) {
        truth = attr_true(plan, s_from_memory);
        if (truth < 0)
            return -1;
        if (truth) {
            v = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 7));
            if (v == -1 && PyErr_Occurred())
                return -1;
            dur = (int64_t)v;
            if (op_get_int(op, 20, &svc) < 0
                    || op_set_int(op, 20, svc + dur) < 0
                    || op_set_int(op, 11, F_WR_MEM) < 0)
                return -1;
            return flat_heap_row(fc, now + dur, opidx);
        }
        if (get_int_attr(plan, s_source, &source) < 0
                || op_get_int(op, 16, &home) < 0)
            return -1;
        if (home != source)
            return flat_leg_c(fc, opidx, op, home, source, 0, F_WR_FWD,
                              now, resume_p, resume_value);
    }
    if (PyList_GET_ITEM(op, 21) != Py_None) {
        PyObject *num = PyLong_FromLongLong((long long)opidx);
        PyObject *r;
        if (num == NULL)
            return -1;
        r = PyObject_CallFunctionObjArgs(fc->flat_wr_join_py, num, op,
                                         NULL);
        Py_DECREF(num);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    return flat_wr_unlock_c(fc, opidx, op, now, resume_p, resume_value);
}

/* One acquire-or-transmit step (the `_flat_step` twin).  The lock
 * tags run the directory plan. */
static int
flat_step_c(FlatCtx *fc, int64_t opidx, int64_t now,
            int64_t *resume_p, PyObject **resume_value)
{
    PyObject *op = PyList_GET_ITEM(fc->flat_ops, (Py_ssize_t)opidx);
    PyObject *path;
    int64_t tag, i, tx;
    Py_ssize_t n;
    int rc = -1;
    Py_INCREF(op);
    if (op_get_int(op, 11, &tag) < 0)
        goto out;
    if (tag == F_RD_LOCK) {
        rc = flat_rd_plan_c(fc, opidx, op, now, resume_p, resume_value);
        goto out;
    }
    if (tag == F_WR_LOCK) {
        rc = flat_wr_plan_c(fc, opidx, op, now, resume_p, resume_value);
        goto out;
    }
    path = PyList_GET_ITEM(op, 3);
    if (!PyTuple_CheckExact(path)) {
        PyErr_SetString(PyExc_TypeError,
                        "_csoa: flat-op path is not a tuple");
        goto out;
    }
    if (op_get_int(op, 6, &i) < 0)
        goto out;
    n = PyTuple_GET_SIZE(path);
    if (i < (int64_t)n) {
        int arc = acquire_or_park(PyTuple_GET_ITEM(path, (Py_ssize_t)i),
                                  ~((now << PROC_BITS) | opidx));
        if (arc < 0)
            goto out;
        if (arc) {
            if (op_set_int(op, 6, i + 1) < 0)
                goto out;
            if (ring_append_word(fc->ring_append,
                                 (opidx << 3) | R_FLAT) < 0)
                goto out;
            (*fc->ring_scheduled)++;
        }
        rc = 0;
        goto out;
    }
    /* Circuit complete: the transmission sleep. */
    if (op_set_int(op, 8, now) < 0)
        goto out;
    if (op_get_int(op, 5, &tx) < 0)
        goto out;
    rc = flat_heap_row(fc, now + tx, opidx);
out:
    Py_DECREF(op);
    return rc;
}

/* Transaction complete (the `_flat_done` twin): writeback callout,
 * recycle, then hand (caller, (latency, service)) to the run loop. */
static int
flat_done_c(FlatCtx *fc, int64_t opidx, PyObject *op, int64_t *resume_p,
            PyObject **resume_value)
{
    PyObject *ctx = PyList_GET_ITEM(op, 13);
    PyObject *plan = PyList_GET_ITEM(op, 18);
    PyObject *writeback = PyObject_GetAttr(plan, s_writeback);
    int64_t p, lat, svc;
    PyObject *tup;
    if (writeback == NULL)
        return -1;
    if (writeback != Py_None) {
        PyObject *machine = PyTuple_GET_ITEM(ctx, 12);
        PyObject *r = PyObject_CallMethodObjArgs(
            machine, s_post_writeback, PyList_GET_ITEM(op, 14),
            writeback, NULL);
        Py_DECREF(writeback);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
    }
    else
        Py_DECREF(writeback);
    if (op_get_int(op, 12, &p) < 0 || op_get_int(op, 19, &lat) < 0
            || op_get_int(op, 20, &svc) < 0)
        return -1;
    tup = Py_BuildValue("(LL)", (long long)lat, (long long)svc);
    if (tup == NULL)
        return -1;
    Py_INCREF(Py_None);
    if (PyList_SetItem(fc->flat_ops, (Py_ssize_t)opidx, Py_None) < 0
            || list_append_int(fc->flat_free, opidx) < 0) {
        Py_DECREF(tup);
        return -1;
    }
    *resume_p = p;
    *resume_value = tup;
    return 0;
}

/* `_flat_wr_join` callout (builds the all_of join, parks the op). */
static int
call_wr_join(FlatCtx *fc, int64_t opidx, PyObject *op)
{
    PyObject *num = PyLong_FromLongLong((long long)opidx);
    PyObject *r;
    if (num == NULL)
        return -1;
    r = PyObject_CallFunctionObjArgs(fc->flat_wr_join_py, num, op, NULL);
    Py_DECREF(num);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Release the directory and launch a write's final leg (the
 * `_flat_wr_unlock` twin). */
static int
flat_wr_unlock_c(FlatCtx *fc, int64_t opidx, PyObject *op, int64_t now,
                 int64_t *resume_p, PyObject **resume_value)
{
    PyObject *plan = PyList_GET_ITEM(op, 18);
    int64_t pid, home;
    int truth;
    if (release_held(PyList_GET_ITEM(op, 17)) < 0)
        return -1;
    if (op_get_int(op, 14, &pid) < 0 || op_get_int(op, 16, &home) < 0)
        return -1;
    truth = attr_true(plan, s_had_data);
    if (truth < 0)
        return -1;
    if (truth) {
        /* Ownership upgrade: permission only, granted by the home. */
        if (pid != home)
            return flat_leg_c(fc, opidx, op, home, pid, 0, F_WR_GRANT,
                              now, resume_p, resume_value);
        return flat_done_c(fc, opidx, op, resume_p, resume_value);
    }
    truth = attr_true(plan, s_from_memory);
    if (truth < 0)
        return -1;
    if (truth) {
        if (home != pid)
            return flat_leg_c(fc, opidx, op, home, pid, 1, F_WR_DATA,
                              now, resume_p, resume_value);
        return flat_done_c(fc, opidx, op, resume_p, resume_value);
    }
    {
        PyObject *ctx = PyList_GET_ITEM(op, 13);
        int64_t hit, svc;
        long long h = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 8));
        if (h == -1 && PyErr_Occurred())
            return -1;
        hit = (int64_t)h;
        if (op_get_int(op, 20, &svc) < 0
                || op_set_int(op, 20, svc + hit) < 0)
            return -1;
        if (op_set_int(op, 11, F_WR_HIT) < 0)
            return -1;
        return flat_heap_row(fc, now + hit, opidx);
    }
}

/* Build and start a memory-transaction flat op from a deferred-call
 * request tuple `(transact_flat, pid, addr, is_write)` -- the native
 * twin of Machine._transact_flat + SoaSimulator.flat_transact plus
 * the kernel's first-step dispatch: on the memoized block path an
 * uncontended miss enters the interpreter only for the plan callout.
 * `mctx` is the machine's `_flat_mctx` registration `(transact_flat,
 * block_bytes, home_cache, home_of_block, home_locks, home_lock,
 * flat_ctx)`. */
static int
flat_tx_native(FlatCtx *fc, PyObject *mctx, PyObject *y, int64_t p,
               int64_t now, int64_t *resume_p, PyObject **resume_value)
{
    PyObject *home_cache = PyTuple_GET_ITEM(mctx, 2);
    PyObject *home_locks = PyTuple_GET_ITEM(mctx, 4);
    PyObject *ctx = PyTuple_GET_ITEM(mctx, 6);
    PyObject *routes = PyTuple_GET_ITEM(ctx, 1);
    PyObject *pid_o = PyTuple_GET_ITEM(y, 1);
    PyObject *bkey = NULL, *home_o = NULL, *lock = NULL, *op = NULL;
    int64_t pid, addr, block_bytes, block, home, opidx;
    long long v;
    int is_write;
    int rc = -1;

    v = PyLong_AsLongLong(pid_o);
    if (v == -1 && PyErr_Occurred())
        return -1;
    pid = (int64_t)v;
    v = PyLong_AsLongLong(PyTuple_GET_ITEM(y, 2));
    if (v == -1 && PyErr_Occurred())
        return -1;
    addr = (int64_t)v;
    is_write = PyObject_IsTrue(PyTuple_GET_ITEM(y, 3));
    if (is_write < 0)
        return -1;
    v = PyLong_AsLongLong(PyTuple_GET_ITEM(mctx, 1));
    if (v == -1 && PyErr_Occurred())
        return -1;
    block_bytes = (int64_t)v;
    block = addr / block_bytes;
    bkey = PyLong_FromLongLong((long long)block);
    if (bkey == NULL)
        return -1;
    home_o = PyDict_GetItemWithError(home_cache, bkey);
    if (home_o != NULL)
        Py_INCREF(home_o);
    else {
        if (PyErr_Occurred())
            goto fail;
        /* Cold block: the method computes and memoizes. */
        home_o = PyObject_CallOneArg(PyTuple_GET_ITEM(mctx, 3), bkey);
        if (home_o == NULL)
            goto fail;
    }
    v = PyLong_AsLongLong(home_o);
    if (v == -1 && PyErr_Occurred())
        goto fail;
    home = (int64_t)v;
    lock = PyDict_GetItemWithError(home_locks, bkey);
    if (lock != NULL)
        Py_INCREF(lock);
    else {
        if (PyErr_Occurred())
            goto fail;
        /* Cold block: the method creates and memoizes the Resource. */
        lock = PyObject_CallOneArg(PyTuple_GET_ITEM(mctx, 5), bkey);
        if (lock == NULL)
            goto fail;
    }

    op = PyList_New(23);
    if (op == NULL)
        goto fail;
#define SETI(idx, val)                                                  \
    do {                                                                \
        PyObject *_n = PyLong_FromLongLong((long long)(val));           \
        if (_n == NULL)                                                 \
            goto fail;                                                  \
        PyList_SET_ITEM(op, (idx), _n);                                 \
    } while (0)
#define SETO(idx, obj)                                                  \
    do {                                                                \
        PyObject *_o = (obj);                                           \
        Py_INCREF(_o);                                                  \
        PyList_SET_ITEM(op, (idx), _o);                                 \
    } while (0)
    SETO(0, Py_None);
    SETO(1, PyTuple_GET_ITEM(ctx, 0));
    SETO(2, Py_None);
    if (pid != home) {
        /* Request leg pid -> home (control message). */
        int64_t nprocs;
        v = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 2));
        if (v == -1 && PyErr_Occurred())
            goto fail;
        nprocs = (int64_t)v;
        SETO(3, PyList_GET_ITEM(routes,
                                (Py_ssize_t)(pid * nprocs + home)));
        SETO(4, PyTuple_GET_ITEM(ctx, 3));
        SETO(5, PyTuple_GET_ITEM(ctx, 5));
        SETI(7, now);
        SETI(11, is_write ? F_WR_REQ : F_RD_REQ);
    }
    else {
        SETO(3, Py_None);
        SETI(4, 0);
        SETI(5, 0);
        SETI(7, 0);
        SETI(11, is_write ? F_WR_LOCK : F_RD_LOCK);
    }
    SETI(6, 0);
    SETI(8, 0);
    SETO(9, Py_None);
    SETI(10, 0);
    SETI(12, p);
    SETO(13, ctx);
    SETO(14, pid_o);
    SETO(15, bkey);
    SETO(16, home_o);
    SETO(17, lock);
    SETO(18, Py_None);
    SETI(19, 0);
    SETI(20, 0);
    SETO(21, Py_None);
    SETI(22, 0);
#undef SETI
#undef SETO

    {
        Py_ssize_t nfree = PyList_GET_SIZE(fc->flat_free);
        if (nfree > 0) {
            v = PyLong_AsLongLong(
                PyList_GET_ITEM(fc->flat_free, nfree - 1));
            if (v == -1 && PyErr_Occurred())
                goto fail;
            opidx = (int64_t)v;
            if (PyList_SetSlice(fc->flat_free, nfree - 1, nfree,
                                NULL) < 0)
                goto fail;
            {
                int src = PyList_SetItem(fc->flat_ops,
                                         (Py_ssize_t)opidx,
                                         op);  /* steals, even on error */
                op = NULL;
                if (src < 0)
                    goto fail;
            }
        }
        else {
            opidx = (int64_t)PyList_GET_SIZE(fc->flat_ops);
            if (opidx >= ((int64_t)1 << PROC_BITS)) {
                PyErr_Format(g_simerror,
                             "too many live flat ops (%lld); see "
                             "PROC_BITS in repro.engine.core",
                             (long long)opidx);
                goto fail;
            }
            if (PyList_Append(fc->flat_ops, op) < 0)
                goto fail;
            Py_CLEAR(op);
        }
    }
    fc->fb_flat_posts += 1;
    fc->fb_flat_tx += 1;

    /* First step: the request leg's first link acquire, or the
     * home-lock attempt on a home-local miss -- same position as the
     * generator twin's first yield. */
    if (pid == home) {
        int arc = acquire_or_park(lock, ~((now << PROC_BITS) | opidx));
        if (arc < 0)
            goto fail_published;
        if (arc) {
            if (ring_append_word(fc->ring_append,
                                 (opidx << 3) | R_FLAT) < 0)
                goto fail_published;
            (*fc->ring_scheduled)++;
        }
        rc = 0;
    }
    else
        rc = flat_step_c(fc, opidx, now, resume_p, resume_value);
    goto out;

fail_published:
    rc = -1;
    goto out;
fail:
    rc = -1;
out:
    Py_XDECREF(op);
    Py_XDECREF(bkey);
    Py_XDECREF(home_o);
    Py_XDECREF(lock);
    return rc;
}

/* Wake step of a flat op (the `_flat_wake` twin).  On transaction
 * completion, *resume_p / *resume_value carry the caller resume back
 * to the run loop's drive section; otherwise *resume_p stays -1. */
static int
flat_wake_c(FlatCtx *fc, int64_t opidx, int64_t now, int64_t *resume_p,
            PyObject **resume_value)
{
    PyObject *op = PyList_GET_ITEM(fc->flat_ops, (Py_ssize_t)opidx);
    int64_t tag;
    int rc = -1;
    Py_INCREF(op);
    if (op_get_int(op, 11, &tag) < 0)
        goto out;
    switch ((int)tag) {
    case F_XMIT: {
        PyObject *legs, *shell, *value;
        int64_t legidx;
        if (flat_settle_c(fc, op, now, 0) < 0)
            goto out;
        legs = PyList_GET_ITEM(op, 2);
        if (!PyTuple_CheckExact(legs)) {
            PyErr_SetString(PyExc_TypeError,
                            "_csoa: flat-op legs is not a tuple");
            goto out;
        }
        if (op_get_int(op, 10, &legidx) < 0)
            goto out;
        legidx += 1;
        if (legidx < (int64_t)PyTuple_GET_SIZE(legs)) {
            /* Next leg starts inside this settle step. */
            PyObject *leg = PyTuple_GET_ITEM(legs, (Py_ssize_t)legidx);
            if (op_set_obj(op, 3, PyTuple_GET_ITEM(leg, 0)) < 0
                    || op_set_obj(op, 4, PyTuple_GET_ITEM(leg, 1)) < 0
                    || op_set_obj(op, 5, PyTuple_GET_ITEM(leg, 2)) < 0)
                goto out;
            if (op_set_int(op, 6, 0) < 0 || op_set_int(op, 7, now) < 0
                    || op_set_int(op, 10, legidx) < 0)
                goto out;
            rc = flat_step_c(fc, opidx, now, resume_p, resume_value);
            goto out;
        }
        /* Done: mirror `_finish` -- unblock, recycle, succeed the
         * shell (its K_EVENT dispatch is the trailing parity event).
         * The _blocked decrement batches with the other simulator
         * counters (nothing reads it until the loop exits). */
        fc->fb_blocked -= 1;
        shell = PyList_GET_ITEM(op, 0);
        value = PyList_GET_ITEM(op, 9);
        Py_INCREF(shell);
        Py_INCREF(value);
        Py_INCREF(Py_None);
        if (PyList_SetItem(fc->flat_ops, (Py_ssize_t)opidx,
                           Py_None) < 0
                || list_append_int(fc->flat_free, opidx) < 0) {
            Py_DECREF(shell);
            Py_DECREF(value);
            goto out;
        }
        {
            int src = event_succeed_c(fc, shell, value);
            Py_DECREF(shell);
            Py_DECREF(value);
            if (src < 0)
                goto out;
        }
        rc = 0;
        goto out;
    }
    case F_RD_REQ:
    case F_WR_REQ: {
        int arc;
        if (flat_settle_c(fc, op, now, 1) < 0)
            goto out;
        if (op_set_int(op, 11, tag == F_RD_REQ ? F_RD_LOCK
                                               : F_WR_LOCK) < 0)
            goto out;
        arc = acquire_or_park(PyList_GET_ITEM(op, 17),
                              ~((now << PROC_BITS) | opidx));
        if (arc < 0)
            goto out;
        if (arc) {
            if (ring_append_word(fc->ring_append,
                                 (opidx << 3) | R_FLAT) < 0)
                goto out;
            (*fc->ring_scheduled)++;
        }
        rc = 0;
        goto out;
    }
    case F_RD_MEM: {
        int64_t home, pid;
        if (release_held(PyList_GET_ITEM(op, 17)) < 0)
            goto out;
        if (op_get_int(op, 16, &home) < 0
                || op_get_int(op, 14, &pid) < 0)
            goto out;
        if (home != pid)
            rc = flat_leg_c(fc, opidx, op, home, pid, 1, F_RD_DATA,
                            now, resume_p, resume_value);
        else
            rc = flat_done_c(fc, opidx, op, resume_p, resume_value);
        goto out;
    }
    case F_RD_FWD: {
        PyObject *ctx = PyList_GET_ITEM(op, 13);
        int64_t hit, svc;
        long long h;
        if (flat_settle_c(fc, op, now, 1) < 0)
            goto out;
        if (release_held(PyList_GET_ITEM(op, 17)) < 0)
            goto out;
        h = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 8));
        if (h == -1 && PyErr_Occurred())
            goto out;
        hit = (int64_t)h;
        if (op_get_int(op, 20, &svc) < 0
                || op_set_int(op, 20, svc + hit) < 0)
            goto out;
        if (op_set_int(op, 11, F_RD_HIT) < 0)
            goto out;
        rc = flat_heap_row(fc, now + hit, opidx);
        goto out;
    }
    case F_RD_HIT:
    case F_WR_HIT: {
        int64_t source, pid;
        if (get_int_attr(PyList_GET_ITEM(op, 18), s_source,
                         &source) < 0
                || op_get_int(op, 14, &pid) < 0)
            goto out;
        rc = flat_leg_c(fc, opidx, op, source, pid, 1,
                        tag == F_RD_HIT ? F_RD_DATA : F_WR_DATA, now,
                        resume_p, resume_value);
        goto out;
    }
    case F_RD_DATA: {
        PyObject *plan = PyList_GET_ITEM(op, 18);
        PyObject *a;
        int truth;
        if (flat_settle_c(fc, op, now, 1) < 0)
            goto out;
        a = PyObject_GetAttr(plan, s_from_memory);
        if (a == NULL)
            goto out;
        truth = PyObject_IsTrue(a);
        Py_DECREF(a);
        if (truth < 0)
            goto out;
        if (!truth) {
            a = PyObject_GetAttr(plan, s_sharing_writeback);
            if (a == NULL)
                goto out;
            truth = PyObject_IsTrue(a);
            Py_DECREF(a);
            if (truth < 0)
                goto out;
            if (truth) {
                int64_t source, home;
                if (get_int_attr(plan, s_source, &source) < 0
                        || op_get_int(op, 16, &home) < 0)
                    goto out;
                if (source != home) {
                    /* Illinois sharing writeback, off the critical
                     * path: posted as its own flat op. */
                    PyObject *ctx = PyList_GET_ITEM(op, 13);
                    PyObject *srco = PyLong_FromLongLong(
                        (long long)source);
                    PyObject *r = NULL;
                    if (srco != NULL) {
                        r = PyObject_CallMethodObjArgs(
                            PyList_GET_ITEM(op, 1), s_post_fast, srco,
                            PyList_GET_ITEM(op, 16),
                            PyTuple_GET_ITEM(ctx, 4), s_shwb, NULL);
                        Py_DECREF(srco);
                    }
                    if (r == NULL)
                        goto out;
                    Py_DECREF(r);
                }
            }
        }
        rc = flat_done_c(fc, opidx, op, resume_p, resume_value);
        goto out;
    }
    case F_WR_MEM:
    case F_WR_FWD: {
        if (tag == F_WR_FWD && flat_settle_c(fc, op, now, 1) < 0)
            goto out;
        if (PyList_GET_ITEM(op, 21) != Py_None) {
            /* Invalidation join: all_of construction and the parked
             * wait live in Python. */
            rc = call_wr_join(fc, opidx, op);
            goto out;
        }
        rc = flat_wr_unlock_c(fc, opidx, op, now, resume_p,
                              resume_value);
        goto out;
    }
    case F_WR_GRANT:
    case F_WR_DATA:
        if (flat_settle_c(fc, op, now, 1) < 0)
            goto out;
        rc = flat_done_c(fc, opidx, op, resume_p, resume_value);
        goto out;
    default:
        /* Unknown tag: the Python twin decides (and raises). */
        rc = call_bound_i(fc->flat_wake_py, opidx);
        goto out;
    }
out:
    Py_DECREF(op);
    return rc;
}

/* -- the run loop -------------------------------------------------------- */

static PyObject *
csoa_run_fast(PyObject *module, PyObject *sim)
{
    PyObject *heap = NULL, *ring = NULL, *freelist = NULL, *c_meta = NULL,
        *payload = NULL, *sends = NULL;
    PyObject *ring_popleft = NULL, *ring_append = NULL, *compact_m = NULL,
        *finish_m = NULL, *crash_m = NULL, *flat_wake_m = NULL,
        *flat_step_m = NULL, *handle_yield_m = NULL, *throw_m = NULL,
        *execute_word_m = NULL;
    PyObject *flat_ops = NULL, *flat_free = NULL, *flat_wr_join_m = NULL;
    PyObject *mctx = NULL, *mctx_trans = NULL;  /* borrowed from mctx */
    PyObject *result = NULL;
    FlatCtx fc = {0};
    int64_t now;
    int64_t executed = 0, ring_executed = 0, ring_scheduled = 0,
        recycled = 0;
    int rc = -1;  /* -1 error, 0 handoff, 1 done */

    if (!g_configured) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_csoa.configure() has not been called");
        return NULL;
    }

    heap = PyObject_GetAttr(sim, s_heap);
    ring = PyObject_GetAttr(sim, s_ring);
    freelist = PyObject_GetAttr(sim, s_free);
    c_meta = PyObject_GetAttr(sim, s_c_meta);
    payload = PyObject_GetAttr(sim, s_payload);
    sends = PyObject_GetAttr(sim, s_sends);
    if (heap == NULL || ring == NULL || freelist == NULL || c_meta == NULL
            || payload == NULL || sends == NULL)
        goto cleanup;
    if (!PyList_CheckExact(heap) || !PyList_CheckExact(freelist)
            || !PyList_CheckExact(payload) || !PyList_CheckExact(sends)) {
        PyErr_SetString(PyExc_TypeError,
                        "_csoa.run_fast: kernel containers are not lists");
        goto cleanup;
    }
    ring_popleft = PyObject_GetAttr(ring, s_popleft);
    ring_append = PyObject_GetAttr(ring, s_append);
    compact_m = PyObject_GetAttr(sim, s_compact);
    finish_m = PyObject_GetAttr(sim, s_finish);
    crash_m = PyObject_GetAttr(sim, s_crash);
    flat_wake_m = PyObject_GetAttr(sim, s_flat_wake);
    flat_step_m = PyObject_GetAttr(sim, s_flat_step);
    handle_yield_m = PyObject_GetAttr(sim, s_handle_yield);
    throw_m = PyObject_GetAttr(sim, s_throw);
    execute_word_m = PyObject_GetAttr(sim, s_execute_word);
    flat_ops = PyObject_GetAttr(sim, s_flat_ops);
    flat_free = PyObject_GetAttr(sim, s_flat_free);
    flat_wr_join_m = PyObject_GetAttr(sim, s_flat_wr_join);
    if (ring_popleft == NULL || ring_append == NULL || compact_m == NULL
            || finish_m == NULL || crash_m == NULL || flat_wake_m == NULL
            || flat_step_m == NULL || handle_yield_m == NULL
            || throw_m == NULL || execute_word_m == NULL
            || flat_ops == NULL || flat_free == NULL
            || flat_wr_join_m == NULL)
        goto cleanup;
    if (!PyList_CheckExact(flat_ops) || !PyList_CheckExact(flat_free)) {
        PyErr_SetString(PyExc_TypeError,
                        "_csoa.run_fast: flat-op tables are not lists");
        goto cleanup;
    }
    fc.sim = sim;
    fc.heap = heap;
    fc.c_meta = c_meta;
    fc.flat_ops = flat_ops;
    fc.flat_free = flat_free;
    fc.ring_append = ring_append;
    fc.compact_m = compact_m;
    fc.flat_step_py = flat_step_m;
    fc.flat_wake_py = flat_wake_m;
    fc.payload = payload;
    fc.freelist = freelist;
    fc.flat_wr_join_py = flat_wr_join_m;
    fc.ring_scheduled = &ring_scheduled;
    fc.recycled = &recycled;
    /* The machine's native-transaction registration (None when the
     * run has no flat-capable machine). */
    mctx = PyObject_GetAttr(sim, s_flat_mctx);
    if (mctx == NULL)
        goto cleanup;
    if (PyTuple_CheckExact(mctx) && PyTuple_GET_SIZE(mctx) == 7)
        mctx_trans = PyTuple_GET_ITEM(mctx, 0);

    if (get_int_attr(sim, s_now, &now) < 0) {
        /* Clock already past int64: run on the pure-Python loop. */
        PyErr_Clear();
        rc = 0;
        goto flush;
    }

    for (;;) {
        int have_key = 0;
        int64_t key = 0, at = 0;
        int64_t p = -1;
        PyObject *value = NULL;  /* owned once set */

        /* -- pop: decode one event into (p, value) -------------------- */
        if (PyList_GET_SIZE(heap) > 0) {
            PyObject *key_obj = PyList_GET_ITEM(heap, 0);  /* borrowed */
            int overflow = 0;
            long long k = PyLong_AsLongLongAndOverflow(key_obj, &overflow);
            if (overflow || (k == -1 && PyErr_Occurred())) {
                /* Key beyond int64: hand off to the Python loop. */
                PyErr_Clear();
                rc = 0;
                goto flush;
            }
            key = (int64_t)k;
            at = key >> ROW_BITS;
            if (at <= now) {
                PyObject *popped;
                if (at < now) {
                    PyErr_Format(g_simerror,
                                 "time went backwards: %lld < %lld",
                                 (long long)at, (long long)now);
                    goto cleanup_flush;
                }
                popped = heap_pop_native(heap);
                if (popped == NULL)
                    goto cleanup_flush;
                Py_DECREF(popped);
                have_key = 1;
            }
            else {
                Py_ssize_t rn = PyObject_Size(ring);
                if (rn < 0)
                    goto cleanup_flush;
                if (rn == 0) {
                    PyObject *popped = heap_pop_native(heap);
                    if (popped == NULL)
                        goto cleanup_flush;
                    Py_DECREF(popped);
                    now = at;
                    if (set_int_attr(sim, s_now, now) < 0)
                        goto cleanup_flush;
                    have_key = 1;
                }
                /* else: drain the ring first (have_key stays 0). */
            }
        }
        else {
            Py_ssize_t rn = PyObject_Size(ring);
            if (rn < 0)
                goto cleanup_flush;
            if (rn == 0) {
                rc = 1;  /* drained */
                goto flush;
            }
        }
        executed++;

        if (have_key) {
            /* Heap row: sleeps, flat-op wakes, legacy callables. */
            int64_t row = key & ROW_MASK;
            int64_t meta;
            int kind;
            if (list_append_int(freelist, row) < 0)
                goto cleanup_flush;
            if (seq_get_int(c_meta, row, &meta) < 0)
                goto cleanup_flush;
            kind = (int)(meta & 7);
            if (kind == K_RESUME_NONE) {
                p = meta >> 3;
                Py_INCREF(Py_None);
                value = Py_None;
            }
            else if (kind == K_FLAT) {
                /* Native flat-op wake.  A completed transaction hands
                 * back (caller, result): fall through to the drive
                 * section, which is `_advance` without the interpreter
                 * round-trip. */
                int64_t rp = -1;
                PyObject *rv = NULL;
                if (flat_wake_c(&fc, meta >> 3, now, &rp, &rv) < 0)
                    goto cleanup_flush;
                if (rp < 0)
                    continue;
                p = rp;
                value = rv;
            }
            else {  /* K_CALL */
                PyObject *action = PyList_GET_ITEM(payload, row);
                PyObject *r;
                Py_INCREF(action);
                if (payload_clear(payload, row) < 0) {
                    Py_DECREF(action);
                    goto cleanup_flush;
                }
                r = PyObject_CallNoArgs(action);
                Py_DECREF(action);
                if (r == NULL)
                    goto cleanup_flush;
                Py_DECREF(r);
                continue;
            }
        }
        else {
            PyObject *word_obj = PyObject_CallNoArgs(ring_popleft);
            int overflow = 0;
            long long e;
            if (word_obj == NULL)
                goto cleanup_flush;
            ring_executed++;
            e = PyLong_AsLongLongAndOverflow(word_obj, &overflow);
            if (overflow || (e == -1 && PyErr_Occurred())) {
                /* Oversized word (huge _R_VAL wait): method-form twin. */
                PyObject *r;
                PyErr_Clear();
                r = PyObject_CallOneArg(execute_word_m, word_obj);
                Py_DECREF(word_obj);
                if (r == NULL)
                    goto cleanup_flush;
                Py_DECREF(r);
                continue;
            }
            Py_DECREF(word_obj);
            if (e & 1) {
                /* Packed resume word: no row, pure decode. */
                int tag = (int)(e & 7);
                if (tag == R_NONE) {
                    p = e >> 3;
                    Py_INCREF(Py_None);
                    value = Py_None;
                }
                else if (tag == R_ZERO) {
                    p = e >> 3;
                    value = PyLong_FromLong(0);
                    if (value == NULL)
                        goto cleanup_flush;
                }
                else if (tag == R_VAL) {
                    p = (e >> 3) & PROC_MASK;
                    value = PyLong_FromLongLong((long long)(e >> VAL_SHIFT));
                    if (value == NULL)
                        goto cleanup_flush;
                }
                else {  /* R_FLAT */
                    /* Granted link/lock step; a home-local write can
                     * complete in the plan step, falling through to
                     * the drive section with the caller's resume. */
                    int64_t rp = -1;
                    PyObject *rv = NULL;
                    if (flat_step_c(&fc, e >> 3, now, &rp, &rv) < 0)
                        goto cleanup_flush;
                    if (rp < 0)
                        continue;
                    p = rp;
                    value = rv;
                }
            }
            else {
                /* Payload row on the ring. */
                int64_t row = e >> 1;
                int64_t meta;
                int kind;
                if (list_append_int(freelist, row) < 0)
                    goto cleanup_flush;
                if (seq_get_int(c_meta, row, &meta) < 0)
                    goto cleanup_flush;
                kind = (int)(meta & 7);
                if (kind == K_EVENT) {
                    PyObject *ev = PyList_GET_ITEM(payload, row);
                    PyObject *callbacks;
                    int inlined = 0;
                    Py_INCREF(ev);
                    if (payload_clear(payload, row) < 0) {
                        Py_DECREF(ev);
                        goto cleanup_flush;
                    }
                    callbacks = PyObject_GetAttr(ev, s_callbacks);
                    if (callbacks == NULL) {
                        Py_DECREF(ev);
                        goto cleanup_flush;
                    }
                    if (PyList_CheckExact(callbacks)
                            && PyList_GET_SIZE(callbacks) == 0) {
                        /* No waiters (fire-and-forget transmit
                         * shells): _dispatch only marks the event
                         * dispatched. */
                        int src = PyObject_SetAttr(ev, s_callbacks,
                                                   Py_None);
                        Py_DECREF(callbacks);
                        Py_DECREF(ev);
                        if (src < 0)
                            goto cleanup_flush;
                        continue;
                    }
                    if (PyList_CheckExact(callbacks)
                            && PyList_GET_SIZE(callbacks) == 1
                            && PyLong_CheckExact(
                                   PyList_GET_ITEM(callbacks, 0))) {
                        PyObject *exc = PyObject_GetAttr(ev, s_exception);
                        if (exc == NULL) {
                            Py_DECREF(callbacks);
                            Py_DECREF(ev);
                            goto cleanup_flush;
                        }
                        if (exc == Py_None) {
                            /* Sole waiter is a process: resume it
                             * inside this dispatch event.  Extract the
                             * index before clearing _callbacks. */
                            long long wp = PyLong_AsLongLong(
                                PyList_GET_ITEM(callbacks, 0));
                            if (wp == -1 && PyErr_Occurred()) {
                                PyErr_Clear();  /* absurd; dispatch */
                            }
                            else if (wp >= 0) {
                                if (PyObject_SetAttr(ev, s_callbacks,
                                                     Py_None) < 0) {
                                    Py_DECREF(exc);
                                    Py_DECREF(callbacks);
                                    Py_DECREF(ev);
                                    goto cleanup_flush;
                                }
                                value = PyObject_GetAttr(ev, s_value);
                                if (value == NULL) {
                                    Py_DECREF(exc);
                                    Py_DECREF(callbacks);
                                    Py_DECREF(ev);
                                    goto cleanup_flush;
                                }
                                p = (int64_t)wp;
                                inlined = 1;
                            }
                        }
                        Py_DECREF(exc);
                    }
                    Py_DECREF(callbacks);
                    if (!inlined) {
                        PyObject *r =
                            PyObject_CallMethodNoArgs(ev, s_dispatch);
                        Py_DECREF(ev);
                        if (r == NULL)
                            goto cleanup_flush;
                        Py_DECREF(r);
                        continue;
                    }
                    Py_DECREF(ev);
                }
                else if (kind == K_EVWAIT) {
                    PyObject *ev = PyList_GET_ITEM(payload, row);
                    PyObject *exc;
                    Py_INCREF(ev);
                    if (payload_clear(payload, row) < 0) {
                        Py_DECREF(ev);
                        goto cleanup_flush;
                    }
                    exc = PyObject_GetAttr(ev, s_exception);
                    if (exc == NULL) {
                        Py_DECREF(ev);
                        goto cleanup_flush;
                    }
                    if (exc != Py_None) {
                        int trc = call_bound_io(throw_m, meta >> 3, exc);
                        Py_DECREF(exc);
                        Py_DECREF(ev);
                        if (trc < 0)
                            goto cleanup_flush;
                        continue;
                    }
                    Py_DECREF(exc);
                    p = meta >> 3;
                    value = PyObject_GetAttr(ev, s_value);
                    Py_DECREF(ev);
                    if (value == NULL)
                        goto cleanup_flush;
                }
                else {  /* K_CALL */
                    PyObject *action = PyList_GET_ITEM(payload, row);
                    PyObject *r;
                    Py_INCREF(action);
                    if (payload_clear(payload, row) < 0) {
                        Py_DECREF(action);
                        goto cleanup_flush;
                    }
                    r = PyObject_CallNoArgs(action);
                    Py_DECREF(action);
                    if (r == NULL)
                        goto cleanup_flush;
                    Py_DECREF(r);
                    continue;
                }
            }
        }

        /* -- drive: resume the generator, handle its yield ------------ */
drive:
        {
            PyObject *send = PyList_GET_ITEM(sends, (Py_ssize_t)p);
            PyObject *y;
            Py_INCREF(send);
            y = PyObject_CallOneArg(send, value);
            Py_DECREF(send);
            Py_DECREF(value);
            value = NULL;
            if (y == NULL) {
                if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                    PyObject *etype, *evalue, *etb, *retval;
                    int frc;
                    PyErr_Fetch(&etype, &evalue, &etb);
                    PyErr_NormalizeException(&etype, &evalue, &etb);
                    retval = evalue ? PyObject_GetAttr(evalue, s_value)
                                    : NULL;
                    if (retval == NULL) {
                        PyErr_Clear();
                        Py_INCREF(Py_None);
                        retval = Py_None;
                    }
                    Py_XDECREF(etype);
                    Py_XDECREF(evalue);
                    Py_XDECREF(etb);
                    frc = call_bound_io(finish_m, p, retval);
                    Py_DECREF(retval);
                    if (frc < 0)
                        goto cleanup_flush;
                    continue;
                }
                else {
                    /* Any other exception: mirror `self._crash(p, exc)`
                     * (which re-raises under fail_fast). */
                    PyObject *etype, *evalue, *etb;
                    int crc;
                    PyErr_Fetch(&etype, &evalue, &etb);
                    PyErr_NormalizeException(&etype, &evalue, &etb);
                    if (evalue == NULL) {
                        PyErr_Restore(etype, evalue, etb);
                        goto cleanup_flush;
                    }
                    if (etb != NULL)
                        PyException_SetTraceback(evalue, etb);
                    crc = call_bound_io(crash_m, p, evalue);
                    Py_XDECREF(etype);
                    Py_XDECREF(evalue);
                    Py_XDECREF(etb);
                    if (crc < 0)
                        goto cleanup_flush;
                    continue;
                }
            }
            if (PyLong_CheckExact(y)) {
                int overflow = 0;
                long long yv = PyLong_AsLongLongAndOverflow(y, &overflow);
                if (overflow || yv < 0 || (yv > 0 && now + yv > MAX_AT)) {
                    /* Negative delays raise there; oversized delays
                     * push arbitrary-precision heap keys there. */
                    int hrc = call_bound_io(handle_yield_m, p, y);
                    Py_DECREF(y);
                    if (hrc < 0)
                        goto cleanup_flush;
                    continue;
                }
                if (yv > 0) {
                    /* Plain sleep: future heap row. */
                    int64_t row = alloc_top_row(sim, compact_m);
                    PyObject *keyo;
                    int prc;
                    if (row < 0) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    if (seq_set_int(c_meta, row, p << 3) < 0) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    keyo = PyLong_FromLongLong(
                        (long long)(((now + yv) << ROW_BITS) | row));
                    if (keyo == NULL) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    prc = heap_push_native(heap, keyo);
                    Py_DECREF(keyo);
                    Py_DECREF(y);
                    if (prc < 0)
                        goto cleanup_flush;
                    continue;
                }
                /* Zero-delay: same-time redispatch via the ring. */
                Py_DECREF(y);
                if (ring_append_word(ring_append, (p << 3) | R_NONE) < 0)
                    goto cleanup_flush;
                ring_scheduled++;
                continue;
            }
            if (PyTuple_CheckExact(y) && PyTuple_GET_SIZE(y) == 4) {
                /* `yield (transact_flat, pid, addr, is_write)`: a
                 * deferred flat-transaction request.  The registered
                 * callable builds natively; any other callable is
                 * invoked like the Python twins do and must return
                 * FLAT_TX. */
                if (mctx_trans != NULL
                        && PyTuple_GET_ITEM(y, 0) == mctx_trans) {
                    int64_t rp = -1;
                    PyObject *rv = NULL;
                    int nrc = flat_tx_native(&fc, mctx, y, p, now,
                                             &rp, &rv);
                    Py_DECREF(y);
                    if (nrc < 0)
                        goto cleanup_flush;
                    if (rp >= 0) {  /* defensive; cannot finish */
                        p = rp;
                        value = rv;
                        goto drive;
                    }
                    continue;
                }
                {
                    PyObject *r = PyObject_CallFunctionObjArgs(
                        PyTuple_GET_ITEM(y, 0), PyTuple_GET_ITEM(y, 1),
                        PyTuple_GET_ITEM(y, 2), PyTuple_GET_ITEM(y, 3),
                        NULL);
                    Py_DECREF(y);
                    if (r == NULL)
                        goto cleanup_flush;
                    if (r != g_flat_tx) {
                        Py_DECREF(r);
                        PyErr_SetString(g_simerror,
                                        "deferred-call tuple did not "
                                        "start a flat transaction");
                        goto cleanup_flush;
                    }
                    y = r;  /* falls into the FLAT_TX branch below */
                }
            }
            if (y == g_flat_tx) {
                /* `yield FLAT_TX`: record the caller in the freshly
                 * built op's waiter slot, then run the op's first
                 * step natively -- the request leg's first link, or
                 * the home-lock attempt on a home-local miss. */
                int64_t pending;
                PyObject *fop;
                Py_DECREF(y);
                if (get_int_attr(sim, s_pending_flat_op, &pending) < 0)
                    goto cleanup_flush;
                if (pending < 0
                        || pending >= (int64_t)PyList_GET_SIZE(flat_ops)) {
                    PyErr_SetString(g_simerror,
                                    "FLAT_TX yielded with no pending "
                                    "flat op");
                    goto cleanup_flush;
                }
                fop = PyList_GET_ITEM(flat_ops, (Py_ssize_t)pending);
                if (op_set_int(fop, 12, p) < 0)
                    goto cleanup_flush;
                if (PyList_GET_ITEM(fop, 3) == Py_None) {
                    int arc = acquire_or_park(
                        PyList_GET_ITEM(fop, 17),
                        ~((now << PROC_BITS) | pending));
                    if (arc < 0)
                        goto cleanup_flush;
                    if (arc) {
                        if (ring_append_word(
                                ring_append,
                                (pending << 3) | R_FLAT) < 0)
                            goto cleanup_flush;
                        ring_scheduled++;
                    }
                }
                else {
                    int64_t rp = -1;
                    PyObject *rv = NULL;
                    if (flat_step_c(&fc, pending, now, &rp, &rv) < 0)
                        goto cleanup_flush;
                    if (rp >= 0) {  /* defensive; a leg cannot finish */
                        p = rp;
                        value = rv;
                        goto drive;
                    }
                }
                continue;
            }
            {
                int isacq = PyObject_IsInstance(y, g_acquirable);
                if (isacq < 0) {
                    Py_DECREF(y);
                    goto cleanup_flush;
                }
                if (isacq) {
                    /* `yield resource`: inlined try_acquire, else park
                     * as a packed (wait_start << PROC_BITS) | p int. */
                    int64_t in_use, capacity, grants;
                    PyObject *waiters;
                    Py_ssize_t wn;
                    if (get_int_attr(y, s_in_use, &in_use) < 0
                            || get_int_attr(y, s_capacity, &capacity) < 0) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    waiters = PyObject_GetAttr(y, s_waiters);
                    if (waiters == NULL) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    wn = PyObject_Size(waiters);
                    if (wn < 0) {
                        Py_DECREF(waiters);
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    if (in_use < capacity && wn == 0) {
                        if (set_int_attr(y, s_in_use, in_use + 1) < 0
                                || get_int_attr(y, s_grants, &grants) < 0
                                || set_int_attr(y, s_grants,
                                                grants + 1) < 0) {
                            Py_DECREF(waiters);
                            Py_DECREF(y);
                            goto cleanup_flush;
                        }
                        Py_DECREF(waiters);
                        Py_DECREF(y);
                        if (ring_append_word(ring_append,
                                             (p << 3) | R_ZERO) < 0)
                            goto cleanup_flush;
                        ring_scheduled++;
                        continue;
                    }
                    else {
                        PyObject *packed = PyLong_FromLongLong(
                            (long long)((now << PROC_BITS) | p));
                        PyObject *r = NULL;
                        if (packed != NULL) {
                            r = PyObject_CallMethodOneArg(waiters, s_append,
                                                          packed);
                            Py_DECREF(packed);
                        }
                        Py_DECREF(waiters);
                        Py_DECREF(y);
                        if (r == NULL)
                            goto cleanup_flush;
                        Py_DECREF(r);
                        continue;
                    }
                }
            }
            {
                int isev = PyObject_IsInstance(y, g_event);
                if (isev < 0) {
                    Py_DECREF(y);
                    goto cleanup_flush;
                }
                if (isev) {
                    PyObject *callbacks = PyObject_GetAttr(y, s_callbacks);
                    if (callbacks == NULL) {
                        Py_DECREF(y);
                        goto cleanup_flush;
                    }
                    if (callbacks == Py_None) {
                        /* Already dispatched: K_EVWAIT row, recycled
                         * from the free list when possible. */
                        int64_t row;
                        Py_ssize_t fn = PyList_GET_SIZE(freelist);
                        Py_DECREF(callbacks);
                        if (fn > 0) {
                            long long rv = PyLong_AsLongLong(
                                PyList_GET_ITEM(freelist, fn - 1));
                            if (rv == -1 && PyErr_Occurred()) {
                                Py_DECREF(y);
                                goto cleanup_flush;
                            }
                            if (PyList_SetSlice(freelist, fn - 1, fn,
                                                NULL) < 0) {
                                Py_DECREF(y);
                                goto cleanup_flush;
                            }
                            row = (int64_t)rv;
                            recycled++;
                        }
                        else {
                            row = alloc_top_row(sim, compact_m);
                            if (row < 0) {
                                Py_DECREF(y);
                                goto cleanup_flush;
                            }
                        }
                        if (seq_set_int(c_meta, row,
                                        (p << 3) | K_EVWAIT) < 0) {
                            Py_DECREF(y);
                            goto cleanup_flush;
                        }
                        /* payload[row] = y (list takes our ref). */
                        if (PyList_SetItem(payload, (Py_ssize_t)row,
                                           y) < 0) {
                            goto cleanup_flush;
                        }
                        if (ring_append_word(ring_append, row << 1) < 0)
                            goto cleanup_flush;
                        ring_scheduled++;
                        continue;
                    }
                    else {
                        PyObject *pnum = PyLong_FromLongLong((long long)p);
                        int arc = -1;
                        if (pnum != NULL) {
                            if (PyList_CheckExact(callbacks)) {
                                arc = PyList_Append(callbacks, pnum);
                            }
                            else {
                                PyObject *r = PyObject_CallMethodOneArg(
                                    callbacks, s_append, pnum);
                                arc = (r == NULL) ? -1 : 0;
                                Py_XDECREF(r);
                            }
                            Py_DECREF(pnum);
                        }
                        Py_DECREF(callbacks);
                        Py_DECREF(y);
                        if (arc < 0)
                            goto cleanup_flush;
                        continue;
                    }
                }
            }
            if (y == g_turn) {
                Py_DECREF(y);
                if (ring_append_word(ring_append, (p << 3) | R_ZERO) < 0)
                    goto cleanup_flush;
                ring_scheduled++;
                continue;
            }
            /* Unknown yield: _handle_yield raises with the process
             * name, after the same _blocked bookkeeping. */
            {
                int hrc = call_bound_io(handle_yield_m, p, y);
                Py_DECREF(y);
                if (hrc < 0)
                    goto cleanup_flush;
                continue;
            }
        }
    }

flush:
    if (flat_flush_counters(&fc) < 0)
        goto cleanup;
    if (flush_counters(sim, executed, ring_executed, ring_scheduled,
                       recycled) < 0)
        goto cleanup;
    result = PyLong_FromLong(rc);
    goto cleanup;

cleanup_flush:
    /* Error exit: flush counters while preserving the exception. */
    {
        PyObject *etype, *evalue, *etb;
        PyErr_Fetch(&etype, &evalue, &etb);
        if (flat_flush_counters(&fc) < 0)
            PyErr_Clear();
        if (flush_counters(sim, executed, ring_executed, ring_scheduled,
                           recycled) < 0)
            PyErr_Clear();
        PyErr_Restore(etype, evalue, etb);
    }

cleanup:
    Py_XDECREF(fc.fabric);
    Py_XDECREF(mctx);
    Py_XDECREF(heap);
    Py_XDECREF(ring);
    Py_XDECREF(freelist);
    Py_XDECREF(c_meta);
    Py_XDECREF(payload);
    Py_XDECREF(sends);
    Py_XDECREF(ring_popleft);
    Py_XDECREF(ring_append);
    Py_XDECREF(compact_m);
    Py_XDECREF(finish_m);
    Py_XDECREF(crash_m);
    Py_XDECREF(flat_wake_m);
    Py_XDECREF(flat_step_m);
    Py_XDECREF(handle_yield_m);
    Py_XDECREF(throw_m);
    Py_XDECREF(execute_word_m);
    Py_XDECREF(flat_ops);
    Py_XDECREF(flat_free);
    Py_XDECREF(flat_wr_join_m);
    return result;
}

/* -- module wiring ------------------------------------------------------- */

static PyObject *
csoa_configure(PyObject *module, PyObject *args)
{
    PyObject *acquirable, *event, *turn, *simerror, *flat_tx;
    if (!PyArg_ParseTuple(args, "OOOOO", &acquirable, &event, &turn,
                          &simerror, &flat_tx))
        return NULL;
    Py_INCREF(acquirable);
    Py_XDECREF(g_acquirable);
    g_acquirable = acquirable;
    Py_INCREF(event);
    Py_XDECREF(g_event);
    g_event = event;
    Py_INCREF(turn);
    Py_XDECREF(g_turn);
    g_turn = turn;
    Py_INCREF(simerror);
    Py_XDECREF(g_simerror);
    g_simerror = simerror;
    Py_INCREF(flat_tx);
    Py_XDECREF(g_flat_tx);
    g_flat_tx = flat_tx;
    g_configured = 1;
    Py_RETURN_NONE;
}

static PyMethodDef csoa_methods[] = {
    {"run_fast", csoa_run_fast, METH_O,
     "Drive the SoA event loop to completion; returns 1 when the "
     "queues drained, 0 on int64-range handoff."},
    {"configure", csoa_configure, METH_VARARGS,
     "configure(Acquirable, Event, TURN, SimulationError, FLAT_TX): "
     "inject the engine types/singletons this module dispatches on."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef csoa_module = {
    PyModuleDef_HEAD_INIT,
    "repro.engine._csoa",
    "C port of the SoA event kernel's hot loop (see module source).",
    -1,
    csoa_methods,
};

PyMODINIT_FUNC
PyInit__csoa(void)
{
    PyObject *m;
#define INTERN(var, text)                                   \
    do {                                                    \
        var = PyUnicode_InternFromString(text);             \
        if (var == NULL)                                    \
            return NULL;                                    \
    } while (0)
    INTERN(s_heap, "_heap");
    INTERN(s_ring, "_ring");
    INTERN(s_free, "_free");
    INTERN(s_c_meta, "_c_meta");
    INTERN(s_payload, "_payload");
    INTERN(s_sends, "_sends");
    INTERN(s_popleft, "popleft");
    INTERN(s_append, "append");
    INTERN(s_now, "_now");
    INTERN(s_top, "_top");
    INTERN(s_cap, "_cap");
    INTERN(s_compact, "_compact");
    INTERN(s_finish, "_finish");
    INTERN(s_crash, "_crash");
    INTERN(s_flat_wake, "_flat_wake");
    INTERN(s_flat_step, "_flat_step");
    INTERN(s_handle_yield, "_handle_yield");
    INTERN(s_throw, "_throw");
    INTERN(s_execute_word, "_execute_word");
    INTERN(s_dispatch, "_dispatch");
    INTERN(s_callbacks, "_callbacks");
    INTERN(s_exception, "_exception");
    INTERN(s_value, "value");
    INTERN(s_in_use, "in_use");
    INTERN(s_capacity, "capacity");
    INTERN(s_waiters, "_waiters");
    INTERN(s_grants, "grants");
    INTERN(s_events_executed, "events_executed");
    INTERN(s_ring_executed, "_ring_executed");
    INTERN(s_ring_scheduled, "_ring_scheduled");
    INTERN(s_rows_recycled, "_rows_recycled");
    INTERN(s_blocked, "_blocked");
    INTERN(s_succeed, "succeed");
    INTERN(s_release, "release");
    INTERN(s_messages, "messages");
    INTERN(s_bytes_carried, "bytes_carried");
    INTERN(s_busy_ns, "busy_ns");
    INTERN(s_bytes_transported, "bytes_transported");
    INTERN(s_total_latency_ns, "total_latency_ns");
    INTERN(s_total_contention_ns, "total_contention_ns");
    INTERN(s_flat_ops, "_flat_ops");
    INTERN(s_flat_free, "_flat_free");
    INTERN(s_pending_flat_op, "_pending_flat_op");
    INTERN(s_heap_row, "_heap_row");
    INTERN(s_flat_wr_join, "_flat_wr_join");
    INTERN(s_post_fast, "post_fast");
    INTERN(s_post_writeback, "_post_writeback");
    INTERN(s_source, "source");
    INTERN(s_from_memory, "from_memory");
    INTERN(s_sharing_writeback, "sharing_writeback");
    INTERN(s_had_data, "had_data");
    INTERN(s_writeback, "writeback");
    INTERN(s_shwb, "shwb");
    INTERN(s_flat_fail, "_flat_fail");
    INTERN(s_flat_wr_invs, "_flat_wr_invs");
    INTERN(s_invalidated, "invalidated");
    INTERN(s_fast, "fast");
    INTERN(s_hit, "hit");
    INTERN(s_flat_posts, "_flat_posts");
    INTERN(s_flat_tx, "flat_tx");
    INTERN(s_flat_mctx, "_flat_mctx");
    INTERN(s_triggered, "triggered");
    INTERN(s_spawn_inv, "_spawn_inv");
#undef INTERN
    m = PyModule_Create(&csoa_module);
    return m;
}
