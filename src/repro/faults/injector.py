"""Deterministic fault decisions.

:class:`FaultInjector` turns a :class:`~repro.faults.config.FaultConfig`
into per-message verdicts.  All randomness is drawn from the dedicated
fault RNG stream (:meth:`repro.engine.rng.RandomStreams.fault_stream`),
which is independent of every application stream by construction: two
runs of the same configuration inject exactly the same faults, and the
application's own random draws are identical with and without faults.

Deterministic effects (link-failure windows, node stalls) are checked
before any random draw, and no draw is made when every rate is zero --
so a window-only fault config consumes no randomness at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..engine.rng import RandomStreams
from .config import FaultConfig, LinkFailure, NodeStall


@dataclass(frozen=True)
class Fate:
    """The verdict for one message attempt."""

    #: Did the payload arrive intact?
    delivered: bool

    #: Arrived, but the receiver's checksum rejects it.
    corrupted: bool = False

    #: Extra in-network delay suffered by a delivered message.
    delay_ns: int = 0


#: The common case, shared to avoid per-message allocation.
DELIVERED = Fate(delivered=True)
DROPPED = Fate(delivered=False)
CORRUPTED = Fate(delivered=False, corrupted=True)


class FaultInjector:
    """Stateful, deterministic source of per-message fault verdicts."""

    def __init__(self, fault: FaultConfig, streams: RandomStreams,
                 topology=None):
        self.fault = fault
        self.topology = topology
        if fault.seed is not None:
            streams = RandomStreams(fault.seed)
        self._rng = streams.fault_stream()
        self._random = fault.drop_rate + fault.corrupt_rate + fault.delay_rate
        self._drop = fault.drop_rate
        self._corrupt = fault.drop_rate + fault.corrupt_rate
        self._link_windows: Dict[Tuple[int, int], List[LinkFailure]] = {}
        for window in fault.link_failures:
            self._link_windows.setdefault(
                (window.src, window.dst), []
            ).append(window)
        self._node_stalls: Dict[int, List[NodeStall]] = {}
        for stall in fault.node_stalls:
            self._node_stalls.setdefault(stall.node, []).append(stall)
        #: Instrumentation: verdicts handed out.
        self.dropped = 0
        self.corrupted = 0
        self.delayed = 0
        self.window_drops = 0
        self.stall_ns_injected = 0

    # -- deterministic effects -------------------------------------------------

    def link_down(self, src: int, dst: int, now: int) -> bool:
        """True when the directed link is inside a failure window."""
        windows = self._link_windows.get((src, dst))
        if not windows:
            return False
        return any(window.covers(now) for window in windows)

    def route_down(self, src: int, dst: int, now: int) -> bool:
        """True when any link on the route src -> dst is down.

        Used by the LogP layers, which have no per-link model: a failed
        physical link takes out every abstract message whose route the
        topology says would cross it.
        """
        if not self._link_windows or self.topology is None or src == dst:
            return False
        return any(
            self.link_down(a, b, now) for a, b in self.topology.route(src, dst)
        )

    def stall_ns(self, node: int, now: int) -> int:
        """Extra delay a network event at ``node`` suffers right now."""
        stalls = self._node_stalls.get(node)
        if not stalls:
            return 0
        delay = max(stall.stall_ns(now) for stall in stalls)
        if delay:
            self.stall_ns_injected += delay
        return delay

    # -- random verdicts -------------------------------------------------------

    def fate(self, src: int, dst: int, now: int,
             check_route: bool = False) -> Fate:
        """Verdict for one message attempt sent ``src -> dst`` at ``now``.

        ``check_route`` makes link-failure windows apply to the whole
        route (LogP layers); the target fabric instead checks each link
        as the circuit reaches it via :meth:`link_down`.
        """
        if check_route and self.route_down(src, dst, now):
            self.window_drops += 1
            return DROPPED
        if self._random <= 0.0:
            return DELIVERED
        draw = self._rng.random()
        if draw < self._drop:
            self.dropped += 1
            return DROPPED
        if draw < self._corrupt:
            self.corrupted += 1
            return CORRUPTED
        if draw < self._random:
            self.delayed += 1
            delay = int(self._rng.exponential(self.fault.delay_ns)) + 1
            return Fate(delivered=True, delay_ns=delay)
        return DELIVERED


def make_injector(fault: Optional[FaultConfig], streams: RandomStreams,
                  topology=None) -> Optional[FaultInjector]:
    """Build an injector iff the config can actually inject something."""
    if fault is None or not fault.enabled:
        return None
    return FaultInjector(fault, streams, topology=topology)
