"""Declarative fault-injection configuration.

:class:`FaultConfig` is carried by
:class:`~repro.config.SystemConfig` (field ``fault``) and consumed by
the machine models: the target machine hands it to its
:class:`~repro.network.fabric.Fabric`, the LogP machines to their
:class:`~repro.core.logp_net.LogPNetwork`.  Everything is frozen and
hashable so configurations stay usable as memo keys.

The config is *pay-for-what-you-use*: when :attr:`FaultConfig.enabled`
is false (all rates zero, no failure windows, no stalls) no injector is
built and the simulation takes exactly the fault-free code path.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class LinkFailure:
    """A transient failure window of one directed link.

    While ``start_ns <= now < end_ns`` every message routed over the
    ``src -> dst`` link is lost (and recovered by the reliable-delivery
    layer's retries).
    """

    src: int
    dst: int
    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ConfigError(
                f"link failure window [{self.start_ns}, {self.end_ns}) "
                "must be non-empty and non-negative"
            )

    def covers(self, now: int) -> bool:
        """True while the link is down at simulated time ``now``."""
        return self.start_ns <= now < self.end_ns


@dataclass(frozen=True)
class NodeStall:
    """A window during which one node stops servicing the network.

    Any message sent or received by ``node`` while the window covers
    the attempt is delayed until ``end_ns`` -- the node is frozen, not
    dead, so nothing is lost, but every in-window message pays the
    remainder of the window as recovery time.
    """

    node: int
    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ConfigError(
                f"node stall window [{self.start_ns}, {self.end_ns}) "
                "must be non-empty and non-negative"
            )

    def stall_ns(self, now: int) -> int:
        """Extra delay a network event at ``now`` suffers (0 outside)."""
        if self.start_ns <= now < self.end_ns:
            return self.end_ns - now
        return 0


@dataclass(frozen=True)
class FaultConfig:
    """Fault rates, failure windows, and the reliable-delivery policy."""

    #: Probability that a message is silently lost in the network.
    drop_rate: float = 0.0

    #: Probability that a message arrives corrupted (full transmission
    #: cost paid, payload discarded by the receiver's checksum).
    corrupt_rate: float = 0.0

    #: Probability that a delivered message suffers an extra delay.
    delay_rate: float = 0.0

    #: Mean of the (exponential) extra delay applied to delayed messages.
    delay_ns: int = 2_000

    #: Transient link-failure windows (target fabric: the named link;
    #: LogP machines: any route crossing the link, via the topology).
    link_failures: Tuple[LinkFailure, ...] = ()

    #: Node-stall windows (both network layers).
    node_stalls: Tuple[NodeStall, ...] = ()

    #: Sender timeout before the first retransmission.
    retry_timeout_ns: int = 20_000

    #: Maximum retransmissions per message before the sender gives up
    #: with a :class:`~repro.errors.RetryLimitError`.
    max_retries: int = 8

    #: Multiplier applied to the timeout after each failed attempt.
    backoff: float = 2.0

    #: Seed of the fault RNG stream.  ``None`` derives it from the
    #: machine's master seed (still on the dedicated fault stream, so
    #: application draws are never perturbed).
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.drop_rate + self.corrupt_rate + self.delay_rate > 1.0:
            raise ConfigError(
                "drop_rate + corrupt_rate + delay_rate must not exceed 1"
            )
        if self.delay_ns <= 0:
            raise ConfigError(f"delay_ns must be positive, got {self.delay_ns}")
        if self.retry_timeout_ns <= 0:
            raise ConfigError(
                f"retry_timeout_ns must be positive, got {self.retry_timeout_ns}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        for window in self.link_failures:
            if not isinstance(window, LinkFailure):
                raise ConfigError(
                    f"link_failures entries must be LinkFailure, got {window!r}"
                )
        for window in self.node_stalls:
            if not isinstance(window, NodeStall):
                raise ConfigError(
                    f"node_stalls entries must be NodeStall, got {window!r}"
                )

    # -- canonical (de)serialization (run specs, caches, checkpoints) --------

    def to_dict(self) -> Dict:
        """JSON-ready form carrying *every* field.

        Iterating the dataclass fields keeps the serialization in
        lockstep with the schema: a newly added field is serialized
        (and therefore digested) automatically.
        """
        out: Dict = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name in ("link_failures", "node_stalls"):
                value = [vars(window).copy() for window in value]
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultConfig":
        """Rebuild from :meth:`to_dict` output.

        Strict on both sides -- unknown *and* missing fields raise --
        so a payload written by a different schema version is detected
        instead of silently filling defaults.
        """
        names = {spec.name for spec in fields(cls)}
        unknown = set(data) - names
        missing = names - set(data)
        if unknown or missing:
            raise ConfigError(
                "fault config was serialized by a different schema "
                f"(unknown fields: {sorted(unknown)}, "
                f"missing fields: {sorted(missing)})"
            )
        kwargs = dict(data)
        kwargs["link_failures"] = tuple(
            LinkFailure(**window) for window in kwargs["link_failures"]
        )
        kwargs["node_stalls"] = tuple(
            NodeStall(**window) for window in kwargs["node_stalls"]
        )
        return cls(**kwargs)

    @property
    def enabled(self) -> bool:
        """True when any fault can actually occur.

        Policy knobs alone (timeouts, retry caps, seeds) do not enable
        the machinery: a config with every rate at zero and no windows
        is inert and the simulation must be bit-identical to one built
        without a fault config at all.
        """
        return bool(
            self.drop_rate > 0.0
            or self.corrupt_rate > 0.0
            or self.delay_rate > 0.0
            or self.link_failures
            or self.node_stalls
        )
