"""Sender-side reliable delivery over an unreliable fabric.

A minimal ARQ protocol: every data message is acknowledged by an
8-byte-class control message; the sender retransmits after a timeout
that backs off exponentially, gives up after ``max_retries``
retransmissions with a :class:`~repro.errors.RetryLimitError`, and the
receiver suppresses duplicates (a retransmission that races a lost ack)
by per-channel sequence numbers.

Cost accounting follows the SPASM philosophy of separating overheads:
the *successful* transmission keeps its ordinary latency/contention
split, and everything else -- failed attempts, backoff waits, acks,
duplicate retransmissions, fault-injected delays and stalls -- is
reported as ``retry_ns``, which the machine models charge to the
``retry_ns`` overhead bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import RetryLimitError
from ..network.fabric import TransferResult
from ..network.message import Message


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff/cap parameters of the ARQ sender."""

    timeout_ns: int
    max_retries: int
    backoff: float

    @classmethod
    def from_fault(cls, fault) -> "RetryPolicy":
        """Derive the policy from a :class:`~repro.faults.config.FaultConfig`."""
        return cls(
            timeout_ns=fault.retry_timeout_ns,
            max_retries=fault.max_retries,
            backoff=fault.backoff,
        )

    def backoff_ns(self, failed_attempts: int) -> int:
        """Wait before the retransmission following ``failed_attempts``."""
        return int(self.timeout_ns * self.backoff ** (failed_attempts - 1))


class ReliableTransport:
    """ARQ sender over a :class:`~repro.network.fabric.Fabric`."""

    def __init__(self, fabric, injector, policy: RetryPolicy,
                 ack_bytes: int = 8, checkers=None):
        self.fabric = fabric
        self.injector = injector
        self.policy = policy
        self.ack_bytes = ack_bytes
        #: Sanitizer checkers observing the ARQ exchange lifecycle
        #: (empty tuple when unchecked).  Raw fabric messages are
        #: observed by the fabric itself; these hooks see the *logical*
        #: send/accept/complete events the exactly-once invariant is
        #: stated over.
        self._arq_checkers = (
            checkers.arq_checkers if checkers is not None else ()
        )
        self._next_seq: Dict[Tuple[int, int], int] = {}
        #: Retransmitted data messages (instrumentation).
        self.retransmissions = 0
        #: Acks transmitted by receivers.
        self.acks_sent = 0
        #: Acks lost in the network (each forces a duplicate data send).
        self.acks_lost = 0
        #: Duplicate data deliveries suppressed by the receiver.
        self.duplicates_suppressed = 0

    def transmit(self, message: Message):
        """Generator: deliver ``message`` reliably.

        Returns a :class:`~repro.network.fabric.TransferResult` whose
        latency/contention are those of the first successful delivery
        and whose ``retry_ns`` is every other nanosecond the exchange
        took.

        :raises RetryLimitError: the retry cap was exhausted.
        """
        sim = self.fabric.sim
        policy = self.policy
        arq_checkers = self._arq_checkers
        start = sim.now
        channel = (message.src, message.dst)
        self._next_seq[channel] = self._next_seq.get(channel, 0) + 1
        delivered = False
        base_latency = 0
        base_contention = 0
        failed_attempts = 0
        for checker in arq_checkers:
            checker.on_logical_send(start, message.src, message.dst)
        while True:
            result = yield from self.fabric.transmit(message)
            if result.delivered:
                for checker in arq_checkers:
                    checker.on_app_delivery(
                        sim.now, message.src, message.dst, delivered
                    )
                if delivered:
                    # A retransmission racing a lost ack: the receiver
                    # recognizes the sequence number and discards it.
                    self.duplicates_suppressed += 1
                else:
                    delivered = True
                    base_latency = result.latency_ns
                    base_contention = result.contention_ns
                # The receiver (re-)acks every intact copy it sees.
                ack = Message(
                    message.dst, message.src, self.ack_bytes, "ack"
                )
                ack_result = yield from self.fabric.transmit(ack)
                self.acks_sent += 1
                if ack_result.delivered:
                    for checker in arq_checkers:
                        checker.on_logical_complete(
                            sim.now, message.src, message.dst
                        )
                    break
                self.acks_lost += 1
            failed_attempts += 1
            if failed_attempts > policy.max_retries:
                raise RetryLimitError(
                    message.src, message.dst, failed_attempts, sim.now
                )
            self.retransmissions += 1
            yield policy.backoff_ns(failed_attempts)
        elapsed = sim.now - start
        retry_ns = max(0, elapsed - base_latency - base_contention)
        return TransferResult(
            latency_ns=base_latency,
            contention_ns=base_contention,
            retry_ns=retry_ns,
            attempts=failed_attempts + 1,
        )
