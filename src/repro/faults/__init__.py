"""Fault injection and reliable delivery.

Both our target fabric and the LogP abstraction assume a perfectly
reliable interconnect.  This package lets experiments relax that
assumption -- messages can be dropped, corrupted, delayed, or hit
transient link-failure windows and node stalls -- and layers a
sender-side reliable-delivery protocol (timeout, exponential-backoff
retry with a cap, acks, duplicate suppression) on top, so the question
"does the LogP abstraction stay faithful to the target when the network
misbehaves?" becomes runnable.

All randomness comes from a dedicated named RNG stream
(:data:`repro.engine.rng.FAULT_STREAM`), so fault runs are reproducible
and never perturb application random draws; with every rate at zero the
machinery is not even constructed, making a zero-rate run bit-identical
to a fault-free one.
"""

from .config import FaultConfig, LinkFailure, NodeStall
from .injector import Fate, FaultInjector
from .reliable import ReliableTransport, RetryPolicy

__all__ = [
    "FaultConfig",
    "LinkFailure",
    "NodeStall",
    "Fate",
    "FaultInjector",
    "ReliableTransport",
    "RetryPolicy",
]
