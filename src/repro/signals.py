"""Shared termination-signal handling for sweeps and the daemon.

PR 6 flushed the sweep checkpoint and supervised-pool state on
``KeyboardInterrupt`` -- which only SIGINT raises.  Daemons, CI runners,
and process supervisors terminate with SIGTERM, which by default kills
the process without unwinding the stack, silently dropping every
completed-but-unflushed point.  This module gives both execution paths
one shared notion of "the host asked us to stop":

* :data:`TERMINATION_SIGNALS` names the signals that mean *stop now,
  but cleanly* -- the sweep CLI and the service daemon both key off
  this tuple instead of hard-coding their own lists;
* :func:`raise_keyboard_interrupt_on_sigterm` converts SIGTERM into
  ``KeyboardInterrupt`` for the duration of a ``with`` block, so every
  existing SIGINT unwind path (checkpoint flush in
  ``SweepRunner.run_batch``, backend teardown in context-manager
  ``__exit__``, the CLI's exit-code 130) handles SIGTERM identically;
* the asyncio daemon installs its own handlers for the same signal set
  via ``loop.add_signal_handler`` (see :mod:`repro.service.daemon`) --
  a coroutine-based drain instead of a raised exception, but the same
  contract: stop accepting, flush state, exit cleanly.

Signal handlers can only be installed from the main thread; from any
other thread the context manager is a documented no-op (tests and the
in-thread service harness run sweeps off the main thread).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator

#: Signals that request a clean shutdown.  SIGINT already raises
#: KeyboardInterrupt via the default Python handler; SIGTERM needs the
#: conversion below (or an asyncio handler) to get the same treatment.
TERMINATION_SIGNALS = (signal.SIGINT, signal.SIGTERM)


@contextmanager
def raise_keyboard_interrupt_on_sigterm() -> Iterator[None]:
    """Convert SIGTERM into KeyboardInterrupt inside the block.

    The previous handler is restored on exit, so nesting and library
    use are safe.  Off the main thread this is a no-op (CPython only
    delivers signals to the main thread, and only the main thread may
    install handlers).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt(f"terminated by signal {signum}")

    previous = signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
