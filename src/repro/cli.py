"""Command-line interface.

::

    repro list                              # apps, machines, topologies, figures
    repro params --topology mesh -p 32      # derived LogP parameters
    repro run --app fft --machine target --topology mesh -p 8
    repro figure fig13 [--preset quick]     # regenerate one paper figure
    repro all [--preset quick]              # regenerate every figure
    repro scalability --app cg --machine target   # speedup/overhead table
    repro profile --app is -p 8             # per-processor overhead profile
    repro trace record --app fft -p 4 --out fft.trace.json
    repro trace replay fft.trace.json --machine target

(Equivalently: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import APPLICATIONS, make_app
from .checkers import CHECK_LEVELS
from .config import MACHINES, TOPOLOGIES, SystemConfig
from .core.params import derive_logp
from .core.runner import simulate
from .experiments import SweepRunner, experiment_ids, get_experiment, render_figure
from .experiments.workloads import app_params
from .faults import FaultConfig
from .units import ns_to_us


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=12345,
                        help="master random seed (default 12345)")
    parser.add_argument("--check", choices=CHECK_LEVELS, default=None,
                        help="runtime sanitizer level (default: the "
                             "REPRO_CHECK environment variable, or off)")


def _check_kwargs(args: argparse.Namespace) -> dict:
    """Sanitizer-related SystemConfig kwargs from parsed arguments.

    ``--check`` unset is *omitted* (not passed as None) so the
    ``REPRO_CHECK`` environment default still applies.
    """
    kwargs = {}
    if getattr(args, "check", None) is not None:
        kwargs["check"] = args.check
    if getattr(args, "digest", False):
        kwargs["digest"] = True
    return kwargs


def _add_fault(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fault-drop", type=float, default=0.0,
                        metavar="RATE",
                        help="probability a network message is dropped "
                             "(default 0: no fault injection)")
    parser.add_argument("--fault-delay", type=float, default=0.0,
                        metavar="RATE",
                        help="probability a message is delayed in transit "
                             "(default 0)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        metavar="SEED",
                        help="dedicated seed for the fault RNG stream "
                             "(default: derive from the master seed)")
    parser.add_argument("--retries", type=int, default=8, metavar="N",
                        help="reliable-delivery retry cap per message "
                             "(default 8)")


def _fault_from_args(args: argparse.Namespace) -> FaultConfig:
    return FaultConfig(
        drop_rate=args.fault_drop,
        delay_rate=args.fault_delay,
        seed=args.fault_seed,
        max_retries=args.retries,
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    print("applications :", ", ".join(sorted(APPLICATIONS)))
    print("machines     :", ", ".join(MACHINES))
    print("topologies   :", ", ".join(TOPOLOGIES))
    print("experiments  :", ", ".join(experiment_ids()))
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    config = SystemConfig(processors=args.processors, topology=args.topology)
    params = derive_logp(config)
    print(f"topology={args.topology} P={params.P}")
    print(f"L = {ns_to_us(params.L_ns):.2f} us")
    print(f"g = {ns_to_us(params.g_ns):.2f} us")
    print(f"o = {ns_to_us(params.o_ns):.2f} us")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = SystemConfig(
        processors=args.processors,
        topology=args.topology,
        seed=args.seed,
        protocol=args.protocol,
        barrier=args.barrier,
        adaptive_g=args.adaptive_g,
        g_per_event_type=args.g_per_event_type,
        fault=_fault_from_args(args),
        **_check_kwargs(args),
    )
    app = make_app(
        args.app, args.processors, **app_params(args.app, args.preset)
    )
    result = simulate(app, args.machine, config)
    print(result.summary())
    if result.check_report is not None:
        print(result.check_report.summary())
    for pid, buckets in enumerate(result.buckets):
        line = (
            f"  cpu{pid:<3d} compute={ns_to_us(buckets.compute_ns):10.1f}us "
            f"memory={ns_to_us(buckets.memory_ns):10.1f}us "
            f"latency={ns_to_us(buckets.latency_ns):10.1f}us "
            f"contention={ns_to_us(buckets.contention_ns):10.1f}us "
            f"sync={ns_to_us(buckets.sync_ns):10.1f}us"
        )
        if config.fault.enabled:
            line += f" retry={ns_to_us(buckets.retry_ns):10.1f}us"
        print(line)
    return 0 if result.verified else 1


def _make_sweep_runner(args: argparse.Namespace) -> SweepRunner:
    fault = _fault_from_args(args)
    return SweepRunner(
        preset=args.preset,
        seed=args.seed,
        fault=fault if fault.enabled else None,
        checkpoint_path=args.resume,
        check=getattr(args, "check", None),
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = _make_sweep_runner(args)
    for experiment_id in args.ids:
        experiment = get_experiment(experiment_id)
        print(render_figure(runner.run_experiment(experiment)))
        print()
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    runner = _make_sweep_runner(args)
    for experiment_id in experiment_ids():
        experiment = get_experiment(experiment_id)
        print(render_figure(runner.run_experiment(experiment)))
        print()
    return 0


def _cmd_scalability(args: argparse.Namespace) -> int:
    from .analysis import scalability_table

    results = []
    for nprocs in args.sweep:
        config = SystemConfig(
            processors=nprocs, topology=args.topology, seed=args.seed,
            fault=_fault_from_args(args), **_check_kwargs(args),
        )
        app = make_app(args.app, nprocs, **app_params(args.app, args.preset))
        results.append(simulate(app, args.machine, config))
    print(
        f"{args.app} on {args.machine}/{args.topology} "
        f"({args.preset} workload)"
    )
    print(scalability_table(results))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .analysis import profile_table

    config = SystemConfig(
        processors=args.processors, topology=args.topology, seed=args.seed,
        **_check_kwargs(args),
    )
    app = make_app(
        args.app, args.processors, **app_params(args.app, args.preset)
    )
    result = simulate(app, args.machine, config)
    print(profile_table(result))
    return 0 if result.verified else 1


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from .trace import record_trace, save_trace

    config = SystemConfig(
        processors=args.processors, topology=args.topology, seed=args.seed
    )
    app = make_app(
        args.app, args.processors, **app_params(args.app, args.preset)
    )
    result, trace = record_trace(app, args.machine, config)
    save_trace(trace, args.out)
    print(result.summary())
    print(
        f"recorded {trace.total_operations} operations from "
        f"{trace.nprocs} processors to {args.out}"
    )
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from .trace import TraceApplication, load_trace

    trace = load_trace(args.trace_file)
    config = SystemConfig(
        processors=trace.nprocs, topology=args.topology, seed=args.seed
    )
    result = simulate(TraceApplication(trace), args.machine, config)
    print(result.summary())
    if args.machine != trace.recorded_on:
        print(
            f"note: trace was recorded on {trace.recorded_on!r}; replaying "
            f"on {args.machine!r} is the trace-driven approximation"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Abstracting Network Characteristics and "
            "Locality Properties of Parallel Systems' (HPCA 1995)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list apps/machines/experiments")
    p_list.set_defaults(func=_cmd_list)

    p_params = sub.add_parser("params", help="show derived LogP parameters")
    p_params.add_argument("--topology", choices=TOPOLOGIES, default="full")
    p_params.add_argument("-p", "--processors", type=int, default=8)
    p_params.set_defaults(func=_cmd_params)

    p_run = sub.add_parser("run", help="one simulation")
    p_run.add_argument("--app", choices=sorted(APPLICATIONS), required=True)
    p_run.add_argument("--machine", choices=MACHINES, default="target")
    p_run.add_argument("--topology", choices=TOPOLOGIES, default="full")
    p_run.add_argument("-p", "--processors", type=int, default=8)
    p_run.add_argument("--preset", choices=("default", "quick"),
                       default="default")
    p_run.add_argument("--protocol", choices=("berkeley", "illinois"),
                       default="berkeley",
                       help="coherence protocol of the cached machines")
    p_run.add_argument("--barrier", choices=("central", "tree"),
                       default="central", help="barrier implementation")
    p_run.add_argument("--adaptive-g", action="store_true",
                       help="history-based g estimation (Section 7)")
    p_run.add_argument("--g-per-event-type", action="store_true",
                       help="apply g only between identical event types")
    p_run.add_argument("--digest", action="store_true",
                       help="compute and print the determinism digest")
    _add_common(p_run)
    _add_fault(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_figure = sub.add_parser("figure", help="regenerate paper figures")
    p_figure.add_argument("ids", nargs="+", metavar="FIG",
                          help=f"one of {', '.join(experiment_ids())}")
    p_figure.add_argument("--preset", choices=("default", "quick"),
                          default="default")
    p_figure.add_argument("--resume", metavar="CHECKPOINT", default=None,
                          help="sweep checkpoint JSON: completed points are "
                               "loaded from it and new points appended")
    _add_common(p_figure)
    _add_fault(p_figure)
    p_figure.set_defaults(func=_cmd_figure)

    p_all = sub.add_parser("all", help="regenerate every figure")
    p_all.add_argument("--preset", choices=("default", "quick"),
                       default="default")
    p_all.add_argument("--resume", metavar="CHECKPOINT", default=None,
                       help="sweep checkpoint JSON: completed points are "
                            "loaded from it and new points appended")
    _add_common(p_all)
    _add_fault(p_all)
    p_all.set_defaults(func=_cmd_all)

    p_scal = sub.add_parser(
        "scalability", help="speedup/efficiency/overhead sweep"
    )
    p_scal.add_argument("--app", choices=sorted(APPLICATIONS), required=True)
    p_scal.add_argument("--machine", choices=MACHINES, default="target")
    p_scal.add_argument("--topology", choices=TOPOLOGIES, default="full")
    p_scal.add_argument(
        "--sweep", type=lambda s: [int(x) for x in s.split(",")],
        default=[1, 2, 4, 8, 16],
        help="comma-separated processor counts (default 1,2,4,8,16)",
    )
    p_scal.add_argument("--preset", choices=("default", "quick"),
                        default="default")
    _add_common(p_scal)
    _add_fault(p_scal)
    p_scal.set_defaults(func=_cmd_scalability)

    p_prof = sub.add_parser(
        "profile", help="per-processor overhead profile of one run"
    )
    p_prof.add_argument("--app", choices=sorted(APPLICATIONS), required=True)
    p_prof.add_argument("--machine", choices=MACHINES, default="target")
    p_prof.add_argument("--topology", choices=TOPOLOGIES, default="full")
    p_prof.add_argument("-p", "--processors", type=int, default=8)
    p_prof.add_argument("--preset", choices=("default", "quick"),
                        default="default")
    _add_common(p_prof)
    p_prof.set_defaults(func=_cmd_profile)

    p_trace = sub.add_parser("trace", help="record / replay traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_record = trace_sub.add_parser("record", help="record a trace")
    p_record.add_argument("--app", choices=sorted(APPLICATIONS),
                          required=True)
    p_record.add_argument("--machine", choices=MACHINES, default="clogp")
    p_record.add_argument("--topology", choices=TOPOLOGIES, default="full")
    p_record.add_argument("-p", "--processors", type=int, default=4)
    p_record.add_argument("--preset", choices=("default", "quick"),
                          default="quick")
    p_record.add_argument("--out", required=True, help="output JSON path")
    _add_common(p_record)
    p_record.set_defaults(func=_cmd_trace_record)

    p_replay = trace_sub.add_parser("replay", help="replay a trace")
    p_replay.add_argument("trace_file", help="trace JSON path")
    p_replay.add_argument("--machine", choices=MACHINES, default="target")
    p_replay.add_argument("--topology", choices=TOPOLOGIES, default="full")
    _add_common(p_replay)
    p_replay.set_defaults(func=_cmd_trace_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
