"""Command-line interface.

::

    repro list                              # apps, machines, topologies, figures
    repro params --topology mesh -p 32      # derived LogP parameters
    repro run --app fft --machine target --topology mesh -p 8
    repro figure fig13 [--preset quick]     # regenerate one paper figure
    repro all [--preset quick] [--jobs 4]   # regenerate every figure
    repro scalability --app cg --machine target   # speedup/overhead table
    repro profile --app is -p 8             # per-processor overhead profile
    repro trace record --app fft -p 4 --out fft.trace.json
    repro trace replay fft.trace.json --machine target
    repro cache verify --cache-dir .repro-cache [--repair]

(Equivalently: ``python -m repro ...``.)

Sweep commands (``figure``, ``all``, ``scalability``) accept
``--jobs N`` to run points on a pool of worker processes, and
``--cache-dir DIR`` (or the ``REPRO_CACHE_DIR`` environment variable)
to persist completed results in a content-addressed
:class:`~repro.exec.store.ResultStore`, so re-running a command skips
already-simulated points; ``--no-cache`` disables both reading and
writing the store.  Parallel sweeps are supervised (DESIGN.md §11):
``--deadline-s`` bounds each point's wall-clock, ``--max-retries``
re-attempts transient failures with deterministic backoff, and sweep
exit codes separate "completed with failed points" (3) from "aborted"
(1) and "interrupted" (130).

Flags shared between subcommands (``--preset``, ``--topology``, ``-p``,
``--protocol``, ``--barrier``, the fault-injection group, ...) are
declared once on parent parsers and inherited, so they cannot drift
apart between commands.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .apps import APPLICATIONS
from .checkers import CHECK_LEVELS
from .config import (
    BARRIERS,
    ENGINE_KERNELS,
    MACHINES,
    PROTOCOLS,
    TOPOLOGIES,
    SystemConfig,
)
from .core.params import derive_logp
from .core.runner import simulate, simulate_spec
from .errors import ConfigError, ReproError
from .exec.policy import RetryPolicy
from .exec.store import ResultStore
from .experiments import SweepRunner, experiment_ids, get_experiment, render_figure
from .faults import FaultConfig
from .runspec import RunSpec
from .signals import raise_keyboard_interrupt_on_sigterm
from .units import ns_to_us

#: Workload presets selectable from the command line.
PRESETS = ("default", "quick")

#: Exit codes of the sweep commands.  Distinct codes let automation
#: tell "the sweep finished but some points failed" (retryable by
#: re-running with --resume) from "the sweep aborted" (needs a human).
EXIT_OK = 0
EXIT_ABORTED = 1
EXIT_POINT_FAILURES = 3
EXIT_INTERRUPTED = 130


def _parent(*adders) -> argparse.ArgumentParser:
    """A helper-less parser holding one shared group of arguments."""
    parser = argparse.ArgumentParser(add_help=False)
    for add in adders:
        add(parser)
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=12345,
                        help="master random seed (default 12345)")
    parser.add_argument("--check", choices=CHECK_LEVELS, default=None,
                        help="runtime sanitizer level (default: the "
                             "REPRO_CHECK environment variable, or off)")


def _add_topology(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", choices=TOPOLOGIES, default="full")


def _add_processors(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-p", "--processors", type=int, default=8)


def _add_preset(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", choices=PRESETS, default="default")


def _add_model(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", choices=PROTOCOLS,
                        default="berkeley",
                        help="coherence protocol of the cached machines")
    parser.add_argument("--barrier", choices=BARRIERS,
                        default="central", help="barrier implementation")


def _add_fault(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fault-drop", type=float, default=0.0,
                        metavar="RATE",
                        help="probability a network message is dropped "
                             "(default 0: no fault injection)")
    parser.add_argument("--fault-delay", type=float, default=0.0,
                        metavar="RATE",
                        help="probability a message is delayed in transit "
                             "(default 0)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        metavar="SEED",
                        help="dedicated seed for the fault RNG stream "
                             "(default: derive from the master seed)")
    parser.add_argument("--retries", type=int, default=8, metavar="N",
                        help="reliable-delivery retry cap per message "
                             "(default 8)")


def _add_sweep_exec(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes executing sweep points "
                             "(default 1: serial in-process)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result cache directory "
                             "(default: the REPRO_CACHE_DIR environment "
                             "variable, or no cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache entirely (neither "
                             "read nor write entries)")
    parser.add_argument("--resume", metavar="CHECKPOINT", default=None,
                        help="sweep checkpoint JSON: completed points are "
                             "loaded from it and new points appended")
    parser.add_argument("--deadline-s", type=float, default=None,
                        metavar="S",
                        help="per-point wall-clock deadline: a hung point "
                             "is converted into a retryable failure "
                             "in-worker, and a truly wedged worker is "
                             "reclaimed by a pool rebuild (default: "
                             "unbounded)")
    parser.add_argument("--max-retries", type=int, default=1, metavar="N",
                        help="re-attempts for a point failing with a "
                             "transient error (worker crash, expired "
                             "deadline, exhausted ARQ); exponential "
                             "backoff with deterministic seeded jitter "
                             "(default 1)")


def _check_kwargs(args: argparse.Namespace) -> dict:
    """Sanitizer-related SystemConfig kwargs from parsed arguments.

    ``--check`` unset is *omitted* (not passed as None) so the
    ``REPRO_CHECK`` environment default still applies.
    """
    kwargs = {}
    if getattr(args, "check", None) is not None:
        kwargs["check"] = args.check
    if getattr(args, "digest", False):
        kwargs["digest"] = True
    return kwargs


def _fault_from_args(args: argparse.Namespace) -> FaultConfig:
    return FaultConfig(
        drop_rate=args.fault_drop,
        delay_rate=args.fault_delay,
        seed=args.fault_seed,
        max_retries=args.retries,
    )


def _spec_from_args(args: argparse.Namespace, **overrides) -> RunSpec:
    """The canonical RunSpec of a single-run command's arguments."""
    build_kwargs = dict(
        app=args.app,
        machine=args.machine,
        nprocs=args.processors,
        topology=args.topology,
        preset=args.preset,
        seed=args.seed,
        check=getattr(args, "check", None),
        digest=getattr(args, "digest", False),
        protocol=getattr(args, "protocol", "berkeley"),
        barrier=getattr(args, "barrier", "central"),
        adaptive_g=getattr(args, "adaptive_g", False),
        g_per_event_type=getattr(args, "g_per_event_type", False),
        batch_local=not getattr(args, "no_batch_local", False),
        fault=_fault_from_args(args) if hasattr(args, "fault_drop") else None,
        engine_kernel=getattr(args, "engine", None),
    )
    build_kwargs.update(overrides)
    return RunSpec.build(**build_kwargs)


def _cache_dir_from_args(args: argparse.Namespace) -> Optional[str]:
    """Resolve the result-store directory (None: caching disabled)."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        return cache_dir
    return os.environ.get("REPRO_CACHE_DIR") or None


def _cmd_list(_args: argparse.Namespace) -> int:
    print("applications :", ", ".join(sorted(APPLICATIONS)))
    print("machines     :", ", ".join(MACHINES))
    print("topologies   :", ", ".join(TOPOLOGIES))
    print("experiments  :", ", ".join(experiment_ids()))
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    config = SystemConfig(processors=args.processors, topology=args.topology)
    params = derive_logp(config)
    print(f"topology={args.topology} P={params.P}")
    print(f"L = {ns_to_us(params.L_ns):.2f} us")
    print(f"g = {ns_to_us(params.g_ns):.2f} us")
    print(f"o = {ns_to_us(params.o_ns):.2f} us")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    config = spec.config
    profile_engine = getattr(args, "profile_engine", False)
    if profile_engine:
        # simulate_spec discards the machine; keep it for the engine
        # counters.
        from .core.runner import simulate_full

        result, machine = simulate_full(
            spec.make_application(), spec.machine, config,
            max_events=spec.max_events,
        )
    else:
        result = simulate_spec(spec)
    print(result.summary())
    if result.check_report is not None:
        print(result.check_report.summary())
    for pid, buckets in enumerate(result.buckets):
        line = (
            f"  cpu{pid:<3d} compute={ns_to_us(buckets.compute_ns):10.1f}us "
            f"memory={ns_to_us(buckets.memory_ns):10.1f}us "
            f"latency={ns_to_us(buckets.latency_ns):10.1f}us "
            f"contention={ns_to_us(buckets.contention_ns):10.1f}us "
            f"sync={ns_to_us(buckets.sync_ns):10.1f}us"
        )
        if config.fault.enabled:
            line += f" retry={ns_to_us(buckets.retry_ns):10.1f}us"
        print(line)
    if profile_engine:
        profile = machine.sim.engine_profile()
        print("engine profile:")
        for key, value in profile.items():
            print(f"  {key:<18} {value}")
        if result.wall_seconds > 0:
            rate = profile["events_executed"] / result.wall_seconds
            print(f"  events_per_sec     {rate:,.0f}")
    return 0 if result.verified else 1


def _make_sweep_runner(
    args: argparse.Namespace,
    processors: Optional[List[int]] = None,
) -> SweepRunner:
    fault = _fault_from_args(args)
    max_retries = getattr(args, "max_retries", 1)
    return SweepRunner(
        preset=args.preset,
        processors=processors,
        seed=args.seed,
        fault=fault if fault.enabled else None,
        run_retries=max_retries,
        checkpoint_path=args.resume,
        check=getattr(args, "check", None),
        jobs=args.jobs,
        cache_dir=_cache_dir_from_args(args),
        deadline_s=getattr(args, "deadline_s", None),
        retry_policy=RetryPolicy(max_retries=max_retries,
                                 base_delay_s=0.05, seed=args.seed),
    )


def _sweep_exit(runner: SweepRunner) -> int:
    """Sweep exit code: clean, or completed-with-point-failures."""
    failures = runner.failures
    if not failures:
        return EXIT_OK
    print(f"repro: sweep completed with {len(failures)} failed point(s):",
          file=sys.stderr)
    for failure in failures:
        print(f"  {failure.summary()}", file=sys.stderr)
    return EXIT_POINT_FAILURES


def _run_figures(args: argparse.Namespace, experiment_ids_list) -> int:
    experiments = [get_experiment(eid) for eid in experiment_ids_list]
    # SIGTERM (daemons, CI runners, process supervisors) takes the
    # same unwind path as Ctrl-C: checkpoint flushed, pool torn down,
    # exit code 130.
    with raise_keyboard_interrupt_on_sigterm(), \
            _make_sweep_runner(args) as runner:
        try:
            # One batch across every requested figure keeps all --jobs
            # workers busy; rendering below is pure memo lookups.
            runner.prefetch(experiments)
            for experiment in experiments:
                print(render_figure(runner.run_experiment(experiment)))
                print()
        except KeyboardInterrupt:
            # The runner flushed its checkpoint on the way out, so
            # --resume picks the sweep back up without losing points.
            print("repro: interrupted; completed points are checkpointed",
                  file=sys.stderr)
            return EXIT_INTERRUPTED
        except ReproError as exc:
            print(f"repro: sweep aborted: {exc}", file=sys.stderr)
            return EXIT_ABORTED
        return _sweep_exit(runner)


def _cmd_figure(args: argparse.Namespace) -> int:
    return _run_figures(args, args.ids)


def _cmd_all(args: argparse.Namespace) -> int:
    return _run_figures(args, experiment_ids())


def _parse_bytes(text: str) -> int:
    """A byte count with an optional K/M/G suffix (e.g. ``512M``)."""
    scales = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    raw = text.strip()
    scale = 1
    if raw and raw[-1].upper() in scales:
        scale = scales[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = int(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad size {text!r} (expected e.g. 1048576, 512K, 64M, 2G)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be >= 0, got {text!r}")
    return value


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    if cache_dir is None:
        raise ConfigError(
            "no cache directory to collect; pass --cache-dir or set "
            "REPRO_CACHE_DIR"
        )
    store = ResultStore(cache_dir)
    report = store.gc(args.max_bytes)
    print(report.summary())
    return EXIT_OK if report.within_budget else EXIT_ABORTED


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=_cache_dir_from_args(args),
        max_queue=args.max_queue,
        deadline_s=args.deadline_s,
        request_timeout_s=args.request_timeout_s,
        max_retries=args.max_retries,
        breaker_rebuilds=args.breaker_rebuilds,
        breaker_cooldown_s=args.breaker_cooldown_s,
        drain_s=args.drain_s,
        max_store_bytes=args.max_store_bytes,
        seed=args.seed,
    )
    return serve(config)


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    if cache_dir is None:
        raise ConfigError(
            "no cache directory to verify; pass --cache-dir or set "
            "REPRO_CACHE_DIR"
        )
    store = ResultStore(cache_dir)
    report = store.verify(repair=args.repair)
    print(report.summary())
    if report.corrupt and not args.repair:
        print("repro: corrupt entries were quarantined; re-run with "
              "--repair to re-simulate them", file=sys.stderr)
    return EXIT_OK if report.healthy else EXIT_ABORTED


def _cmd_scalability(args: argparse.Namespace) -> int:
    from .analysis import scalability_table

    with raise_keyboard_interrupt_on_sigterm(), \
            _make_sweep_runner(args, processors=args.sweep) as runner:
        specs = [
            runner.point_spec(
                args.app, args.machine, args.topology, nprocs,
                protocol=args.protocol, barrier=args.barrier,
            )
            for nprocs in args.sweep
        ]
        runner.run_batch(specs)
        results = [
            runner.run_one(
                args.app, args.machine, args.topology, nprocs,
                protocol=args.protocol, barrier=args.barrier,
            )
            for nprocs in args.sweep
        ]
    print(
        f"{args.app} on {args.machine}/{args.topology} "
        f"({args.preset} workload)"
    )
    print(scalability_table(results))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .analysis import profile_table

    result = simulate_spec(_spec_from_args(args, fault=None))
    print(profile_table(result))
    return 0 if result.verified else 1


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from .trace import record_trace, save_trace

    spec = _spec_from_args(args, fault=None)
    result, trace = record_trace(
        spec.make_application(), spec.machine, spec.config
    )
    save_trace(trace, args.out)
    print(result.summary())
    print(
        f"recorded {trace.total_operations} operations from "
        f"{trace.nprocs} processors to {args.out}"
    )
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from .trace import TraceApplication, load_trace

    trace = load_trace(args.trace_file)
    config = SystemConfig(
        processors=trace.nprocs, topology=args.topology, seed=args.seed,
        **_check_kwargs(args),
    )
    result = simulate(TraceApplication(trace), args.machine, config)
    print(result.summary())
    if args.machine != trace.recorded_on:
        print(
            f"note: trace was recorded on {trace.recorded_on!r}; replaying "
            f"on {args.machine!r} is the trace-driven approximation"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Abstracting Network Characteristics and "
            "Locality Properties of Parallel Systems' (HPCA 1995)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared argument groups, declared once (see module docstring).
    common = _parent(_add_common)
    topology = _parent(_add_topology)
    processors = _parent(_add_processors)
    preset = _parent(_add_preset)
    model = _parent(_add_model)
    fault = _parent(_add_fault)
    sweep_exec = _parent(_add_sweep_exec)

    p_list = sub.add_parser("list", help="list apps/machines/experiments")
    p_list.set_defaults(func=_cmd_list)

    p_params = sub.add_parser("params", help="show derived LogP parameters",
                              parents=[topology, processors])
    p_params.set_defaults(func=_cmd_params)

    p_run = sub.add_parser(
        "run", help="one simulation",
        parents=[topology, processors, preset, model, common, fault],
    )
    p_run.add_argument("--app", choices=sorted(APPLICATIONS), required=True)
    p_run.add_argument("--machine", choices=MACHINES, default="target")
    p_run.add_argument("--adaptive-g", action="store_true",
                       help="history-based g estimation (Section 7)")
    p_run.add_argument("--g-per-event-type", action="store_true",
                       help="apply g only between identical event types")
    p_run.add_argument("--engine", choices=ENGINE_KERNELS, default=None,
                       help="event-kernel selection: soa (fast "
                            "struct-of-arrays core), object (fallback "
                            "and hooked path), or auto (default: "
                            "REPRO_ENGINE, else soa)")
    p_run.add_argument("--profile-engine", action="store_true",
                       help="print the engine's internal activity "
                            "counters (active kernel, event counts by "
                            "source, pooling stats, events/sec) after "
                            "the run")
    p_run.add_argument("--no-batch-local", action="store_true",
                       help="release accumulated local time (compute "
                            "quanta, cache hits) after every operation "
                            "instead of batching until the next "
                            "externally visible interaction")
    p_run.add_argument("--digest", action="store_true",
                       help="compute and print the determinism digest")
    p_run.set_defaults(func=_cmd_run)

    p_figure = sub.add_parser(
        "figure", help="regenerate paper figures",
        parents=[preset, common, fault, sweep_exec],
    )
    p_figure.add_argument("ids", nargs="+", metavar="FIG",
                          help=f"one of {', '.join(experiment_ids())}")
    p_figure.set_defaults(func=_cmd_figure)

    p_all = sub.add_parser(
        "all", help="regenerate every figure",
        parents=[preset, common, fault, sweep_exec],
    )
    p_all.set_defaults(func=_cmd_all)

    p_scal = sub.add_parser(
        "scalability", help="speedup/efficiency/overhead sweep",
        parents=[topology, preset, model, common, fault, sweep_exec],
    )
    p_scal.add_argument("--app", choices=sorted(APPLICATIONS), required=True)
    p_scal.add_argument("--machine", choices=MACHINES, default="target")
    p_scal.add_argument(
        "--sweep", type=lambda s: [int(x) for x in s.split(",")],
        default=[1, 2, 4, 8, 16],
        help="comma-separated processor counts (default 1,2,4,8,16)",
    )
    p_scal.set_defaults(func=_cmd_scalability)

    p_prof = sub.add_parser(
        "profile", help="per-processor overhead profile of one run",
        parents=[topology, processors, preset, common],
    )
    p_prof.add_argument("--app", choices=sorted(APPLICATIONS), required=True)
    p_prof.add_argument("--machine", choices=MACHINES, default="target")
    p_prof.set_defaults(func=_cmd_profile)

    p_cache = sub.add_parser("cache", help="result-store maintenance")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_verify = cache_sub.add_parser(
        "verify",
        help="audit every store entry's checksum; quarantine "
             "(and with --repair re-simulate) corrupt entries",
    )
    p_verify.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="store to audit (default: REPRO_CACHE_DIR)")
    p_verify.add_argument("--repair", action="store_true",
                          help="re-simulate quarantined entries from their "
                               "embedded specs and rewrite them")
    p_verify.set_defaults(func=_cmd_cache_verify)

    p_gc = cache_sub.add_parser(
        "gc",
        help="evict least-recently-used store entries until the store "
             "fits a byte budget (also removes quarantine/tmp debris)",
    )
    p_gc.add_argument("--cache-dir", metavar="DIR", default=None,
                      help="store to collect (default: REPRO_CACHE_DIR)")
    p_gc.add_argument("--max-bytes", type=_parse_bytes, required=True,
                      metavar="N",
                      help="byte budget; accepts K/M/G suffixes (e.g. 64M)")
    p_gc.set_defaults(func=_cmd_cache_gc)

    p_serve = sub.add_parser(
        "serve",
        help="simulation-as-a-service HTTP daemon (warm answers from "
             "the result store, cold misses over a supervised pool)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="TCP port; 0 binds an ephemeral port and "
                              "prints the choice (default 8765)")
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="worker processes in the pool (default 2)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="result store backing warm requests "
                              "(default: REPRO_CACHE_DIR; no store means "
                              "every request simulates)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without a result store even if "
                              "REPRO_CACHE_DIR is set")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="cold requests admitted beyond the pool "
                              "before shedding with 429 (default 64)")
    p_serve.add_argument("--deadline-s", type=float, default=None,
                         help="per-point wall-clock deadline inside the "
                              "pool (default: none)")
    p_serve.add_argument("--request-timeout-s", type=float, default=60.0,
                         help="cap on any single request's wait, "
                              "including queueing (default 60)")
    p_serve.add_argument("--max-retries", type=int, default=1,
                         help="transient-failure retries per point "
                              "(default 1)")
    p_serve.add_argument("--breaker-rebuilds", type=int, default=3,
                         help="consecutive pool rebuilds before the "
                              "circuit breaker trips to warm-only mode "
                              "(default 3)")
    p_serve.add_argument("--breaker-cooldown-s", type=float, default=5.0,
                         help="seconds the breaker stays open before "
                              "admitting a half-open probe (default 5)")
    p_serve.add_argument("--drain-s", type=float, default=10.0,
                         help="graceful-drain deadline after SIGTERM/"
                              "SIGINT (default 10)")
    p_serve.add_argument("--max-store-bytes", type=_parse_bytes,
                         default=None, metavar="N",
                         help="store size budget reported by /readyz; "
                              "accepts K/M/G suffixes")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="seed for retry backoff jitter (default 0)")
    p_serve.set_defaults(func=_cmd_serve)

    p_trace = sub.add_parser("trace", help="record / replay traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_record = trace_sub.add_parser(
        "record", help="record a trace",
        parents=[topology, processors, preset, common],
    )
    p_record.add_argument("--app", choices=sorted(APPLICATIONS),
                          required=True)
    p_record.add_argument("--machine", choices=MACHINES, default="clogp")
    p_record.add_argument("--out", required=True, help="output JSON path")
    p_record.set_defaults(func=_cmd_trace_record, processors=4,
                          preset="quick")

    p_replay = trace_sub.add_parser(
        "replay", help="replay a trace", parents=[topology, common],
    )
    p_replay.add_argument("trace_file", help="trace JSON path")
    p_replay.add_argument("--machine", choices=MACHINES, default="target")
    p_replay.set_defaults(func=_cmd_trace_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
