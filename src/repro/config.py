"""Simulated-machine configuration.

A single frozen dataclass, :class:`SystemConfig`, carries every hardware
parameter used by the three machine models.  The defaults reproduce the
hardware of the HPCA'95 paper:

* 33 MHz SPARC processors (30 ns cycle),
* serial unidirectional links at 20 MB/s (50 ns per byte),
* data messages of 32 bytes (so the LogP ``L`` parameter is 1.6 us),
* coherence control messages of 8 bytes on the detailed network,
* 64 KB 2-way set-associative caches with 32-byte blocks,
* fully-connected / binary-hypercube / 2-D-mesh topologies.

The paper restricts the processor count to powers of two; we enforce the
same restriction because the hypercube requires it and the mesh shape
rule ("columns = 2x rows for odd powers of two") assumes it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Tuple

from .checkers.base import CHECK_LEVELS
from .errors import ConfigError
from .faults.config import FaultConfig
from .units import KB


def _default_engine_kernel() -> str:
    """Default engine kernel knob, overridable via ``REPRO_ENGINE``.

    ``"auto"`` defers resolution to :func:`repro.engine.resolve_kernel`
    (which also reads ``REPRO_ENGINE``, so the env var works both when a
    config is built and when a bare simulator is made).  Set
    ``REPRO_ENGINE=object`` to force the object-kernel fallback across a
    whole test run without threading a flag through every entry point.
    """
    kernel = os.environ.get("REPRO_ENGINE", "").strip().lower()
    return kernel or "auto"


def _default_check_level() -> str:
    """Default sanitizer level, overridable via ``REPRO_CHECK``.

    The environment hook lets an entire test or CI run opt into the
    sanitizer (e.g. ``REPRO_CHECK=strict pytest``) without threading a
    flag through every configuration site.
    """
    return os.environ.get("REPRO_CHECK", "off")

#: Topology identifiers accepted by :class:`SystemConfig`.
TOPOLOGIES: Tuple[str, ...] = ("full", "cube", "mesh")

#: Machine-model identifiers used across the package.
MACHINES: Tuple[str, ...] = ("target", "logp", "clogp", "ideal")

#: Coherence protocols the cached machines can run.
PROTOCOLS: Tuple[str, ...] = ("berkeley", "illinois")

#: Barrier implementations.
BARRIERS: Tuple[str, ...] = ("central", "tree")

#: Engine kernel knob values (mirrors ``repro.engine.KERNELS``; kept as
#: a literal here so the config layer does not import the engine).
ENGINE_KERNELS: Tuple[str, ...] = ("auto", "soa", "compiled", "object")


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class SystemConfig:
    """Hardware parameters shared by all machine models.

    Attributes mirror the paper's architectural characteristics
    (Section 5).  All times are integer nanoseconds.
    """

    #: Number of processing nodes (must be a power of two).
    processors: int = 8

    #: Interconnect topology: ``"full"``, ``"cube"`` or ``"mesh"``.
    topology: str = "full"

    #: Processor cycle time.  33 MHz SPARC => 30 ns.
    cpu_cycle_ns: int = 30

    #: Serial-link byte time.  20 MB/s => 50 ns per byte.
    link_ns_per_byte: int = 50

    #: Payload size of a data-carrying message (one cache block).
    data_message_bytes: int = 32

    #: Size of a coherence control message (request / inv / ack) on the
    #: detailed target network.  The LogP machines charge every message
    #: at the full ``L`` regardless (that pessimism is one of the
    #: paper's observations).
    control_message_bytes: int = 8

    #: Per-hop switching delay on the detailed network.  The paper
    #: assumes it "negligible compared to the transmission time" and
    #: ignores it (0 here); setting it non-zero tests that assumption
    #: (see ``bench_ablations``).
    switch_delay_ns: int = 0

    #: Private cache capacity in bytes.
    cache_size_bytes: int = 64 * KB

    #: Cache associativity (ways per set).
    cache_assoc: int = 2

    #: Cache block (line) size in bytes; also the coherence unit.
    block_bytes: int = 32

    #: Cache hit time in processor cycles.
    cache_hit_cycles: int = 1

    #: Local (home) memory access time in processor cycles.
    memory_cycles: int = 10

    #: Interval between successive spin polls of a remote location on
    #: the cache-less LogP machine.  Each poll is a network round trip,
    #: which is exactly why EP's latency overhead explodes on LogP.
    poll_interval_ns: int = 4_000

    #: When True, the LogP ``g`` gap is enforced only between network
    #: events of the *same* kind (send-send or receive-receive) at a
    #: node, instead of between any two events.  This is the relaxation
    #: experimented with in Section 7 of the paper.
    g_per_event_type: bool = False

    #: Coherence protocol run by the cached machines: ``"berkeley"``
    #: (the paper's target) or ``"illinois"`` (MESI -- the "fancier"
    #: protocol the paper predicts would agree even closer with the
    #: CLogP abstraction; see Sections 3.2 and 7).
    protocol: str = "berkeley"

    #: When True, the LogP ``g`` is scaled by the observed communication
    #: locality (running mean of route hop counts relative to uniform
    #: traffic) -- the history-based g estimation the paper suggests as
    #: future work in Section 7.
    adaptive_g: bool = False

    #: Barrier implementation: ``"central"`` (lock-protected counter +
    #: release flag, the classic 1994 construct and the default) or
    #: ``"tree"`` (binary combining tree over per-node flags, which
    #: keeps synchronization traffic local -- see the network-stats
    #: tooling for why that matters).
    barrier: str = "central"

    #: When True (default) consecutive purely-local progress -- compute
    #: quanta and cache hits -- accumulates in the processor's pending
    #: counter and reaches the engine as a *single* deferred timeout,
    #: flushed before any externally visible interaction.  When False
    #: every local quantum is released to the engine as its own timeout
    #: (one event per hit), which is the behaviour the paper attributes
    #: the LogP model's simulation slowness to.  Accounting is identical
    #: either way; only event counts (and host speed) differ.
    batch_local: bool = True

    #: Engine kernel for the event core: ``"compiled"`` (the SoA
    #: kernel driven by the optional C hot loop), ``"soa"`` (the
    #: pure-Python struct-of-arrays fast path), ``"object"`` (the
    #: original object engine, also the path instrumented runs always
    #: take) or ``"auto"`` (consult ``REPRO_ENGINE``, else compiled
    #: when the extension is built, else SoA).  All kernels execute
    #: identical event sequences; the knob only changes host speed.
    #: Defaults to the ``REPRO_ENGINE`` environment variable, or
    #: ``"auto"``.
    engine_kernel: str = field(default_factory=_default_engine_kernel)

    #: Master seed for all deterministic random streams.
    seed: int = 12345

    #: Runtime sanitizer level: ``"off"`` (no checker constructed, the
    #: exact pre-sanitizer code paths), ``"basic"`` (cheap per-operation
    #: invariants) or ``"strict"`` (adds the global coherence sweep per
    #: transition and the determinism digest).  Defaults to the
    #: ``REPRO_CHECK`` environment variable, or ``"off"``.
    check: str = field(default_factory=_default_check_level)

    #: Attach the determinism digest checker regardless of ``check``
    #: level (pure observation; see ``Simulator.state_digest``).
    digest: bool = False

    #: Fault-injection configuration.  The default injects nothing and
    #: the machines take the exact fault-free code paths, so a run with
    #: all rates at zero is bit-identical to a run without this field.
    fault: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.processors):
            raise ConfigError(
                f"processors must be a power of two, got {self.processors}"
            )
        if self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        if self.block_bytes <= 0 or not _is_power_of_two(self.block_bytes):
            raise ConfigError(
                f"block_bytes must be a positive power of two, got {self.block_bytes}"
            )
        if self.cache_assoc <= 0:
            raise ConfigError(f"cache_assoc must be positive, got {self.cache_assoc}")
        if self.cache_size_bytes % (self.block_bytes * self.cache_assoc):
            raise ConfigError(
                "cache_size_bytes must be a multiple of block_bytes * cache_assoc "
                f"({self.cache_size_bytes} % "
                f"{self.block_bytes * self.cache_assoc} != 0)"
            )
        for name in (
            "cpu_cycle_ns",
            "link_ns_per_byte",
            "data_message_bytes",
            "control_message_bytes",
            "cache_hit_cycles",
            "memory_cycles",
            "poll_interval_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.data_message_bytes < self.block_bytes:
            raise ConfigError(
                "data_message_bytes must hold a full cache block "
                f"({self.data_message_bytes} < {self.block_bytes})"
            )
        if self.protocol not in PROTOCOLS:
            raise ConfigError(
                f"unknown protocol {self.protocol!r}; expected one of "
                f"{PROTOCOLS}"
            )
        if self.barrier not in BARRIERS:
            raise ConfigError(
                f"unknown barrier kind {self.barrier!r}; expected one of "
                f"{BARRIERS}"
            )
        if not isinstance(self.fault, FaultConfig):
            raise ConfigError(
                f"fault must be a FaultConfig, got {type(self.fault).__name__}"
            )
        if self.check not in CHECK_LEVELS:
            raise ConfigError(
                f"unknown check level {self.check!r}; expected one of "
                f"{CHECK_LEVELS}"
            )
        if self.engine_kernel not in ENGINE_KERNELS:
            raise ConfigError(
                f"unknown engine kernel {self.engine_kernel!r}; expected "
                f"one of {ENGINE_KERNELS}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def sets(self) -> int:
        """Number of cache sets."""
        return self.cache_size_bytes // (self.block_bytes * self.cache_assoc)

    @property
    def cache_hit_ns(self) -> int:
        """Cache hit time in nanoseconds."""
        return self.cache_hit_cycles * self.cpu_cycle_ns

    @property
    def memory_ns(self) -> int:
        """Local memory access time in nanoseconds."""
        return self.memory_cycles * self.cpu_cycle_ns

    @property
    def data_message_ns(self) -> int:
        """Contention-free transmission time of a data message.

        With 32-byte messages on 20 MB/s serial links this is 1600 ns:
        the paper's ``L`` parameter.
        """
        return self.data_message_bytes * self.link_ns_per_byte

    @property
    def control_message_ns(self) -> int:
        """Contention-free transmission time of a control message."""
        return self.control_message_bytes * self.link_ns_per_byte

    def cycles(self, n: int) -> int:
        """Convert ``n`` processor cycles to nanoseconds."""
        return n * self.cpu_cycle_ns

    def with_(self, **changes) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # -- canonical (de)serialization (run specs, caches, checkpoints) --------

    def to_dict(self) -> Dict:
        """JSON-ready form carrying *every* field.

        Iterating the dataclass fields keeps the serialization -- and
        therefore :meth:`~repro.runspec.RunSpec.spec_digest` -- in
        lockstep with the schema: a newly added configuration field is
        serialized automatically, so it can change a digest but never
        alias two different configurations under one key.
        """
        out: Dict = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = value.to_dict() if spec.name == "fault" else value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SystemConfig":
        """Rebuild from :meth:`to_dict` output.

        Strict on both sides -- unknown *and* missing fields raise a
        :class:`~repro.errors.ConfigError` -- so a checkpoint or cache
        entry written by a different schema version is rejected instead
        of silently resuming with default-filled fields.
        """
        names = {spec.name for spec in fields(cls)}
        unknown = set(data) - names
        missing = names - set(data)
        if unknown or missing:
            raise ConfigError(
                "system config was serialized by a different schema "
                f"(unknown fields: {sorted(unknown)}, "
                f"missing fields: {sorted(missing)})"
            )
        kwargs = dict(data)
        kwargs["fault"] = FaultConfig.from_dict(kwargs["fault"])
        return cls(**kwargs)


#: A ready-made configuration matching the paper's hardware with 8 nodes.
PAPER_CONFIG = SystemConfig()


def paper_config(processors: int, topology: str = "full", **overrides) -> SystemConfig:
    """Build the paper's hardware configuration for a given machine size."""
    return SystemConfig(processors=processors, topology=topology, **overrides)
