"""Cache line states for the supported coherence protocols.

The paper's target machine runs the **Berkeley** protocol
(invalidation-based, ownership-passing).  Its four states:

``INVALID``
    no usable copy,
``VALID``
    clean shared copy; memory (the home) is up to date,
``SHARED_DIRTY``
    this cache owns the block (memory stale) but other caches may hold
    ``VALID`` copies -- the owner supplies data on read misses,
``DIRTY``
    this cache owns the only copy (modified).

The paper argues (Sections 3.2 and 7) that a "fancier" protocol would
agree even more closely with the CLogP abstraction; to test that claim
the repository also implements the **Illinois/MESI** protocol, which
adds one state:

``EXCLUSIVE``
    the only cached copy, still *clean* -- a subsequent store upgrades
    it to ``DIRTY`` silently, with no directory transaction at all.

Ownership matters for the directory: on a miss the home forwards the
request to the owner (if any), and on eviction a *dirty* owned block
must be written back (an ``EXCLUSIVE`` line is clean and dies
silently).
"""

from __future__ import annotations

from enum import IntEnum


class LineState(IntEnum):
    """State of one cache line."""

    INVALID = 0
    VALID = 1
    SHARED_DIRTY = 2
    DIRTY = 3
    EXCLUSIVE = 4

    @property
    def is_valid(self) -> bool:
        """The line holds usable data (readable without a transaction)."""
        return self is not LineState.INVALID

    @property
    def is_owned(self) -> bool:
        """This cache must supply the data on another node's miss."""
        return self in (
            LineState.SHARED_DIRTY, LineState.DIRTY, LineState.EXCLUSIVE
        )

    @property
    def is_dirty(self) -> bool:
        """Memory is stale; eviction requires a writeback."""
        return self in (LineState.SHARED_DIRTY, LineState.DIRTY)

    @property
    def is_writable(self) -> bool:
        """A store can proceed without any coherence action."""
        return self is LineState.DIRTY
