"""The CC-NUMA shared address space.

Every node holds a slice of the globally shared memory.  Applications
allocate named :class:`SharedArray` regions with a *distribution policy*
that decides which node is the home of each cache block:

``"blocked"``
    contiguous chunks of the region per node (the natural layout for
    statically partitioned data: FFT points, CG rows, ...),
``"interleaved"``
    blocks assigned round-robin across nodes (spreads hot structures
    like global histograms),
``("node", i)``
    the whole region lives on node ``i`` (e.g. a lock or a global sum).

Addresses are plain integers.  Regions are block-aligned so a block
never straddles two regions, making the block -> home map well defined.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import AddressError, ConfigError

#: Distribution policy: a name or ("node", index).
Distribution = Union[str, Tuple[str, int]]


@dataclass
class Region:
    """One allocated region of the shared address space."""

    name: str
    base: int
    count: int
    elem_bytes: int
    distribution: Distribution
    nbytes: int
    #: First block id of the region.
    first_block: int
    #: Number of blocks in the region.
    nblocks: int

    @property
    def end(self) -> int:
        return self.base + self.nbytes


class SharedArray:
    """Typed view of a region: element index -> address."""

    __slots__ = ("region", "space")

    def __init__(self, region: Region, space: "AddressSpace"):
        self.region = region
        self.space = space

    @property
    def name(self) -> str:
        return self.region.name

    @property
    def base(self) -> int:
        return self.region.base

    @property
    def count(self) -> int:
        return self.region.count

    @property
    def elem_bytes(self) -> int:
        return self.region.elem_bytes

    def addr(self, index: int) -> int:
        """Address of element ``index`` (bounds-checked)."""
        if not 0 <= index < self.region.count:
            raise AddressError(
                f"index {index} out of range for array {self.region.name!r} "
                f"of {self.region.count} elements"
            )
        return self.region.base + index * self.region.elem_bytes

    def addrs(self, indices) -> Tuple[int, ...]:
        """Addresses of several elements."""
        return tuple(self.addr(i) for i in indices)

    def home(self, index: int) -> int:
        """Home node of element ``index``."""
        return self.space.home_of(self.addr(index))

    def __len__(self) -> int:
        return self.region.count

    def __repr__(self) -> str:
        return (
            f"<SharedArray {self.region.name} x{self.region.count} "
            f"@{self.region.base:#x}>"
        )


class AddressSpace:
    """Allocator and home-node map for the shared address space."""

    def __init__(self, nprocs: int, block_bytes: int):
        if nprocs < 1:
            raise ConfigError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.block_bytes = block_bytes
        self._next_base = block_bytes  # keep address 0 unused
        self._regions: List[Region] = []
        self._bases: List[int] = []
        #: block id -> home node memo (coherence asks for the same hot
        #: blocks constantly; invalidated whenever a region is added).
        self._home_cache: Dict[int, int] = {}

    # -- allocation --------------------------------------------------------------

    def alloc(
        self,
        name: str,
        count: int,
        elem_bytes: int,
        distribution: Distribution = "blocked",
        align_blocks_per_proc: bool = False,
        exact_nblocks: Optional[int] = None,
    ) -> SharedArray:
        """Allocate ``count`` elements of ``elem_bytes`` each.

        :param distribution: home-node policy (see module docstring).
        :param align_blocks_per_proc: for ``"blocked"``, pad the region so
            each node's chunk starts on a block boundary *and* all chunks
            are equal -- used when applications index "processor ``i``'s
            part" directly.
        :param exact_nblocks: force the region to span exactly this many
            blocks (used by trace replay to reproduce a recorded layout,
            padding included).
        """
        if count <= 0 or elem_bytes <= 0:
            raise ConfigError(
                f"array {name!r}: count and elem_bytes must be positive"
            )
        self._check_distribution(distribution)
        nbytes = count * elem_bytes
        # Round the region itself up to whole blocks.
        nblocks = -(-nbytes // self.block_bytes)
        if align_blocks_per_proc and distribution == "blocked":
            # Make block count a multiple of nprocs for clean chunks.
            nblocks = -(-nblocks // self.nprocs) * self.nprocs
        if exact_nblocks is not None:
            if exact_nblocks < nblocks:
                raise ConfigError(
                    f"array {name!r}: exact_nblocks={exact_nblocks} cannot "
                    f"hold {count} x {elem_bytes} bytes"
                )
            nblocks = exact_nblocks
        base = self._next_base
        region = Region(
            name=name,
            base=base,
            count=count,
            elem_bytes=elem_bytes,
            distribution=distribution,
            nbytes=nblocks * self.block_bytes,
            first_block=base // self.block_bytes,
            nblocks=nblocks,
        )
        self._next_base = region.end
        self._regions.append(region)
        self._bases.append(base)
        self._home_cache.clear()
        return SharedArray(region, self)

    def _check_distribution(self, distribution: Distribution) -> None:
        if isinstance(distribution, tuple):
            kind, node = distribution
            if kind != "node" or not 0 <= node < self.nprocs:
                raise ConfigError(f"bad distribution {distribution!r}")
        elif distribution not in ("blocked", "interleaved"):
            raise ConfigError(f"bad distribution {distribution!r}")

    # -- lookup --------------------------------------------------------------------

    def region_of(self, addr: int) -> Region:
        """The region containing ``addr``."""
        idx = bisect_right(self._bases, addr) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.base <= addr < region.end:
                return region
        raise AddressError(f"address {addr:#x} is not in any allocated region")

    def block_of(self, addr: int) -> int:
        """Global block id containing ``addr``."""
        return addr // self.block_bytes

    def home_of(self, addr: int) -> int:
        """Home node of the block containing ``addr``."""
        return self.home_of_block(self.block_of(addr), self.region_of(addr))

    def home_of_block(self, block: int, region: Optional[Region] = None) -> int:
        """Home node of a global block id (memoized)."""
        home = self._home_cache.get(block)
        if home is not None:
            return home
        if region is None:
            region = self.region_of(block * self.block_bytes)
        rel = block - region.first_block
        if not 0 <= rel < region.nblocks:
            raise AddressError(
                f"block {block} not in region {region.name!r}"
            )
        distribution = region.distribution
        if distribution == "blocked":
            per_node = -(-region.nblocks // self.nprocs)
            home = min(rel // per_node, self.nprocs - 1)
        elif distribution == "interleaved":
            home = rel % self.nprocs
        else:  # ("node", i)
            home = distribution[1]
        self._home_cache[block] = home
        return home

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    def __repr__(self) -> str:
        return (
            f"<AddressSpace nprocs={self.nprocs} block={self.block_bytes} "
            f"regions={len(self._regions)}>"
        )
