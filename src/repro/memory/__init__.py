"""Memory-hierarchy substrate.

Provides the CC-NUMA globally shared address space (every node owns a
"home" slice), the 2-way set-associative private cache, the Berkeley
protocol line states, and the fully-mapped directory -- the pieces the
machine models in :mod:`repro.core` assemble into the target machine's
full coherence protocol and CLogP's ideal (overhead-free) coherence.
"""

from .address import AddressSpace, SharedArray
from .cache import Cache, CacheLine
from .directory import Directory, DirectoryEntry
from .states import LineState

__all__ = [
    "AddressSpace",
    "SharedArray",
    "Cache",
    "CacheLine",
    "Directory",
    "DirectoryEntry",
    "LineState",
]
