"""Set-associative private cache with true-LRU replacement.

The paper's per-node cache: 64 KB, 2-way set-associative, 32-byte
blocks.  Only *state* is modeled (this is a timing simulator -- data
values live in the applications), so a line is a (tag, state) pair.

LRU is kept per set with an access counter rather than list reordering;
with the paper's 2-way associativity a min() over the set is cheap and
exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ProtocolError
from .states import LineState


class CacheLine:
    """One resident cache line: a (tag, state, LRU-stamp) triple."""

    __slots__ = ("block", "state", "last_use")

    def __init__(self, block: int, state: LineState, last_use: int):
        self.block = block
        self.state = state
        self.last_use = last_use

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(block={self.block}, state={self.state!r}, "
            f"last_use={self.last_use})"
        )


class Cache:
    """One node's private cache, indexed by global block id."""

    __slots__ = ("sets", "assoc", "_lines", "_by_block", "_clock",
                 "hits", "misses", "evictions", "dirty_evictions")

    def __init__(self, sets: int, assoc: int):
        if sets <= 0 or assoc <= 0:
            raise ProtocolError("cache geometry must be positive")
        self.sets = sets
        self.assoc = assoc
        #: set index -> list of resident lines (<= assoc entries).
        self._lines: List[List[CacheLine]] = [[] for _ in range(sets)]
        #: global block id -> resident line (only valid-state lines).
        self._by_block: Dict[int, CacheLine] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # -- lookup ---------------------------------------------------------------

    def set_index(self, block: int) -> int:
        """The set a block maps to."""
        return block % self.sets

    def state_of(self, block: int) -> LineState:
        """Current state of ``block`` (``INVALID`` when not resident)."""
        line = self._by_block.get(block)
        return line.state if line is not None else LineState.INVALID

    def lookup(self, block: int) -> Optional[CacheLine]:
        """Resident line for ``block``, touching LRU; None on miss."""
        line = self._by_block.get(block)
        if line is None:
            self.misses += 1
            return None
        self._clock += 1
        line.last_use = self._clock
        self.hits += 1
        return line

    def probe(self, block: int, need_write: bool) -> bool:
        """One-probe hit test for the machine fast paths.

        When the resident line can satisfy the access (any valid state
        for a read, ``DIRTY`` for a write) the LRU stamp is touched, the
        hit is counted, and True is returned.  Otherwise False -- with
        *no* miss counted, because the caller falls through to the full
        transaction path which does its own accounting.  Equivalent to
        ``state_of`` + ``lookup`` with a single dictionary probe.
        """
        line = self._by_block.get(block)
        if line is None:
            return False
        if need_write:
            if line.state is not LineState.DIRTY:
                return False
        self._clock += 1
        line.last_use = self._clock
        self.hits += 1
        return True

    def contains(self, block: int) -> bool:
        """True when ``block`` is resident in a valid state."""
        return block in self._by_block

    # -- mutation ---------------------------------------------------------------

    def install(
        self, block: int, state: LineState
    ) -> Optional[Tuple[int, LineState]]:
        """Bring ``block`` in with ``state``; return the victim if any.

        The victim is returned as ``(block, state)`` so the caller (the
        coherence engine) can write back owned blocks and update the
        directory.  Installing over an already-resident block just
        updates its state.
        """
        if state is LineState.INVALID:
            raise ProtocolError("cannot install a line in INVALID state")
        existing = self._by_block.get(block)
        self._clock += 1
        if existing is not None:
            existing.state = state
            existing.last_use = self._clock
            return None
        victim: Optional[Tuple[int, LineState]] = None
        content = self._lines[block % self.sets]
        if len(content) >= self.assoc:
            # Manual LRU scan: ``min(content, key=...)`` costs a lambda
            # frame per resident line on every eviction.
            oldest = content[0]
            stamp = oldest.last_use
            for line in content:
                if line.last_use < stamp:
                    oldest = line
                    stamp = line.last_use
            content.remove(oldest)
            del self._by_block[oldest.block]
            self.evictions += 1
            if oldest.state.is_dirty:
                self.dirty_evictions += 1
            victim = (oldest.block, oldest.state)
        line = CacheLine(block=block, state=state, last_use=self._clock)
        content.append(line)
        self._by_block[block] = line
        return victim

    def set_state(self, block: int, state: LineState) -> None:
        """Change the state of a resident line."""
        line = self._by_block.get(block)
        if line is None:
            raise ProtocolError(f"set_state on non-resident block {block}")
        if state is LineState.INVALID:
            self.invalidate(block)
        else:
            line.state = state

    def invalidate(self, block: int) -> LineState:
        """Drop ``block`` (no-op when absent); return its prior state."""
        line = self._by_block.pop(block, None)
        if line is None:
            return LineState.INVALID
        self._lines[self.set_index(block)].remove(line)
        return line.state

    # -- instrumentation -----------------------------------------------------------

    @property
    def resident_blocks(self) -> int:
        return len(self._by_block)

    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<Cache sets={self.sets} assoc={self.assoc} "
            f"resident={len(self._by_block)} hits={self.hits} "
            f"misses={self.misses}>"
        )
