"""Fully-mapped directory for the Berkeley protocol.

The paper's target machine keeps sequentially consistent caches with an
invalidation-based Berkeley protocol and a *fully-mapped* directory:
the home node of every block records the complete sharer set plus the
owning cache (if the block is dirty somewhere).  Entries are created
lazily -- an absent entry means "unowned, no sharers, memory clean".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from ..errors import ProtocolError


@dataclass
class DirectoryEntry:
    """Directory state of one block."""

    #: Cache that owns the block (holds it DIRTY or SHARED_DIRTY), if any.
    owner: Optional[int] = None

    #: All caches holding a valid copy (includes the owner).
    sharers: Set[int] = field(default_factory=set)

    @property
    def is_clean(self) -> bool:
        """Memory at the home holds the latest data."""
        return self.owner is None

    @property
    def is_idle(self) -> bool:
        """No cache holds the block at all."""
        return self.owner is None and not self.sharers

    def check(self) -> None:
        """Raise on violated invariants (used by tests and debug runs)."""
        if self.owner is not None and self.owner not in self.sharers:
            raise ProtocolError(
                f"owner {self.owner} missing from sharer set {self.sharers}"
            )


class Directory:
    """Lazily populated block -> :class:`DirectoryEntry` map."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, block: int) -> DirectoryEntry:
        """Entry for ``block``, created empty on first touch."""
        entry = self._entries.get(block)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[block] = entry
        return entry

    def peek(self, block: int) -> Optional[DirectoryEntry]:
        """Entry for ``block`` or None, without creating one."""
        return self._entries.get(block)

    def drop_if_idle(self, block: int) -> None:
        """Reclaim the entry when nobody caches the block."""
        entry = self._entries.get(block)
        if entry is not None and entry.is_idle:
            del self._entries[block]

    def blocks(self) -> Iterable[int]:
        """All blocks with live entries."""
        return self._entries.keys()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"<Directory entries={len(self._entries)}>"
