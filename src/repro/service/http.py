"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough protocol for a JSON service that must survive hostile
clients: request-line/header/body limits so a garbage or malicious
peer cannot balloon memory, read deadlines so a slow-loris client
cannot pin a connection task forever, persistent connections
(keep-alive) so a load generator is not throttled by handshakes, and
``Content-Length``-framed responses (no chunked encoding -- every
response body is a complete JSON document whose length is known).

Responses carry canonical JSON (sorted keys, no whitespace) so equal
payloads are equal *bytes* -- the property the coalescing and chaos
proofs assert end-to-end.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..runspec import canonical_json

#: Protocol limits: one oversized request must not balloon memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Seconds a connection may sit idle between keep-alive requests.
IDLE_TIMEOUT_S = 75.0
#: Seconds a client gets to deliver headers+body once it starts talking.
READ_TIMEOUT_S = 30.0

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequest(Exception):
    """The peer sent something that is not a well-formed request."""

    def __init__(self, status: int, detail: str):
        self.status = status
        self.detail = detail
        super().__init__(detail)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes = b""

    def json(self):
        """The body parsed as JSON (:class:`BadRequest` on garbage)."""
        if not self.body:
            raise BadRequest(400, "empty body where JSON was expected")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(400, f"body is not valid JSON: {exc}") from exc

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


@dataclass
class Response:
    """One response about to be framed onto the wire."""

    status: int
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)
    close: bool = False

    @classmethod
    def json(
        cls,
        status: int,
        payload,
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> "Response":
        """A canonical-JSON response (equal payloads -> equal bytes)."""
        return cls(
            status=status,
            body=canonical_json(payload).encode("utf-8"),
            headers=dict(headers or {}),
            close=close,
        )

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = {
            "content-type": "application/json",
            "content-length": str(len(self.body)),
            "connection": "close" if self.close else "keep-alive",
        }
        headers.update({k.lower(): v for k, v in self.headers.items()})
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body


async def _readline(reader: asyncio.StreamReader, limit: int) -> bytes:
    line = await reader.readline()
    if len(line) > limit:
        raise BadRequest(413, "request line or header too long")
    return line


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF between requests (the peer closed a
    keep-alive connection).  Raises :class:`BadRequest` on malformed
    input and :class:`asyncio.TimeoutError` when the peer stalls: idle
    time between requests is bounded by :data:`IDLE_TIMEOUT_S`, and a
    started request must finish arriving within :data:`READ_TIMEOUT_S`
    (the slow-loris bound).
    """
    first = await asyncio.wait_for(
        _readline(reader, MAX_REQUEST_LINE), timeout=IDLE_TIMEOUT_S
    )
    if not first:
        return None
    return await asyncio.wait_for(
        _read_rest(reader, first), timeout=READ_TIMEOUT_S
    )


async def _read_rest(reader: asyncio.StreamReader, first: bytes) -> Request:
    method, path = _parse_request_line(first)
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await _readline(reader, MAX_REQUEST_LINE)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise BadRequest(400, "connection closed mid-headers")
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise BadRequest(413, "header block too large")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError as exc:  # noqa: PERF203  # pragma: no cover
            raise BadRequest(400, "undecodable header") from exc
        if not _:
            raise BadRequest(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError as exc:
            raise BadRequest(400, f"bad content-length {length!r}") from exc
        if size < 0:
            raise BadRequest(400, f"bad content-length {length!r}")
        if size > MAX_BODY_BYTES:
            raise BadRequest(413, f"body of {size} bytes exceeds limit")
        body = await reader.readexactly(size)
    return Request(method=method, path=path, headers=headers, body=body)


def _parse_request_line(line: bytes) -> Tuple[str, str]:
    try:
        text = line.decode("ascii").rstrip("\r\n")
        method, target, version = text.split(" ")
    except (UnicodeDecodeError, ValueError) as exc:
        raise BadRequest(400, f"malformed request line {line!r}") from exc
    if not version.startswith("HTTP/1."):
        raise BadRequest(400, f"unsupported protocol {version!r}")
    # The service routes on the bare path; queries are not used.
    path = target.split("?", 1)[0]
    return method.upper(), path
