"""Circuit breaker: warm-cache-only mode when the pool crash-loops.

A crash-looping worker pool (bad host, OOM killer, poisoned spec) must
not take the whole daemon down with it: warm requests cost nothing and
stay correct, so the daemon keeps serving them and sheds only the cold
work that needs the sick backend.  Classic three-state breaker:

* **closed** -- cold work flows.  Every pool rebuild without an
  intervening completed point increments a consecutive-failure count
  (mirroring the supervisor's own degradation accounting); reaching
  ``max_rebuilds`` trips the breaker.
* **open** -- cold requests are refused (HTTP 503 with ``Retry-After``)
  until ``cooldown_s`` has elapsed.
* **half-open** -- exactly one cold request is admitted as a *probe*.
  The probe completing closes the breaker; the probe failing (or any
  rebuild while it is in flight) re-opens it for another cooldown.

Thread-safety: rebuild notifications arrive on the dispatcher thread
while admission decisions run on the event loop, so every transition
holds a lock.  The clock is injected for deterministic tests.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable, Tuple


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trips cold admission after too many consecutive pool rebuilds."""

    def __init__(
        self,
        max_rebuilds: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.max_rebuilds = max_rebuilds
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: Times the breaker tripped open over the daemon's lifetime.
        self.trips = 0

    # -- introspection -------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state.value,
                "consecutive_rebuilds": self._consecutive,
                "trips": self.trips,
                "probe_in_flight": self._probe_in_flight,
            }

    # -- events --------------------------------------------------------------

    def record_rebuild(self) -> None:
        """The backend rebuilt its pool (dispatcher thread)."""
        with self._lock:
            self._consecutive += 1
            if self._state is BreakerState.HALF_OPEN:
                # The pool broke again while probing: the probe has its
                # answer even if its request is still nominally in
                # flight.
                self._trip()
            elif (
                self._state is BreakerState.CLOSED
                and self._consecutive >= self.max_rebuilds
            ):
                self._trip()

    def record_success(self, probe: bool = False) -> None:
        """A point completed (a real simulation result came back)."""
        with self._lock:
            self._consecutive = 0
            if probe and self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._probe_in_flight = False

    def record_failure(self, probe: bool = False) -> None:
        """A point failed structurally (crash/deadline taxonomy)."""
        with self._lock:
            if probe and self._state is BreakerState.HALF_OPEN:
                self._trip()

    def _trip(self) -> None:
        # Caller holds the lock.
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self.trips += 1

    # -- admission -----------------------------------------------------------

    def allow_cold(self) -> Tuple[bool, bool, float]:
        """May a cold spec enter the backend right now?

        Returns ``(allowed, is_probe, retry_after_s)``.  In the open
        state ``retry_after_s`` is the remaining cooldown (floored at
        0.1 so clients never busy-spin); after the cooldown the breaker
        half-opens and admits exactly one probe.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True, False, 0.0
            now = self._clock()
            if self._state is BreakerState.OPEN:
                remaining = self.cooldown_s - (now - self._opened_at)
                if remaining > 0:
                    return False, False, max(remaining, 0.1)
                self._state = BreakerState.HALF_OPEN
                self._probe_in_flight = False
            # Half-open: one probe at a time.
            if self._probe_in_flight:
                return False, False, max(self.cooldown_s, 0.1)
            self._probe_in_flight = True
            return True, True, 0.0
