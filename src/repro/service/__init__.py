"""Simulation-as-a-service: the ``repro serve`` daemon.

The service layers a crash-tolerant HTTP/JSON front end over the run
service (DESIGN.md §9) and the supervised execution tier (§11):

* :mod:`repro.service.http` -- hand-rolled HTTP/1.1 framing over
  asyncio streams (stdlib only, keep-alive, bounded reads);
* :mod:`repro.service.stats` -- request counters and bounded latency
  reservoirs behind ``/stats``;
* :mod:`repro.service.breaker` -- the circuit breaker that trips the
  daemon into warm-cache-only mode when the pool crash-loops;
* :mod:`repro.service.dispatch` -- the thread bridging asyncio request
  handlers to the blocking :class:`SupervisedPoolBackend`;
* :mod:`repro.service.app` -- request lifecycle: admission control,
  single-flight coalescing, warm/cold routing, taxonomy-mapped errors;
* :mod:`repro.service.daemon` -- process wiring: sockets, signal
  handlers, graceful drain, exit codes.

See DESIGN.md §12 for the architecture and request state machine.
"""

from .app import ReproService, ServiceConfig
from .breaker import BreakerState, CircuitBreaker
from .daemon import serve

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ReproService",
    "ServiceConfig",
    "serve",
]
