"""In-process serving harness for tests and the chaos benchmark.

:func:`serve_in_thread` runs a full daemon -- real sockets, real HTTP
framing, real supervised pool -- on an event loop in a background
thread, and hands back a :class:`ServiceHandle` exposing:

* a blocking JSON client (``get``/``post``) over ``http.client`` with
  keep-alive, so tests exercise the same wire path curl would;
* the live :class:`~repro.service.app.ReproService` object, so tests
  can assert on counters, drive the breaker, or inject chaos seams;
* ``shutdown()``, which runs the same drain path SIGTERM triggers and
  returns the daemon's exit code.

Signal handlers cannot be installed off the main thread, so the
harness drives drain directly -- the daemon's ``_on_signal`` is a
thin wrapper over exactly this path (and the subprocess smoke test in
``benchmarks/service_smoke.py`` covers the real-signal route).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import Optional, Tuple

from .app import ReproService, ServiceConfig
from .daemon import Daemon


class ServiceHandle:
    """A running in-thread daemon plus a blocking client for it."""

    def __init__(self, daemon: Daemon, loop, thread: threading.Thread):
        self.daemon = daemon
        self.loop = loop
        self.thread = thread
        self._conn: Optional[http.client.HTTPConnection] = None
        self.exit_code: Optional[int] = None

    @property
    def service(self) -> ReproService:
        return self.daemon.service

    @property
    def port(self) -> int:
        return self.daemon.port

    # -- client --------------------------------------------------------------

    def connection(self) -> http.client.HTTPConnection:
        """One persistent keep-alive connection (lazily opened)."""
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.daemon.config.host, self.port, timeout=30
            )
        return self._conn

    def request(
        self,
        method: str,
        path: str,
        payload=None,
        conn: Optional[http.client.HTTPConnection] = None,
    ) -> Tuple[int, bytes, dict]:
        """One request; returns (status, raw body bytes, headers)."""
        conn = conn if conn is not None else self.connection()
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        return response.status, data, dict(response.getheaders())

    def get(self, path: str) -> Tuple[int, dict]:
        status, body, _ = self.request("GET", path)
        return status, json.loads(body.decode("utf-8"))

    def post(self, path: str, payload) -> Tuple[int, dict]:
        status, body, _ = self.request("POST", path, payload)
        return status, json.loads(body.decode("utf-8"))

    # -- coroutine bridge ----------------------------------------------------

    def call(self, coro, timeout: float = 30.0):
        """Run a coroutine on the daemon's loop from the test thread."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout=timeout)

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, timeout: float = 30.0) -> int:
        """Drain exactly as a SIGTERM would; return the exit code."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self.exit_code is None:
            self.loop.call_soon_threadsafe(self.daemon._on_signal)
            self.thread.join(timeout=timeout)
            if self.thread.is_alive():
                raise TimeoutError("daemon did not drain in time")
            self._watcher.join(timeout=5.0)
        return self.exit_code


def serve_in_thread(
    config: Optional[ServiceConfig] = None,
    service: Optional[ReproService] = None,
    start_timeout: float = 30.0,
) -> ServiceHandle:
    """Start a daemon on a background thread; returns once it listens."""
    config = config if config is not None else ServiceConfig(port=0)
    daemon = Daemon(
        config, service=service, announce=lambda *_args, **_kw: None
    )
    started = threading.Event()
    box: dict = {}

    async def _main():
        await daemon.start()
        box["loop"] = asyncio.get_running_loop()
        started.set()
        return await daemon.run_until_drained()

    def _thread_main():
        box["exit"] = asyncio.run(_main())

    thread = threading.Thread(
        target=_thread_main, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=start_timeout):
        raise TimeoutError("daemon failed to start listening")
    handle = ServiceHandle(daemon, box["loop"], thread)

    def _capture_exit():
        thread.join()
        handle.exit_code = box.get("exit")

    watcher = threading.Thread(target=_capture_exit, daemon=True)
    watcher.start()
    handle._watcher = watcher
    return handle
