"""Process wiring of ``repro serve``: sockets, signals, exit codes.

The daemon owns nothing clever -- all serving logic lives in
:class:`~repro.service.app.ReproService`.  What lives here is the
contract with the host:

* the listening socket (``--port 0`` binds an ephemeral port; the
  chosen address is printed as ``repro serve: listening on HOST:PORT``
  so harnesses can parse it);
* signal handling: the first SIGTERM/SIGINT starts the graceful drain
  (stop accepting, settle in-flight work against ``--drain-s``, flush
  store writes, tear the pool down); a second signal abandons the drain
  and exits immediately with the interrupted code;
* exit codes, matching the PR 6 sweep conventions: 0 for a clean drain,
  1 for an aborted daemon (unexpected exception), 130 for a hard
  interrupt (second signal).
"""

from __future__ import annotations

import asyncio
import sys
from typing import Optional

from ..signals import TERMINATION_SIGNALS
from .app import ReproService, ServiceConfig

#: Exit codes (the PR 6 conventions; see repro.cli).
EXIT_OK = 0
EXIT_ABORTED = 1
EXIT_INTERRUPTED = 130


class Daemon:
    """One serve lifetime: start, run until drained, report exit code."""

    def __init__(
        self,
        config: ServiceConfig,
        service: Optional[ReproService] = None,
        announce=print,
    ):
        self.config = config
        self.service = service if service is not None else ReproService(config)
        self._announce = announce
        self.exit_code = EXIT_OK
        self._server: Optional[asyncio.base_events.Server] = None
        self._hard_stop = asyncio.Event()
        #: Resolved listening port (after start; for --port 0).
        self.port: Optional[int] = None

    # -- signals -------------------------------------------------------------

    def _on_signal(self) -> None:
        if self.service.draining:
            # Second signal: the operator means it.  Abandon the drain.
            self.exit_code = EXIT_INTERRUPTED
            self._hard_stop.set()
            return
        if self._server is not None:
            # Stop accepting immediately; live connections drain.
            self._server.close()
        self.service.begin_drain()

    def _install_signal_handlers(self, loop) -> None:
        for sig in TERMINATION_SIGNALS:
            try:
                loop.add_signal_handler(sig, self._on_signal)
            except (NotImplementedError, RuntimeError):  # noqa: PERF203
                # Non-main-thread loops (the in-thread test harness)
                # cannot install handlers; drain is driven directly.
                return

    # -- lifetime ------------------------------------------------------------

    async def start(self) -> None:
        # (Re)create loop-bound primitives inside the running loop:
        # on 3.9 an Event made at construction time binds the wrong
        # loop when the daemon object outlives asyncio.run's.
        self._hard_stop = asyncio.Event()
        await self.service.start()
        self._server = await asyncio.start_server(
            self.service.handle_connection,
            host=self.config.host,
            port=self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers(asyncio.get_running_loop())
        self._announce(
            f"repro serve: listening on {self.config.host}:{self.port} "
            f"(jobs={self.service.backend.jobs}, "
            f"cache={self.config.cache_dir or 'off'})"
        )

    async def run_until_drained(self) -> int:
        """Serve until a drain completes (or a hard stop interrupts it)."""
        drained = asyncio.ensure_future(self.service.drained.wait())
        hard = asyncio.ensure_future(self._hard_stop.wait())
        try:
            done, _pending = await asyncio.wait(
                {drained, hard}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (drained, hard):
                task.cancel()
        # Stop accepting either way; drain already closed client
        # connections if it ran to completion.
        self._server.close()
        await self._server.wait_closed()
        if self._hard_stop.is_set():
            return EXIT_INTERRUPTED
        return self.exit_code

    async def run(self) -> int:
        await self.start()
        return await self.run_until_drained()


def serve(config: ServiceConfig) -> int:
    """Blocking entry point used by ``repro serve``."""
    try:
        return asyncio.run(Daemon(config).run())
    except KeyboardInterrupt:  # pragma: no cover - handler races teardown
        return EXIT_INTERRUPTED
    except Exception as exc:  # noqa: BLE001 - daemon boundary
        print(f"repro serve: aborted: {exc}", file=sys.stderr)
        return EXIT_ABORTED
