"""Request lifecycle of the simulation service.

One :class:`ReproService` owns the whole serving state machine.  A
``POST /run`` walks these stations, each designed so the failure of one
request (or one worker, or the whole pool) cannot corrupt another:

1. **parse** -- canonical spec (``{"spec": {...}}``) or build shorthand
   (``{"build": {...}}``); malformed input is a 400/422, never an
   exception escaping the handler;
2. **warm path** -- the in-memory body memo, then the checksummed
   :class:`~repro.exec.store.ResultStore`; a hit is served without
   touching the backend (correct by the determinism contract);
3. **admission** -- draining sheds (503), a full queue sheds (429 +
   ``Retry-After``), an open circuit breaker sheds cold work (503)
   while warm requests keep flowing;
4. **coalescing** -- concurrent identical cold specs share one
   *single-flight* entry keyed by ``spec_digest()``: one leader submits
   to the backend, followers await the same future, and everyone gets
   byte-identical bodies (or the same structured error if the leader's
   point fails);
5. **execution** -- the dispatcher thread feeds the supervised pool;
   worker crashes, deadlines, and rebuilds are the backend's problem
   and surface here only as outcomes or breaker state;
6. **response** -- a result is canonical JSON (bit-identical to any
   other serving of the same spec, ``wall_seconds`` normalized to 0 --
   it is host noise, not simulation output); a failure maps through
   the transient/permanent taxonomy to 5xx/4xx with a structured body.

Every response body is produced by exactly one function per shape, so
byte-level equality across warm/cold/coalesced paths is structural,
not coincidental.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from .. import errors
from ..apps import APPLICATIONS
from ..config import MACHINES
from ..core.accounting import RunResult
from ..errors import ConfigError, PermanentError, TransientError
from ..exec.backend import PointFailure, PointOutcome
from ..exec.policy import RetryPolicy
from ..exec.store import ResultStore
from ..exec.supervisor import SupervisedPoolBackend
from ..runspec import RunSpec, canonical_json
from .breaker import BreakerState, CircuitBreaker
from .dispatch import PoolDispatcher
from .http import BadRequest, Request, Response, read_request
from .stats import ServiceStats

#: Resolution of an abandoned coalescing entry during forced drain.
_DRAINED = object()

#: Keys :meth:`RunSpec.build` accepts from the ``build`` shorthand.
_BUILD_KEYS = frozenset({
    "app", "machine", "nprocs", "topology", "preset", "params", "seed",
    "check", "digest", "protocol", "barrier", "adaptive_g",
    "g_per_event_type", "batch_local", "max_events",
})


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can be told from the command line."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: Pool workers (the daemon always runs a supervised pool; values
    #: below 2 are clamped up -- a serving daemon needs headroom).
    jobs: int = 2
    cache_dir: Optional[str] = None
    #: Cold specs admitted but not yet resolved before 429s start.
    max_queue: int = 64
    #: Per-point wall-clock deadline (PR 6 machinery, in-worker SIGALRM
    #: plus host-side reclamation).
    deadline_s: Optional[float] = None
    #: Ceiling on how long any request may wait for its outcome.
    request_timeout_s: float = 60.0
    #: Transient-failure re-attempts per point.
    max_retries: int = 1
    #: Consecutive pool rebuilds before the breaker trips.
    breaker_rebuilds: int = 3
    #: Seconds the breaker stays open before half-opening a probe.
    breaker_cooldown_s: float = 5.0
    #: Seconds graceful drain waits for in-flight work.
    drain_s: float = 10.0
    #: Result-store size budget enforced by opportunistic gc (None:
    #: unbounded).
    max_store_bytes: Optional[int] = None
    #: Bodies kept in the in-memory memo (LRU).
    memo_entries: int = 4096
    #: Jitter seed of the retry policy (deterministic backoff).
    seed: int = 0


@dataclass
class _Pending:
    """One single-flight entry: a cold spec someone is simulating."""

    future: "asyncio.Future"
    #: This entry is the breaker's half-open probe.
    probe: bool = False
    #: Requests currently awaiting the future (diagnostics).
    waiters: int = 0
    spec: Optional[RunSpec] = None


# -- response bodies ----------------------------------------------------------------
# One constructor per shape: byte-identical responses are structural.


def result_payload(digest: str, result: RunResult) -> Dict:
    """The servable form of a result.

    ``wall_seconds`` is host-side measurement noise (the one field the
    determinism contract excludes), so it is normalized to 0.0: every
    serving of a spec -- warm, cold, coalesced, replayed after a crash
    -- is byte-identical.
    """
    data = result.to_dict()
    data["wall_seconds"] = 0.0
    return {"spec_digest": digest, "result": data}


def classify_failure(failure: PointFailure) -> Tuple[int, bool]:
    """(HTTP status, transient?) of a structured point failure."""
    exc_type = getattr(errors, failure.error, None)
    if not (isinstance(exc_type, type) and issubclass(exc_type, Exception)):
        return 500, False
    if failure.error == "DeadlineExpiredError":
        return 504, True
    if issubclass(exc_type, TransientError):
        return 503, True
    if issubclass(exc_type, PermanentError):
        return 422, False
    return 500, False


def failure_response(digest: str, failure: PointFailure) -> Response:
    status, transient = classify_failure(failure)
    headers = {"retry-after": "1"} if status == 503 else {}
    return Response.json(status, {
        "spec_digest": digest,
        "error": {
            "error": failure.error,
            "message": failure.message,
            "attempts": failure.attempts,
            "transient": transient,
        },
    }, headers=headers)


def shed_response(status: int, reason: str, retry_after_s: float) -> Response:
    retry_after = max(1, int(retry_after_s + 0.999))
    return Response.json(status, {
        "error": {
            "error": "Shed",
            "message": reason,
            "transient": True,
        },
    }, headers={"retry-after": str(retry_after)})


class ReproService:
    """The daemon's state: memo, coalescing table, breaker, stats."""

    def __init__(
        self,
        config: ServiceConfig,
        backend: Optional[SupervisedPoolBackend] = None,
        store: Optional[ResultStore] = None,
    ):
        self.config = config
        self.stats = ServiceStats()
        self.breaker = CircuitBreaker(
            max_rebuilds=config.breaker_rebuilds,
            cooldown_s=config.breaker_cooldown_s,
        )
        self.store = store if store is not None else (
            ResultStore(config.cache_dir)
            if config.cache_dir is not None else None
        )
        self.backend = backend if backend is not None else (
            SupervisedPoolBackend(
                jobs=max(2, config.jobs),
                policy=RetryPolicy(
                    max_retries=config.max_retries,
                    base_delay_s=0.05,
                    seed=config.seed,
                ),
                deadline_s=config.deadline_s,
                # The service-level breaker owns crash-loop handling;
                # in-process serial degradation is the last line, so
                # give the pool more rope than the breaker.
                max_rebuilds=max(config.breaker_rebuilds * 4, 12),
            )
        )
        self.backend.add_rebuild_listener(self._on_rebuild)
        self.dispatcher = PoolDispatcher(
            self.backend, self._deliver_threadsafe,
            retries=config.max_retries,
        )
        #: Single-flight table: digest -> pending entry.
        self.entries: Dict[str, _Pending] = {}
        #: LRU memo of servable 200 bodies, digest -> bytes.
        self._memo: "OrderedDict[str, bytes]" = OrderedDict()
        self.draining = False
        self.drained = asyncio.Event()
        self.started_at = time.monotonic()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight_http = 0
        self._store_tasks: Set["asyncio.Task"] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._drain_task: Optional["asyncio.Task"] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        # Recreated inside the running loop: a 3.9 Event binds its loop
        # at construction, and the service object may be built earlier.
        self.drained = asyncio.Event()
        self.dispatcher.start()

    # -- backend callbacks (dispatcher thread) -------------------------------

    def _on_rebuild(self) -> None:
        self.breaker.record_rebuild()

    def _deliver_threadsafe(self, spec: RunSpec, outcome: PointOutcome) -> None:
        if self._loop is None or self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(self._deliver, spec, outcome)
        except RuntimeError:  # pragma: no cover - loop closed mid-call
            pass

    # -- outcome delivery (event loop) ---------------------------------------

    def _deliver(self, spec: RunSpec, outcome: PointOutcome) -> None:
        digest = spec.spec_digest()
        entry = self.entries.pop(digest, None)
        probe = entry.probe if entry is not None else False
        if isinstance(outcome, PointFailure):
            self.stats.failed_points += 1
            self.breaker.record_failure(probe=probe)
        else:
            self.stats.simulated += 1
            self.stats.note_engine(outcome)
            self.breaker.record_success(probe=probe)
            self._memo_put(digest, outcome)
            self._persist(spec, outcome)
        if entry is not None and not entry.future.done():
            entry.future.set_result(outcome)

    def _persist(self, spec: RunSpec, result: RunResult) -> None:
        """Write-behind store put (+ opportunistic gc), tracked so
        drain can flush it."""
        if self.store is None or self._loop is None:
            return
        task = self._loop.create_task(self._persist_async(spec, result))
        self._store_tasks.add(task)
        task.add_done_callback(self._store_tasks.discard)

    async def _persist_async(self, spec: RunSpec, result: RunResult) -> None:
        try:
            await asyncio.to_thread(self.store.put, spec, result)
        except OSError:  # pragma: no cover - disk trouble: keep serving
            return
        budget = self.config.max_store_bytes
        if budget is not None and self.store.stores % 32 == 0:
            await asyncio.to_thread(self.store.gc, budget)

    # -- memo ----------------------------------------------------------------

    def _memo_put(self, digest: str, result: RunResult) -> None:
        body = canonical_json(result_payload(digest, result)).encode("utf-8")
        self._memo[digest] = body
        self._memo.move_to_end(digest)
        while len(self._memo) > self.config.memo_entries:
            self._memo.popitem(last=False)

    def _memo_get(self, digest: str) -> Optional[bytes]:
        body = self._memo.get(digest)
        if body is not None:
            self._memo.move_to_end(digest)
        return body

    # -- spec parsing --------------------------------------------------------

    @staticmethod
    def _validated(spec: RunSpec) -> RunSpec:
        """Reject specs that would only fail inside a worker.

        ``RunSpec.build`` defers app/machine validation to simulation
        time; a service must refuse them at admission so a typo is a
        422, not a burned pool slot and a 500.
        """
        if spec.app not in APPLICATIONS:
            raise BadRequest(
                422,
                f"unknown app {spec.app!r}; known: {sorted(APPLICATIONS)}",
            )
        if spec.machine not in MACHINES:
            raise BadRequest(
                422,
                f"unknown machine {spec.machine!r}; known: {list(MACHINES)}",
            )
        return spec

    @classmethod
    def parse_spec(cls, payload) -> RunSpec:
        """A RunSpec from a request payload (canonical or shorthand)."""
        if not isinstance(payload, dict):
            raise BadRequest(400, "payload must be a JSON object")
        if "spec" in payload:
            try:
                return cls._validated(RunSpec.from_dict(payload["spec"]))
            except ConfigError as exc:
                raise BadRequest(422, f"invalid spec: {exc}") from exc
        if "build" in payload:
            build = payload["build"]
            if not isinstance(build, dict):
                raise BadRequest(400, "'build' must be a JSON object")
            unknown = set(build) - _BUILD_KEYS
            if unknown:
                raise BadRequest(
                    422, f"unknown build field(s): {sorted(unknown)}"
                )
            try:
                return cls._validated(RunSpec.build(**build))
            except (ConfigError, TypeError, KeyError) as exc:
                raise BadRequest(422, f"invalid build: {exc}") from exc
        raise BadRequest(400, "payload needs a 'spec' or 'build' key")

    def _request_timeout(self, payload) -> float:
        timeout = payload.get("timeout_s") if isinstance(payload, dict) else None
        if timeout is None:
            return self.config.request_timeout_s
        try:
            timeout = float(timeout)
        except (TypeError, ValueError) as exc:
            raise BadRequest(400, f"bad timeout_s {timeout!r}") from exc
        if timeout <= 0:
            raise BadRequest(400, "timeout_s must be positive")
        return min(timeout, self.config.request_timeout_s)

    # -- the cold/warm state machine -----------------------------------------

    async def serve_spec(self, spec: RunSpec, timeout_s: float) -> Response:
        start = time.monotonic()
        digest = spec.spec_digest()

        body = self._memo_get(digest)
        if body is not None:
            self.stats.warm_memo += 1
            self.stats.warm_latency.record(time.monotonic() - start)
            return Response(200, body, {"x-repro-source": "memo"})

        if self.store is not None:
            result = await asyncio.to_thread(self.store.get, spec)
            if result is not None:
                self.stats.warm_store += 1
                self._memo_put(digest, result)
                self.stats.warm_latency.record(time.monotonic() - start)
                return Response(
                    200, self._memo_get(digest), {"x-repro-source": "store"}
                )

        # Cold: the spec needs a simulation.
        if self.draining:
            self.stats.shed_drain += 1
            return shed_response(503, "service is draining", 1.0)
        entry = self.entries.get(digest)
        coalesced = entry is not None
        if entry is None:
            if len(self.entries) >= self.config.max_queue:
                self.stats.shed_queue += 1
                return shed_response(
                    429,
                    f"admission queue is full "
                    f"({len(self.entries)} >= {self.config.max_queue})",
                    1.0,
                )
            allowed, probe, retry_after = self.breaker.allow_cold()
            if not allowed:
                self.stats.shed_breaker += 1
                return shed_response(
                    503,
                    "circuit breaker is open: serving warm cache only",
                    retry_after,
                )
            entry = _Pending(
                future=self._loop.create_future(), probe=probe, spec=spec
            )
            self.entries[digest] = entry
            self.stats.cold_leaders += 1
            self.dispatcher.submit(spec)
        else:
            self.stats.coalesce_hits += 1

        entry.waiters += 1
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(entry.future), timeout=timeout_s
            )
        except asyncio.TimeoutError:
            self.stats.deadline_expired += 1
            return Response.json(504, {
                "spec_digest": digest,
                "error": {
                    "error": "DeadlineExpiredError",
                    "message": (
                        f"request deadline of {timeout_s:g} s expired while "
                        f"the point was "
                        f"{'coalesced behind' if coalesced else 'queued for'}"
                        f" simulation"
                    ),
                    "transient": True,
                },
            })
        finally:
            entry.waiters -= 1

        self.stats.cold_latency.record(time.monotonic() - start)
        if outcome is _DRAINED:
            self.stats.shed_drain += 1
            return shed_response(
                503, "service drained before the point completed", 1.0
            )
        if isinstance(outcome, PointFailure):
            return failure_response(digest, outcome)
        body = self._memo_get(digest)
        if body is None:  # pragma: no cover - memo evicted same-tick
            body = canonical_json(result_payload(digest, outcome)).encode()
        return Response(200, body, {
            "x-repro-source": "coalesced" if coalesced else "simulated",
        })

    # -- endpoints -----------------------------------------------------------

    async def _handle_run(self, request: Request) -> Response:
        payload = request.json()
        spec = self.parse_spec(payload)
        timeout_s = self._request_timeout(payload)
        return await self.serve_spec(spec, timeout_s)

    async def _handle_batch(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict) or not isinstance(
            payload.get("runs"), list
        ):
            raise BadRequest(400, "payload needs a 'runs' list")
        runs = payload["runs"]
        if len(runs) > 1024:
            raise BadRequest(413, f"batch of {len(runs)} exceeds 1024 runs")
        specs = [self.parse_spec(item) for item in runs]
        timeout_s = self._request_timeout(payload)
        responses = await asyncio.gather(
            *(self.serve_spec(spec, timeout_s) for spec in specs)
        )
        return Response.json(200, {
            "results": [
                {"status": r.status, "body": json.loads(r.body.decode())}
                for r in responses
            ],
        })

    def _handle_healthz(self) -> Response:
        return Response.json(200, {"status": "ok"})

    def _store_health(self) -> Dict:
        if self.store is None:
            return {"configured": False}
        writable = True
        try:
            self.store.root.mkdir(parents=True, exist_ok=True)
            writable = os.access(self.store.root, os.W_OK)
        except OSError:
            writable = False
        size = self.store.size_bytes()
        budget = self.config.max_store_bytes
        return {
            "configured": True,
            "writable": writable,
            "bytes": size,
            "max_bytes": budget,
            "over_budget": bool(budget is not None and size > budget),
        }

    def _handle_readyz(self) -> Response:
        store_health = self._store_health()
        backend_alive = self.dispatcher.alive()
        breaker = self.breaker.snapshot()
        ready = (
            not self.draining
            and backend_alive
            and breaker["state"] != BreakerState.OPEN.value
            and store_health.get("writable", True)
        )
        return Response.json(200 if ready else 503, {
            "ready": ready,
            "draining": self.draining,
            "backend_alive": backend_alive,
            "breaker": breaker,
            "store": store_health,
            "queue_depth": len(self.entries),
            "max_queue": self.config.max_queue,
        })

    def _handle_stats(self) -> Response:
        snapshot = self.stats.snapshot()
        snapshot.update({
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "queue_depth": len(self.entries),
            "inflight_http": self._inflight_http,
            "draining": self.draining,
            "breaker": self.breaker.snapshot(),
            "backend": self.backend.stats(),
            "store": (
                dict(self.store.stats(), bytes=self.store.size_bytes())
                if self.store is not None else None
            ),
        })
        return Response.json(200, snapshot)

    # -- routing and connection handling -------------------------------------

    async def dispatch(self, request: Request) -> Response:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return self._handle_healthz()
        if route == ("GET", "/readyz"):
            return self._handle_readyz()
        if route == ("GET", "/stats"):
            return self._handle_stats()
        if route == ("POST", "/run"):
            return await self._handle_run(request)
        if route == ("POST", "/batch"):
            return await self._handle_batch(request)
        if request.path in ("/run", "/batch", "/healthz", "/readyz", "/stats"):
            return Response.json(405, {
                "error": {"error": "MethodNotAllowed",
                          "message": f"{request.method} {request.path}"},
            })
        return Response.json(404, {
            "error": {"error": "NotFound", "message": request.path},
        })

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as exc:  # noqa: PERF203 -- request loop
                    self.stats.bad_requests += 1
                    response = Response.json(
                        exc.status,
                        {"error": {"error": "BadRequest",
                                   "message": exc.detail}},
                        close=True,
                    )
                    self.stats.record_response(response.status)
                    writer.write(response.encode())
                    await writer.drain()
                    return
                except (asyncio.TimeoutError,  # noqa: PERF203
                        asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                self._inflight_http += 1
                try:
                    try:
                        response = await self.dispatch(request)
                    except BadRequest as exc:
                        self.stats.bad_requests += 1
                        response = Response.json(exc.status, {
                            "error": {"error": "BadRequest",
                                      "message": exc.detail},
                        })
                    except asyncio.CancelledError:
                        raise
                    except Exception as exc:  # noqa: BLE001 - boundary
                        response = Response.json(500, {
                            "error": {"error": type(exc).__name__,
                                      "message": str(exc)},
                        })
                finally:
                    self._inflight_http -= 1
                if request.wants_close or self.draining:
                    response.close = True
                self.stats.record_response(response.status)
                try:
                    writer.write(response.encode())
                    await writer.drain()
                except ConnectionError:  # noqa: PERF203 -- peer went away
                    return
                if response.close:
                    return
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
            except Exception:  # pragma: no cover - already dead
                pass

    # -- graceful drain ------------------------------------------------------

    def begin_drain(self) -> "asyncio.Task":
        """Idempotently start the drain sequence (signal-handler safe)."""
        if self._drain_task is None:
            self._drain_task = self._loop.create_task(self.drain())
        return self._drain_task

    async def drain(self) -> None:
        """Stop taking cold work, settle in-flight, flush, shut down.

        The sequence honours ``drain_s`` as a hard deadline: in-flight
        points get that long to finish; whatever remains is resolved
        with a structured drain error (no waiter ever hangs) and the
        backend is aborted.  Store write-behind tasks are always
        flushed -- results that were computed are never thrown away.
        """
        if self.draining:
            return
        self.draining = True
        deadline = self._loop.time() + self.config.drain_s
        while (
            (self.entries or self._inflight_http)
            and self._loop.time() < deadline
        ):
            await asyncio.sleep(0.02)
        abandoned = bool(self.entries)
        if abandoned:
            for entry in list(self.entries.values()):
                if not entry.future.done():
                    entry.future.set_result(_DRAINED)
            self.entries.clear()
            # Give abandoned waiters one tick to observe the result.
            await asyncio.sleep(0.05)
            await asyncio.to_thread(self.dispatcher.force_stop)
        else:
            await asyncio.to_thread(self.dispatcher.stop)
        if self._store_tasks:
            await asyncio.gather(
                *list(self._store_tasks), return_exceptions=True
            )
        await asyncio.to_thread(self.backend.close)
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:  # noqa: PERF203  # pragma: no cover
                pass
        self.drained.set()
