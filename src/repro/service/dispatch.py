"""The bridge between asyncio handlers and the blocking backend.

:class:`SupervisedPoolBackend.run` is a blocking generator over a
batch; an asyncio daemon needs single-spec submission that never blocks
the event loop.  :class:`PoolDispatcher` owns one worker thread that
repeatedly drains a thread-safe queue into a batch, feeds the batch
through the backend, and posts each ``(spec, outcome)`` back onto the
event loop with ``call_soon_threadsafe``.  Specs queued while a batch
is running simply form the next batch -- the supervisor's windowed
submission keeps all pool workers busy either way.

The dispatcher is also where backend *infrastructure* failures (a bug,
not a :class:`PointFailure`) are contained: an exception escaping
``backend.run`` is converted into a structured failure for every spec
of the batch that had not streamed back yet, so a waiter can never hang
on a silently dead executor thread.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, List, Optional

from ..errors import ReproError
from ..exec.backend import PointOutcome, failure_from
from ..exec.supervisor import SupervisedPoolBackend
from ..runspec import RunSpec

#: Sentinel asking the dispatcher thread to exit.
_SHUTDOWN = object()

#: Callback receiving completed points on the dispatcher thread; the
#: service wraps it in ``loop.call_soon_threadsafe``.
Deliver = Callable[[RunSpec, PointOutcome], None]


class PoolDispatcher:
    """One thread feeding queued specs through the supervised backend."""

    def __init__(
        self,
        backend: SupervisedPoolBackend,
        deliver: Deliver,
        retries: int = 1,
    ):
        self.backend = backend
        self._deliver = deliver
        self._retries = retries
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closing = False
        self._thread = threading.Thread(
            target=self._run, name="repro-dispatch", daemon=True
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def alive(self) -> bool:
        return self._thread.is_alive()

    def submit(self, spec: RunSpec) -> None:
        """Queue one spec (event-loop thread; never blocks)."""
        self._queue.put(spec)

    def stop(self, timeout_s: float = 5.0) -> bool:
        """Ask the thread to exit after its current batch; join it."""
        self._closing = True
        self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=timeout_s)
        return not self._thread.is_alive()

    def force_stop(self, timeout_s: float = 5.0) -> bool:
        """Abort mid-batch: kill the pool out from under the run loop.

        ``abort`` breaks every outstanding worker future, which wakes
        the blocked run loop; it observes the abort flag and returns
        without rebuilding.  Outcomes the batch never produced are the
        caller's problem -- the service resolves abandoned waiters with
        a drain error before calling this.
        """
        self._closing = True
        self.backend.abort()
        self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=timeout_s)
        return not self._thread.is_alive()

    # -- the dispatcher thread -----------------------------------------------

    def _next_batch(self) -> Optional[List[RunSpec]]:
        """Block for one spec, then drain everything else queued."""
        item = self._queue.get()
        batch: List[RunSpec] = []
        while True:
            if item is _SHUTDOWN:
                self._closing = True
            else:
                batch.append(item)
            try:
                item = self._queue.get_nowait()
            except queue.Empty:  # noqa: PERF203 -- drain loop
                break
        if self._closing and not batch:
            return None
        return batch

    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            pending = {spec.spec_digest(): spec for spec in batch}
            try:
                for spec, outcome in self.backend.run(batch, self._retries):
                    pending.pop(spec.spec_digest(), None)
                    self._deliver(spec, outcome)
                    if self._closing:
                        break
            except BaseException as exc:  # noqa: BLE001 - must not die silently
                # Infrastructure failure (not a PointFailure): fail the
                # rest of the batch structurally so no waiter hangs.
                for spec in pending.values():
                    self._deliver(spec, failure_from(spec, exc, attempts=1))
                pending.clear()
            if self._closing:
                # Specs abandoned by abort() get no outcome on purpose;
                # the service already resolved their waiters.
                return
            # Belt and braces: the supervisor promises an outcome per
            # spec, but a waiter hanging on a broken promise is the one
            # unacceptable failure mode for a server.
            for spec in pending.values():
                self._deliver(
                    spec,
                    failure_from(
                        spec, ReproError("backend dropped the point"), 1
                    ),
                )
