"""Service instrumentation: counters and bounded latency reservoirs.

Everything behind ``/stats``.  The reservoirs are fixed-size (the last
N observations), so a daemon serving millions of requests holds O(1)
memory; p50/p99 are computed over the retained window on demand --
``/stats`` is a diagnostic endpoint, not a hot path.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional


class LatencyReservoir:
    """Sliding window of request latencies with percentile queries."""

    def __init__(self, capacity: int = 4096):
        self._window: deque = deque(maxlen=capacity)
        self.count = 0

    def record(self, seconds: float) -> None:
        self._window.append(seconds)
        self.count += 1

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (0..100) of the window, or None."""
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, Optional[float]]:
        def _ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value * 1000.0, 3)

        return {
            "count": self.count,
            "p50_ms": _ms(self.percentile(50)),
            "p99_ms": _ms(self.percentile(99)),
        }


class ServiceStats:
    """Counters of everything the daemon did since it started."""

    def __init__(self):
        #: Requests fully handled, by endpoint and by status code.
        self.requests = 0
        self.by_status: Dict[str, int] = {}
        #: Spec lookups answered without touching the backend.
        self.warm_memo = 0
        self.warm_store = 0
        #: Cold lookups that created a coalescing entry (leaders).
        self.cold_leaders = 0
        #: Cold lookups that joined an existing in-flight entry.
        self.coalesce_hits = 0
        #: Simulations completed by the backend on our behalf -- the
        #: counter the coalescing proof asserts against.
        self.simulated = 0
        #: Point failures delivered by the backend.
        self.failed_points = 0
        #: Requests refused: queue full / breaker open / draining.
        self.shed_queue = 0
        self.shed_breaker = 0
        self.shed_drain = 0
        #: Requests that hit their per-request deadline (504).
        self.deadline_expired = 0
        #: Protocol-level rejects (bad JSON, bad spec, bad route).
        self.bad_requests = 0
        #: Latency windows, split warm/cold (a cold p99 includes the
        #: simulation; mixing them would hide warm-path regressions).
        self.warm_latency = LatencyReservoir()
        self.cold_latency = LatencyReservoir()
        #: Engine-kernel metadata of the last cold (actually simulated)
        #: run: kernel name, scheduling counters, and host events/sec.
        self.last_engine: Optional[Dict] = None

    # -- recording -----------------------------------------------------------

    def record_response(self, status: int) -> None:
        self.requests += 1
        key = str(status)
        self.by_status[key] = self.by_status.get(key, 0) + 1

    def note_engine(self, result) -> None:
        """Record which kernel ran the last cold simulation.

        ``result`` is a :class:`~repro.core.accounting.RunResult`; its
        ``engine`` dict carries the deterministic scheduling counters
        (heap pops, ring pops, free-list reuse).  Events/sec is
        computed here from the host wall-clock -- it belongs to this
        host's diagnostics, not to the content-addressed result.
        """
        engine = getattr(result, "engine", None)
        if engine is None:
            return
        snapshot = dict(engine)
        wall = getattr(result, "wall_seconds", 0.0)
        if wall and wall > 0:
            snapshot["events_per_sec"] = round(result.sim_events / wall, 1)
        else:
            snapshot["events_per_sec"] = None
        self.last_engine = snapshot

    # -- reporting -----------------------------------------------------------

    @property
    def warm_hits(self) -> int:
        return self.warm_memo + self.warm_store

    def cache_hit_ratio(self) -> Optional[float]:
        """Warm hits over all spec lookups that got an answer."""
        total = self.warm_hits + self.cold_leaders + self.coalesce_hits
        if total == 0:
            return None
        return self.warm_hits / total

    def snapshot(self) -> Dict:
        ratio = self.cache_hit_ratio()
        return {
            "requests": self.requests,
            "by_status": dict(sorted(self.by_status.items())),
            "warm_memo": self.warm_memo,
            "warm_store": self.warm_store,
            "warm_hits": self.warm_hits,
            "cold_leaders": self.cold_leaders,
            "coalesce_hits": self.coalesce_hits,
            "simulated": self.simulated,
            "failed_points": self.failed_points,
            "shed_queue": self.shed_queue,
            "shed_breaker": self.shed_breaker,
            "shed_drain": self.shed_drain,
            "deadline_expired": self.deadline_expired,
            "bad_requests": self.bad_requests,
            "cache_hit_ratio": None if ratio is None else round(ratio, 4),
            "warm_latency": self.warm_latency.snapshot(),
            "cold_latency": self.cold_latency.snapshot(),
            "engine": self.last_engine,
        }
