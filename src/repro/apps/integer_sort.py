"""IS -- the NAS Integer Sort kernel.

Keys uniform in ``[0, buckets)`` are block-distributed.  Each ranking
iteration:

1. every processor histograms its local keys (local work),
2. the local histograms are merged into a *shared global histogram*
   under mutual-exclusion locks (the paper: "it uses locks for mutual
   exclusion during the execution") -- the histogram is split into a few
   lock-guarded chunks, and only buckets the processor actually touched
   are read-modify-written,
3. processor 0 prefix-sums the global histogram,
4. every processor ranks its own keys by gathering the bucket offsets
   it needs (irregular but statically determined reads).

Barriers separate the phases.  The final ranks are verified to be a
permutation that sorts the keys.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from ..core import ops
from ..engine.rng import RandomStreams
from ..memory.address import AddressSpace
from .base import Application, block_partition

#: Number of lock-guarded chunks of the global histogram.
HISTOGRAM_LOCKS = 8

#: Integer ops charged per key during local histogramming / ranking.
KEY_COST_OPS = 6

#: Stored size of a key / bucket counter, bytes.
INT_BYTES = 4


class IntegerSort(Application):
    """NAS IS: parallel bucket/counting rank of random integer keys."""

    name = "is"

    def __init__(self, nprocs: int, keys: int = 4_096, buckets: int = 512,
                 iterations: int = 2):
        super().__init__(nprocs)
        if keys < nprocs or buckets < 2 or iterations < 1:
            raise ValueError("bad IS parameters")
        self.nkeys = keys
        self.nbuckets = buckets
        self.iterations = iterations
        #: Shared global histogram values (functional state).
        self.hist_values = np.zeros(buckets, dtype=np.int64)
        #: Final key ranks (functional result).
        self.rank_values = np.zeros(keys, dtype=np.int64)
        self._prefix = np.zeros(buckets, dtype=np.int64)
        self._local_hists: List[np.ndarray] = [None] * nprocs

    # -- setup -----------------------------------------------------------------

    def _setup(self, space: AddressSpace, streams: RandomStreams) -> None:
        rng = streams.fresh("is_keys")
        self.keys = rng.integers(0, self.nbuckets, size=self.nkeys)
        self.key_array = space.alloc(
            "is_keys", self.nkeys, INT_BYTES, "blocked",
            align_blocks_per_proc=True,
        )
        # The shared histogram is the hot structure: interleave its
        # blocks round-robin so no single home node melts.
        self.hist_array = space.alloc(
            "is_hist", self.nbuckets, INT_BYTES, "interleaved"
        )
        self.rank_array = space.alloc(
            "is_ranks", self.nkeys, INT_BYTES, "blocked",
            align_blocks_per_proc=True,
        )

    # -- helpers -----------------------------------------------------------------

    def _chunk_of(self, bucket: int) -> int:
        """Which lock guards this bucket."""
        per_chunk = -(-self.nbuckets // HISTOGRAM_LOCKS)
        return bucket // per_chunk

    # -- the parallel program -------------------------------------------------------

    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        lo, hi = block_partition(self.nkeys, self.nprocs, pid)
        my_keys = self.keys[lo:hi]
        for _iteration in range(self.iterations):
            # Phase 1: local histogram (local reads + integer work).
            yield ops.ReadRange(
                self.key_array.addr(lo), hi - lo, INT_BYTES
            )
            yield self.int_ops(len(my_keys) * KEY_COST_OPS)
            local = np.bincount(my_keys, minlength=self.nbuckets).astype(np.int64)
            self._local_hists[pid] = local
            touched = np.nonzero(local)[0]
            # Phase 2: merge into the global histogram under chunk locks.
            per_chunk = -(-self.nbuckets // HISTOGRAM_LOCKS)
            for chunk in range(HISTOGRAM_LOCKS):
                chunk_buckets = touched[
                    (touched >= chunk * per_chunk)
                    & (touched < (chunk + 1) * per_chunk)
                ]
                if len(chunk_buckets) == 0:
                    continue
                addrs = self.hist_array.addrs(chunk_buckets)
                yield ops.Lock(chunk)
                yield ops.ReadMany(addrs)
                yield self.int_ops(len(chunk_buckets))
                yield ops.WriteMany(addrs)
                self.hist_values[chunk_buckets] += local[chunk_buckets]
                yield ops.Unlock(chunk)
            yield ops.Barrier(0)
            # Phase 3: processor 0 prefix-sums the histogram.
            if pid == 0:
                yield ops.ReadRange(
                    self.hist_array.addr(0), self.nbuckets, INT_BYTES
                )
                yield self.int_ops(self.nbuckets)
                self._prefix = np.concatenate(
                    ([0], np.cumsum(self.hist_values)[:-1])
                )
                yield ops.WriteRange(
                    self.hist_array.addr(0), self.nbuckets, INT_BYTES
                )
                # Reset counts for the next iteration.
                self.hist_values[:] = 0
            yield ops.Barrier(0)
            # Phase 4: rank local keys -- gather the offsets we need.
            yield ops.ReadMany(self.hist_array.addrs(np.unique(my_keys)))
            yield self.int_ops(len(my_keys) * KEY_COST_OPS)
            self.rank_values[lo:hi] = self._compute_ranks(pid, my_keys)
            yield ops.WriteRange(
                self.rank_array.addr(lo), hi - lo, INT_BYTES
            )
            yield ops.Barrier(0)

    def _compute_ranks(self, pid: int, my_keys: np.ndarray) -> np.ndarray:
        """Stable global ranks of this processor's keys."""
        # Keys equal to k in lower-numbered processors rank first.
        earlier = np.zeros(self.nbuckets, dtype=np.int64)
        for other in range(pid):
            other_hist = self._local_hists[other]
            if other_hist is not None:
                earlier += other_hist
        base = self._prefix[my_keys] + earlier[my_keys]
        # ... then stable order within the processor.
        within = np.zeros(len(my_keys), dtype=np.int64)
        seen = {}
        for position, key in enumerate(my_keys):
            occurrence = seen.get(key, 0)
            within[position] = occurrence
            seen[key] = occurrence + 1
        return base + within

    # -- verification ------------------------------------------------------------------

    def verify(self) -> bool:
        ranks = self.rank_values
        if sorted(ranks) != list(range(self.nkeys)):
            return False
        ordered = np.empty(self.nkeys, dtype=np.int64)
        ordered[ranks] = self.keys
        return bool(np.all(np.diff(ordered) >= 0))
