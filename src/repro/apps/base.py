"""Application base class and partitioning helpers.

An application is constructed with a processor count and problem
parameters, allocates its shared data in :meth:`Application.setup`, and
exposes one generator per processor from :meth:`Application.proc_main`.
The generator yields :mod:`repro.core.ops` operations; any *functional*
computation happens in plain Python against the application's own numpy
arrays, while the yielded operations tell the machine model which
shared addresses the computation touched.

Cost model
----------
The applications charge explicit :class:`~repro.core.ops.Compute`
cycles for their arithmetic.  The constants below are a coarse model of
the paper's 33 MHz SPARC: a handful of cycles per floating-point
operation, fewer for integer work.  Only *ratios* between computation
and communication matter for the figures, so precision beyond that is
not needed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Tuple

from ..core import ops
from ..engine.rng import RandomStreams
from ..errors import ApplicationError
from ..memory.address import AddressSpace

#: Cycles charged per floating-point operation.
FLOP_CYCLES = 6

#: Cycles charged per integer/bookkeeping operation.
INT_CYCLES = 2


def block_partition(count: int, nprocs: int, pid: int) -> Tuple[int, int]:
    """Contiguous ``[start, end)`` slice of ``count`` items for ``pid``.

    The first ``count % nprocs`` processors get one extra item, matching
    how the NAS benchmarks block-distribute work.
    """
    base = count // nprocs
    extra = count % nprocs
    start = pid * base + min(pid, extra)
    size = base + (1 if pid < extra else 0)
    return start, start + size


class Application(ABC):
    """Base class for simulated parallel applications."""

    #: Registry name (e.g. ``"fft"``); also used in figure labels.
    name: str = "abstract"

    #: When True, :func:`~repro.core.runner.simulate` raises if
    #: verification fails instead of just recording it.
    strict_verify: bool = True

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise ApplicationError("nprocs must be >= 1")
        self.nprocs = nprocs
        self._setup_done = False

    # -- life cycle ------------------------------------------------------------

    def setup(self, space: AddressSpace, streams: RandomStreams) -> None:
        """Allocate shared arrays and generate input data."""
        if self._setup_done:
            raise ApplicationError(
                f"application {self.name!r} reused across runs; construct "
                "a fresh instance per simulation"
            )
        self._setup_done = True
        self._setup(space, streams)

    @abstractmethod
    def _setup(self, space: AddressSpace, streams: RandomStreams) -> None:
        """Subclass hook for :meth:`setup`."""

    @abstractmethod
    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        """The operation stream of processor ``pid``."""

    def verify(self) -> bool:
        """Functional self-check after the simulation completes."""
        return True

    # -- yield helpers -----------------------------------------------------------

    @staticmethod
    def flops(n: int) -> ops.Compute:
        """Compute operation charging ``n`` floating-point operations."""
        return ops.Compute(n * FLOP_CYCLES)

    @staticmethod
    def int_ops(n: int) -> ops.Compute:
        """Compute operation charging ``n`` integer operations."""
        return ops.Compute(n * INT_CYCLES)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} nprocs={self.nprocs}>"
