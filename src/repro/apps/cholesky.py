"""CHOLESKY -- sparse Cholesky factorization with dynamic scheduling.

Modeled on the SPLASH CHOLESKY benchmark: a left-looking sparse column
factorization in which *columns are tasks* handed out from a shared,
lock-protected work queue.  A column ``j`` becomes ready once every
column ``k < j`` with ``L[j,k] != 0`` has completed; completing a column
decrements its dependents' counters and pushes newly ready columns.

Which processor factors which column -- and therefore the entire
communication pattern -- is decided *in simulated time* by the order in
which processors win the queue lock.  This is the dynamic behaviour the
paper contrasts with the static applications: "CHOLESKY uses a
dynamically maintained queue of runnable tasks", so its locality cannot
be exploited by static placement.

The input is constructed as ``A = L0 @ L0.T`` for a random sparse
lower-triangular ``L0`` with positive diagonal; by uniqueness of the
Cholesky factorization the exact factor *is* ``L0``, there is no
numerical fill outside ``pattern(L0)``, and verification can demand the
simulated factorization reproduce ``L0`` to machine precision -- which
only happens if the dynamic schedule respected every dependence.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..core import ops
from ..engine.rng import RandomStreams
from ..memory.address import AddressSpace
from .base import Application

#: Lock id guarding the task queue.
SCHED_LOCK = 0

#: Base lock id for the per-column dependence counters (fine-grained,
#: as in SPLASH; counter for column j uses lock COUNTER_LOCK_BASE + j).
COUNTER_LOCK_BASE = 16

#: Stored size of one matrix value / queue slot, bytes.
ELEM_BYTES = 8

#: Bookkeeping cycles charged per scheduler interaction.
SCHED_OPS = 20


class Cholesky(Application):
    """SPLASH-style sparse Cholesky with a dynamic task queue."""

    name = "cholesky"

    def __init__(self, nprocs: int, n: int = 192, density: float = 0.10):
        super().__init__(nprocs)
        if n < 2 or not 0.0 < density <= 1.0:
            raise ValueError("bad Cholesky parameters")
        self.n = n
        self.density = density
        #: Which processor factored each column (filled during the run).
        self.column_owner = [-1] * n
        self._completed = 0
        self._version = 0
        self._head = 0
        self._queue: List[int] = []

    # -- setup -----------------------------------------------------------------

    def _setup(self, space: AddressSpace, streams: RandomStreams) -> None:
        rng = streams.fresh("cholesky")
        n = self.n
        # Random sparse lower-triangular factor with positive diagonal.
        lower = np.tril(
            (rng.random((n, n)) < self.density).astype(float)
            * rng.uniform(-0.5, 0.5, (n, n)),
            k=-1,
        )
        diag = rng.uniform(1.0, 2.0, n)
        self.L0 = lower + np.diag(diag)
        A = self.L0 @ self.L0.T

        #: Row indices of each column's structural nonzeros (>= j).
        self.col_rows: List[np.ndarray] = [
            np.nonzero(self.L0[:, j])[0] for j in range(n)
        ]
        #: Current numeric values of each column (restricted to pattern).
        self.col_values: List[np.ndarray] = [
            A[self.col_rows[j], j].copy() for j in range(n)
        ]
        #: deps[j]: columns k < j whose completion column j awaits.
        self.deps: List[np.ndarray] = [
            np.nonzero(self.L0[j, :j])[0] for j in range(n)
        ]
        #: dependents[k]: columns j > k unlocked (partially) by k.
        self.dependents: List[List[int]] = [[] for _ in range(n)]
        for j in range(n):
            for k in self.deps[j]:
                self.dependents[int(k)].append(j)
        self.dep_count = np.array([len(d) for d in self.deps])

        # cmod(j, k) index maps: positions updated in col j, the matching
        # positions in col k, and where row j sits in col k.
        self._cmod_maps: Dict[Tuple[int, int], Tuple] = {}
        row_pos = [
            {int(r): i for i, r in enumerate(self.col_rows[j])}
            for j in range(n)
        ]
        for j in range(n):
            for k in self.deps[j]:
                k = int(k)
                pos_k = row_pos[k]
                idx_j, idx_k = [], []
                for i, row in enumerate(self.col_rows[j]):
                    pk = pos_k.get(int(row))
                    if pk is not None:
                        idx_j.append(i)
                        idx_k.append(pk)
                self._cmod_maps[(j, k)] = (
                    np.array(idx_j, dtype=int),
                    np.array(idx_k, dtype=int),
                    pos_k[j],
                )

        # Shared data: one region per column, homes round-robin -- but a
        # column is factored by whoever pops it, so home != writer in
        # general (dynamic scheduling defeats placement).
        self.col_arrays = [
            space.alloc(
                f"chol_col{j}", len(self.col_rows[j]), ELEM_BYTES,
                ("node", j % self.nprocs),
            )
            for j in range(n)
        ]
        self.queue_array = space.alloc("chol_queue", n, ELEM_BYTES, ("node", 0))
        self.dep_count_array = space.alloc(
            "chol_depcnt", n, ELEM_BYTES, "interleaved"
        )
        # head, tail words.
        self.ht_array = space.alloc("chol_ht", 2, ELEM_BYTES, ("node", 0))
        self.flag_array = space.alloc("chol_flag", 1, ELEM_BYTES, ("node", 0))

        # Seed the queue with leaf columns (no dependences).
        self._queue = [j for j in range(n) if self.dep_count[j] == 0]

    # -- the parallel program -----------------------------------------------------------

    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        head_addr = self.ht_array.addr(0)
        tail_addr = self.ht_array.addr(1)
        flag_addr = self.flag_array.addr(0)
        n = self.n
        while True:
            yield ops.Lock(SCHED_LOCK)
            yield ops.Read(head_addr)
            yield ops.Read(tail_addr)
            yield self.int_ops(SCHED_OPS)
            if self._head < len(self._queue):
                column = self._queue[self._head]
                yield ops.Read(self.queue_array.addr(self._head))
                self._head += 1
                yield ops.Write(head_addr)
                yield ops.Unlock(SCHED_LOCK)
                self.column_owner[column] = pid
                yield from self._factor_column(pid, column)
            else:
                done = self._completed == n
                version = self._version
                yield ops.Unlock(SCHED_LOCK)
                if done:
                    return
                yield ops.WaitFlag(flag_addr, version + 1, cmp="ge")

    def _factor_column(self, pid: int, j: int) -> Iterator[ops.Op]:
        """cmod(j, k) for every completed source k, then cdiv(j)."""
        own = self.col_arrays[j]
        own_len = len(self.col_rows[j])
        values_j = self.col_values[j]
        for k in self.deps[j]:
            k = int(k)
            source = self.col_arrays[k]
            source_len = len(self.col_rows[k])
            # Read the source column (produced -- and cached dirty -- by
            # whichever processor factored it).
            yield ops.ReadRange(source.addr(0), source_len, ELEM_BYTES)
            idx_j, idx_k, pos_jk = self._cmod_maps[(j, k)]
            multiplier = self.col_values[k][pos_jk]
            yield self.flops(2 * len(idx_j) + 2)
            values_j[idx_j] -= multiplier * self.col_values[k][idx_k]
            yield ops.ReadMany(own.addrs(idx_j))
            yield ops.WriteMany(own.addrs(idx_j))
        # cdiv(j): scale by the square root of the diagonal.
        yield ops.ReadRange(own.addr(0), own_len, ELEM_BYTES)
        yield self.flops(own_len + 2)
        pivot = float(np.sqrt(values_j[0]))
        values_j[0] = pivot
        values_j[1:] /= pivot
        yield ops.WriteRange(own.addr(0), own_len, ELEM_BYTES)
        # Completion: decrement dependents under fine-grained counter
        # locks (SPLASH-style), then push any newly ready columns.
        ready: List[int] = []
        for dependent in self.dependents[j]:
            yield ops.Lock(COUNTER_LOCK_BASE + dependent)
            yield ops.Read(self.dep_count_array.addr(dependent))
            yield ops.Write(self.dep_count_array.addr(dependent))
            self.dep_count[dependent] -= 1
            if self.dep_count[dependent] == 0:
                ready.append(dependent)
            yield ops.Unlock(COUNTER_LOCK_BASE + dependent)
        yield ops.Lock(SCHED_LOCK)
        for column in ready:
            yield ops.Write(self.queue_array.addr(len(self._queue)))
            yield ops.Write(self.ht_array.addr(1))
            self._queue.append(column)
        yield self.int_ops(SCHED_OPS)
        self._completed += 1
        if ready or self._completed == self.n:
            self._version += 1
            yield ops.SetFlag(self.flag_array.addr(0), self._version)
        yield ops.Unlock(SCHED_LOCK)

    # -- verification ------------------------------------------------------------------

    def verify(self) -> bool:
        if self._completed != self.n:
            return False
        if self._head != self.n or len(self._queue) != self.n:
            return False
        factor = np.zeros((self.n, self.n))
        for j in range(self.n):
            factor[self.col_rows[j], j] = self.col_values[j]
        return bool(np.allclose(factor, self.L0, atol=1e-9))
