"""The application suite.

Faithful, scaled-down reimplementations of the paper's five parallel
programs (Section 4):

* :class:`~repro.apps.ep.EP` -- NAS Embarrassingly Parallel: huge
  compute/communication ratio, condition-variable chain at the end,
* :class:`~repro.apps.integer_sort.IntegerSort` -- NAS IS: bucket/rank
  sort with a lock-protected global histogram,
* :class:`~repro.apps.cg.CG` -- NAS Conjugate Gradient: static row
  blocks, irregular sparse reads,
* :class:`~repro.apps.fft.FFT` -- radix-2 FFT with a remote-read
  communication phase exhibiting spatial locality,
* :class:`~repro.apps.cholesky.Cholesky` -- SPLASH sparse Cholesky:
  dynamically scheduled column tasks off a lock-protected queue.

Every application computes a real answer and self-checks it in
``verify()``; they are execution-driven in the sense that dynamic
scheduling and lock-grant order are resolved in simulated time.
"""

from .base import Application, block_partition
from .ep import EP
from .integer_sort import IntegerSort
from .cg import CG
from .fft import FFT
from .cholesky import Cholesky
from .jacobi import Jacobi
from .mg import MG

#: Application registry by paper name (plus the "jacobi" and "mg"
#: extensions: stencil kernels used as communication-locality probes).
APPLICATIONS = {
    "ep": EP,
    "is": IntegerSort,
    "cg": CG,
    "fft": FFT,
    "cholesky": Cholesky,
    "jacobi": Jacobi,
    "mg": MG,
}


def make_app(name: str, nprocs: int, **params) -> Application:
    """Instantiate an application by registry name."""
    try:
        cls = APPLICATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(APPLICATIONS)}"
        ) from None
    return cls(nprocs, **params)


__all__ = [
    "Application",
    "block_partition",
    "EP",
    "IntegerSort",
    "CG",
    "FFT",
    "Cholesky",
    "Jacobi",
    "MG",
    "APPLICATIONS",
    "make_app",
]
