"""CG -- the NAS Conjugate Gradient kernel.

Solves ``A x = b`` for a random sparse symmetric positive-definite
matrix with the unpreconditioned conjugate-gradient method.  Rows (and
the corresponding slices of every vector) are block-assigned to
processors at "compile time" (static scheduling, as the paper notes),
but the *columns* touched by the sparse matrix-vector product are
data-dependent: computing ``q = A p`` gathers irregular, unpredictable
elements of the shared direction vector ``p`` -- the communication that
makes CG's locality impossible to exploit statically.

Dot products are reduced through a lock-protected shared accumulator.
Verification checks that the CG residual actually decreased the way the
numerically identical sequential recurrence says it should.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from ..core import ops
from ..engine.rng import RandomStreams
from ..memory.address import AddressSpace
from .base import Application, block_partition

#: Stored size of a vector element, bytes.
ELEM_BYTES = 8

#: Lock id for the dot-product accumulator.
DOT_LOCK = 0


class CG(Application):
    """Unpreconditioned conjugate gradient on a random sparse SPD matrix."""

    name = "cg"

    def __init__(self, nprocs: int, n: int = 512, nnz_per_row: int = 6,
                 iterations: int = 4):
        super().__init__(nprocs)
        if n < nprocs or nnz_per_row < 1 or iterations < 1:
            raise ValueError("bad CG parameters")
        self.n = n
        self.nnz_per_row = nnz_per_row
        self.iterations = iterations
        self.residuals: List[float] = []
        self._dot_value = 0.0
        self._dot_result = 0.0
        self._dot_contributions = 0

    # -- setup -----------------------------------------------------------------

    def _setup(self, space: AddressSpace, streams: RandomStreams) -> None:
        rng = streams.fresh("cg_matrix")
        n = self.n
        # Random symmetric sparsity with a dominant diagonal => SPD.
        dense = np.zeros((n, n))
        for i in range(n):
            cols = rng.choice(n, size=self.nnz_per_row, replace=False)
            vals = rng.uniform(-1.0, 1.0, size=self.nnz_per_row)
            dense[i, cols] += vals
        dense = (dense + dense.T) / 2.0
        dense[np.arange(n), np.arange(n)] = np.abs(dense).sum(axis=1) + 1.0
        self.A = dense
        #: Per-row column indices of structural nonzeros.
        self.row_cols = [np.nonzero(dense[i])[0] for i in range(n)]
        self.b = rng.standard_normal(n)

        # Run state (functional).
        self.x = np.zeros(n)
        self.r = self.b.copy()
        self.p = self.r.copy()
        self.q = np.zeros(n)
        self._rho = float(self.r @ self.r)
        self.residuals = [float(np.sqrt(self._rho))]

        # Shared arrays: all vectors blocked by rows.
        self.p_array = space.alloc("cg_p", n, ELEM_BYTES, "blocked",
                                   align_blocks_per_proc=True)
        self.q_array = space.alloc("cg_q", n, ELEM_BYTES, "blocked",
                                   align_blocks_per_proc=True)
        self.x_array = space.alloc("cg_x", n, ELEM_BYTES, "blocked",
                                   align_blocks_per_proc=True)
        self.r_array = space.alloc("cg_r", n, ELEM_BYTES, "blocked",
                                   align_blocks_per_proc=True)
        # The dot-product accumulator lives on node 0.
        self.dot_array = space.alloc("cg_dot", 1, ELEM_BYTES, ("node", 0))

    # -- reduction helper -----------------------------------------------------------

    def _reduce(self, pid: int, contribution: float):
        """Lock-protected accumulation into the shared scalar.

        Returns (via generator return) the fully reduced value.  The
        result is latched by the last contributor, and every processor
        reads it right after the closing barrier -- before anyone can
        start the next reduction -- so the latch is race-free.
        """
        yield ops.Lock(DOT_LOCK)
        yield ops.Read(self.dot_array.addr(0))
        yield self.flops(1)
        yield ops.Write(self.dot_array.addr(0))
        self._dot_value += contribution
        self._dot_contributions += 1
        if self._dot_contributions == self.nprocs:
            self._dot_result = self._dot_value
            self._dot_value = 0.0
            self._dot_contributions = 0
        yield ops.Unlock(DOT_LOCK)
        yield ops.Barrier(0)
        # Everybody reads the reduced value.
        yield ops.Read(self.dot_array.addr(0))
        return self._dot_result

    # -- the parallel program ----------------------------------------------------------

    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        lo, hi = block_partition(self.n, self.nprocs, pid)
        rows = range(lo, hi)
        my_len = hi - lo
        for iteration in range(self.iterations):
            # q = A p over my rows: the irregular gather of p.
            for i in rows:
                cols = self.row_cols[i]
                yield ops.ReadMany(self.p_array.addrs(cols))
                yield self.flops(2 * len(cols))
            self.q[lo:hi] = self.A[lo:hi] @ self.p
            yield ops.WriteRange(self.q_array.addr(lo), my_len, ELEM_BYTES)
            # alpha = rho / (p . q): local partial then global reduce.
            yield ops.ReadRange(self.p_array.addr(lo), my_len, ELEM_BYTES)
            yield ops.ReadRange(self.q_array.addr(lo), my_len, ELEM_BYTES)
            yield self.flops(2 * my_len)
            partial_pq = float(self.p[lo:hi] @ self.q[lo:hi])
            pq = yield from self._reduce(pid, partial_pq)
            alpha = self._rho / pq
            # x += alpha p ; r -= alpha q  (all local rows).
            yield ops.ReadRange(self.x_array.addr(lo), my_len, ELEM_BYTES)
            yield ops.WriteRange(self.x_array.addr(lo), my_len, ELEM_BYTES)
            yield ops.ReadRange(self.r_array.addr(lo), my_len, ELEM_BYTES)
            yield ops.WriteRange(self.r_array.addr(lo), my_len, ELEM_BYTES)
            yield self.flops(4 * my_len)
            self.x[lo:hi] += alpha * self.p[lo:hi]
            self.r[lo:hi] -= alpha * self.q[lo:hi]
            # rho' = r . r: second reduction.
            yield self.flops(2 * my_len)
            partial_rr = float(self.r[lo:hi] @ self.r[lo:hi])
            rho_new = yield from self._reduce(pid, partial_rr)
            beta = rho_new / self._rho
            # p = r + beta p (writes p, which everyone gathers next
            # iteration -- the coherence hot spot).
            yield ops.ReadRange(self.r_array.addr(lo), my_len, ELEM_BYTES)
            yield ops.WriteRange(self.p_array.addr(lo), my_len, ELEM_BYTES)
            yield self.flops(2 * my_len)
            self.p[lo:hi] = self.r[lo:hi] + beta * self.p[lo:hi]
            yield ops.Barrier(0)
            if pid == 0:
                self._rho = rho_new
                self.residuals.append(float(np.sqrt(rho_new)))
            yield ops.Barrier(0)

    # -- verification ------------------------------------------------------------------

    def verify(self) -> bool:
        # The run must have recorded one residual per iteration...
        if len(self.residuals) != self.iterations + 1:
            return False
        # ... the simulated recurrence must match a sequential CG ...
        expected = self._sequential_residuals()
        if not np.allclose(self.residuals, expected, rtol=1e-6):
            return False
        # ... and CG must actually be converging.
        return self.residuals[-1] < 0.9 * self.residuals[0]

    def _sequential_residuals(self) -> List[float]:
        x = np.zeros(self.n)
        r = self.b.copy()
        p = r.copy()
        rho = float(r @ r)
        out = [float(np.sqrt(rho))]
        for _ in range(self.iterations):
            q = self.A @ p
            alpha = rho / float(p @ q)
            x += alpha * p
            r -= alpha * q
            rho_new = float(r @ r)
            out.append(float(np.sqrt(rho_new)))
            p = r + (rho_new / rho) * p
            rho = rho_new
        return out
