"""MG -- a NAS-style multigrid kernel (extension to the paper's suite).

A 1-D Poisson V-cycle in the spirit of the NAS MG benchmark:
damped-Jacobi smoothing on a hierarchy of vertex-centered grids
(``2^k - 1`` points per level), full-weighting restriction of the
residual, linear-interpolation prolongation of the correction.  Every
level's grid is block-distributed, so the kernel exercises a
communication structure none of the paper's applications has: halo
exchanges at *multiple granularities* -- at coarse levels each
processor's slice shrinks until neighbour elements that were distant at
the fine level become adjacent, and ever more of the stencil reads turn
remote.

Like the rest of the suite the computation is real: each phase computes
its slice against a snapshot of the previous phase (the FFT/Jacobi
technique), and verification compares the final solution against a
sequential execution of the numerically identical V-cycle, plus a check
that the cycles actually reduced the residual.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from ..core import ops
from ..engine.rng import RandomStreams
from ..errors import ApplicationError
from ..memory.address import AddressSpace
from .base import Application, block_partition

#: Stored size of one grid element, bytes.
ELEM_BYTES = 8

#: Damping factor of the Jacobi smoother (2/3 is optimal for 1-D).
OMEGA = 2.0 / 3.0

#: Floating-point operations per point for a smoothing sweep.
SMOOTH_FLOPS = 6

#: Minimum coarsest-grid size, as a multiple of the processor count.
MIN_COARSE_FACTOR = 4

#: Smoothing sweeps used as the coarsest-level "solve".
COARSE_SWEEPS = 8


def smooth(u: np.ndarray, f: np.ndarray, h2: float) -> np.ndarray:
    """One damped-Jacobi sweep for -u'' = f with zero boundaries."""
    padded = np.concatenate(([0.0], u, [0.0]))
    jacobi = (padded[:-2] + padded[2:] + h2 * f) / 2.0
    return (1.0 - OMEGA) * u + OMEGA * jacobi


def residual(u: np.ndarray, f: np.ndarray, h2: float) -> np.ndarray:
    """r = f + u'' on the interior (zero-boundary 3-point stencil)."""
    padded = np.concatenate(([0.0], u, [0.0]))
    return f - (2.0 * u - padded[:-2] - padded[2:]) / h2


def restrict(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction: coarse i sits at fine 2i+1."""
    return 0.25 * fine[0:-2:2] + 0.5 * fine[1::2] + 0.25 * fine[2::2]


def prolong(coarse: np.ndarray, fine_size: int) -> np.ndarray:
    """Linear-interpolation prolongation (adjoint of full weighting)."""
    fine = np.zeros(fine_size)
    fine[1::2] = coarse
    padded = np.concatenate(([0.0], coarse, [0.0]))
    fine[0::2] = 0.5 * (padded[:-1] + padded[1:])
    return fine


class MG(Application):
    """1-D multigrid V-cycles over block-distributed grid levels."""

    name = "mg"

    def __init__(self, nprocs: int, n: int = 1_023, cycles: int = 2,
                 smoothing: int = 1):
        super().__init__(nprocs)
        if (n + 1) & n or n < 2 * MIN_COARSE_FACTOR * nprocs:
            raise ApplicationError(
                f"n must be 2^k - 1 and at least "
                f"{2 * MIN_COARSE_FACTOR * nprocs} for {nprocs} processors"
            )
        if cycles < 1 or smoothing < 1:
            raise ApplicationError("cycles and smoothing must be >= 1")
        self.n = n
        self.cycles = cycles
        self.smoothing = smoothing
        #: Grid sizes per level, finest first (all 2^k - 1).
        self.sizes: List[int] = [n]
        while (self.sizes[-1] - 1) // 2 >= MIN_COARSE_FACTOR * nprocs:
            self.sizes.append((self.sizes[-1] - 1) // 2)
        #: Working state per level (functional).
        self.u: List[np.ndarray] = []
        self.f: List[np.ndarray] = []
        self._snapshots: Dict[int, np.ndarray] = {}
        self.residual_norms: List[float] = []

    # -- setup -----------------------------------------------------------------

    def _setup(self, space: AddressSpace, streams: RandomStreams) -> None:
        rng = streams.fresh("mg")
        self.rhs = rng.standard_normal(self.n)
        self.u = [np.zeros(size) for size in self.sizes]
        self.f = [np.zeros(size) for size in self.sizes]
        self.f[0] = self.rhs.copy()
        self.u_arrays = [
            space.alloc(f"mg_u{level}", size, ELEM_BYTES, "blocked",
                        align_blocks_per_proc=True)
            for level, size in enumerate(self.sizes)
        ]
        self.f_arrays = [
            space.alloc(f"mg_f{level}", size, ELEM_BYTES, "blocked",
                        align_blocks_per_proc=True)
            for level, size in enumerate(self.sizes)
        ]
        self.residual_norms = [float(np.linalg.norm(self.rhs))]
        self._phase = [0] * self.nprocs

    # -- helpers ------------------------------------------------------------------

    def _h2(self, level: int) -> float:
        h = 1.0 / (self.sizes[level] + 1)
        return h * h

    def _phase_barrier(self, pid: int, snapshot_of: np.ndarray):
        """Advance to the next phase; first arriver snapshots."""
        yield ops.Barrier(0)
        self._phase[pid] += 1
        phase = self._phase[pid]
        if phase not in self._snapshots:
            self._snapshots[phase] = snapshot_of.copy()
            self._snapshots.pop(phase - 3, None)
        return self._snapshots[phase]

    # -- the parallel program ------------------------------------------------------------

    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        levels = len(self.sizes)
        for _cycle in range(self.cycles):
            # Downward leg: smooth, then restrict the residual.
            for level in range(levels - 1):
                for _sweep in range(self.smoothing):
                    yield from self._smooth_phase(pid, level)
                yield from self._restrict_phase(pid, level)
            # Coarsest level: extra smoothing sweeps as the solve.
            for _sweep in range(COARSE_SWEEPS):
                yield from self._smooth_phase(pid, levels - 1)
            # Upward leg: prolongate the correction, then smooth.
            for level in range(levels - 2, -1, -1):
                yield from self._prolong_phase(pid, level)
                for _sweep in range(self.smoothing):
                    yield from self._smooth_phase(pid, level)
            yield from self._norm_phase(pid)
        yield ops.Barrier(0)

    def _smooth_phase(self, pid: int, level: int):
        snapshot = yield from self._phase_barrier(pid, self.u[level])
        size = self.sizes[level]
        lo, hi = block_partition(size, self.nprocs, pid)
        u_array = self.u_arrays[level]
        # Halo elements from the neighbours, own slice, rhs, update.
        if lo > 0:
            yield ops.Read(u_array.addr(lo - 1))
        if hi < size:
            yield ops.Read(u_array.addr(hi))
        yield ops.ReadRange(u_array.addr(lo), hi - lo, ELEM_BYTES)
        yield ops.ReadRange(
            self.f_arrays[level].addr(lo), hi - lo, ELEM_BYTES
        )
        yield self.flops(SMOOTH_FLOPS * (hi - lo))
        yield ops.WriteRange(u_array.addr(lo), hi - lo, ELEM_BYTES)
        updated = smooth(snapshot, self.f[level], self._h2(level))
        self.u[level][lo:hi] = updated[lo:hi]

    def _restrict_phase(self, pid: int, level: int):
        snapshot = yield from self._phase_barrier(pid, self.u[level])
        coarse_size = self.sizes[level + 1]
        lo, hi = block_partition(coarse_size, self.nprocs, pid)
        # Coarse point i reads fine points 2i, 2i+1, 2i+2 of the
        # residual, which itself reads the fine u and f slices.
        fine_u = self.u_arrays[level]
        fine_f = self.f_arrays[level]
        fine_lo, fine_span = 2 * lo, 2 * (hi - lo) + 1
        yield ops.ReadRange(fine_u.addr(fine_lo), fine_span, ELEM_BYTES)
        yield ops.ReadRange(fine_f.addr(fine_lo), fine_span, ELEM_BYTES)
        yield self.flops(10 * (hi - lo))
        yield ops.WriteRange(
            self.f_arrays[level + 1].addr(lo), hi - lo, ELEM_BYTES
        )
        yield ops.WriteRange(
            self.u_arrays[level + 1].addr(lo), hi - lo, ELEM_BYTES
        )
        fine_residual = residual(snapshot, self.f[level], self._h2(level))
        coarse_rhs = restrict(fine_residual)
        self.f[level + 1][lo:hi] = coarse_rhs[lo:hi]
        self.u[level + 1][lo:hi] = 0.0

    def _prolong_phase(self, pid: int, level: int):
        snapshot = yield from self._phase_barrier(pid, self.u[level + 1])
        fine_size = self.sizes[level]
        lo, hi = block_partition(fine_size, self.nprocs, pid)
        # Fine point j interpolates coarse points (j-1)/2 and (j+1)/2.
        coarse_u = self.u_arrays[level + 1]
        coarse_size = self.sizes[level + 1]
        coarse_lo = max(0, (lo - 1) // 2)
        coarse_hi = min(coarse_size, hi // 2 + 1)
        yield ops.ReadRange(
            coarse_u.addr(coarse_lo), coarse_hi - coarse_lo, ELEM_BYTES
        )
        yield self.flops(2 * (hi - lo))
        yield ops.WriteRange(
            self.u_arrays[level].addr(lo), hi - lo, ELEM_BYTES
        )
        correction = prolong(snapshot, fine_size)
        self.u[level][lo:hi] += correction[lo:hi]

    def _norm_phase(self, pid: int):
        snapshot = yield from self._phase_barrier(pid, self.u[0])
        if pid == 0:
            yield self.flops(2 * self.n)
            norm = float(
                np.linalg.norm(residual(snapshot, self.f[0], self._h2(0)))
            )
            self.residual_norms.append(norm)

    # -- verification ------------------------------------------------------------------

    def _sequential_solution(self) -> np.ndarray:
        u = [np.zeros(size) for size in self.sizes]
        f = [np.zeros(size) for size in self.sizes]
        f[0] = self.rhs.copy()
        levels = len(self.sizes)
        for _cycle in range(self.cycles):
            for level in range(levels - 1):
                for _sweep in range(self.smoothing):
                    u[level] = smooth(u[level], f[level], self._h2(level))
                f[level + 1] = restrict(
                    residual(u[level], f[level], self._h2(level))
                )
                u[level + 1] = np.zeros(self.sizes[level + 1])
            for _sweep in range(COARSE_SWEEPS):
                u[levels - 1] = smooth(
                    u[levels - 1], f[levels - 1], self._h2(levels - 1)
                )
            for level in range(levels - 2, -1, -1):
                u[level] = u[level] + prolong(
                    u[level + 1], self.sizes[level]
                )
                for _sweep in range(self.smoothing):
                    u[level] = smooth(u[level], f[level], self._h2(level))
        return u[0]

    def verify(self) -> bool:
        expected = self._sequential_solution()
        if not np.allclose(self.u[0], expected, atol=1e-9):
            return False
        # The V-cycles must actually make progress on the residual.
        if len(self.residual_norms) != self.cycles + 1:
            return False
        return self.residual_norms[-1] < 0.5 * self.residual_norms[0]
