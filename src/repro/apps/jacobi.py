"""JACOBI -- 1-D Jacobi relaxation (extension to the paper's suite).

Not one of the paper's five applications, but included because it is
the cleanest probe of *communication locality*: a block-distributed
grid where each sweep communicates exactly two halo elements with the
neighbouring processors.  Mapped onto the mesh or hypercube, almost no
message crosses the bisection, making the bisection-bandwidth-derived
``g`` maximally pessimistic -- the stress case for the paper's
contention discussion and the showcase for the history-based adaptive
``g`` (Section 7 future work, implemented in
:class:`~repro.core.logp_net.LogPNetwork`).

The relaxation is computed for real (against a snapshot per sweep, the
same technique as :class:`~repro.apps.fft.FFT`) and verified against a
sequential numpy run.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..core import ops
from ..engine.rng import RandomStreams
from ..memory.address import AddressSpace
from .base import Application, block_partition

#: Stored size of one grid element, bytes.
ELEM_BYTES = 8

#: Floating-point operations per updated grid point.
FLOPS_PER_POINT = 3


def relax(values: np.ndarray) -> np.ndarray:
    """One sequential sweep with replicated-boundary conditions."""
    padded = np.concatenate(([values[0]], values, [values[-1]]))
    return (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0


class Jacobi(Application):
    """1-D Jacobi relaxation with halo exchange through shared memory."""

    name = "jacobi"

    def __init__(self, nprocs: int, n: int = 4_096, sweeps: int = 4):
        super().__init__(nprocs)
        if n < nprocs or sweeps < 1:
            raise ValueError("bad Jacobi parameters")
        self.n = n
        self.sweeps = sweeps
        self.values: np.ndarray = np.empty(0)
        self._snapshots: Dict[int, np.ndarray] = {}

    def _setup(self, space: AddressSpace, streams: RandomStreams) -> None:
        rng = streams.fresh("jacobi")
        self.initial = rng.standard_normal(self.n)
        self.values = self.initial.copy()
        self.grid = space.alloc(
            "jacobi_grid", self.n, ELEM_BYTES, "blocked",
            align_blocks_per_proc=True,
        )

    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        lo, hi = block_partition(self.n, self.nprocs, pid)
        for sweep in range(self.sweeps):
            yield ops.Barrier(0)
            if sweep not in self._snapshots:
                self._snapshots[sweep] = self.values.copy()
                self._snapshots.pop(sweep - 2, None)
            # Halo reads: the neighbours' boundary elements only.
            if lo > 0:
                yield ops.Read(self.grid.addr(lo - 1))
            if hi < self.n:
                yield ops.Read(self.grid.addr(hi))
            yield ops.ReadRange(self.grid.addr(lo), hi - lo, ELEM_BYTES)
            yield self.flops(FLOPS_PER_POINT * (hi - lo))
            self.values[lo:hi] = relax(self._snapshots[sweep])[lo:hi]
            yield ops.WriteRange(self.grid.addr(lo), hi - lo, ELEM_BYTES)
        yield ops.Barrier(0)

    def verify(self) -> bool:
        expected = self.initial.copy()
        for _ in range(self.sweeps):
            expected = relax(expected)
        return bool(np.allclose(self.values, expected))
