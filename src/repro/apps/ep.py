"""EP -- the NAS Embarrassingly Parallel kernel.

Each processor generates its share of pseudorandom (x, y) pairs,
transforms the accepted ones into Gaussian deviates with the Marsaglia
polar method, and accumulates the sums of the deviates plus counts of
their concentric square annuli.  Communication happens only at the end:
the partial sums are combined along a *condition-variable chain* --
processor ``i`` waits for a flag set by processor ``i+1``, adds its
partials to the global sums, and signals processor ``i-1``.

This matches the paper's description (appendix): "In EP, a processor
waits on a condition variable to be signaled by another", and EP's
defining characteristic -- the highest computation-to-communication
ratio of the suite -- which is why all three machine models agree on its
execution time (Fig. 12) while LogP's latency overhead still explodes
with spin polls (Fig. 3).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core import ops
from ..engine.rng import RandomStreams
from ..memory.address import AddressSpace
from .base import Application, block_partition

#: Cycles charged per generated pair (two LCG draws, squares, compare,
#: and -- for accepted pairs -- log/sqrt on a 33 MHz SPARC).
CYCLES_PER_PAIR = 80

#: Number of annulus counters (NAS EP tabulates |X|,|Y| into 10 bins).
NUM_BINS = 10

#: Pairs processed per Compute operation (simulation batching only).
BATCH_PAIRS = 2_048


class EP(Application):
    """NAS EP: embarrassingly parallel Gaussian-deviate tabulation."""

    name = "ep"

    def __init__(self, nprocs: int, pairs: int = 32_768):
        super().__init__(nprocs)
        if pairs < nprocs:
            raise ValueError("pairs must be >= nprocs")
        self.pairs = pairs
        #: Per-processor partial results, filled during the run.
        self._partials = [None] * nprocs
        #: The shared global-sum state (12 numbers: sx, sy, q[0..9]).
        self.global_sums = np.zeros(NUM_BINS + 2)
        #: How many processors have folded in their partials.
        self._folded = 0

    # -- setup -----------------------------------------------------------------

    def _setup(self, space: AddressSpace, streams: RandomStreams) -> None:
        self._streams = streams
        # The 12 global sums share a few blocks homed on node 0 --
        # the classic "global accumulator" structure.
        self.sums = space.alloc("ep_sums", NUM_BINS + 2, 8, ("node", 0))
        # One condition flag per processor, one block each (no false
        # sharing), homed on its own node.
        self.flags = space.alloc(
            "ep_flags",
            self.nprocs,
            space.block_bytes,
            "blocked",
            align_blocks_per_proc=True,
        )

    def _generate(self, pid: int) -> np.ndarray:
        """Compute processor ``pid``'s partial sums (sx, sy, q[10])."""
        start, end = block_partition(self.pairs, self.nprocs, pid)
        rng = self._streams.stream("ep", pid)
        xy = rng.uniform(-1.0, 1.0, size=(end - start, 2))
        t = xy[:, 0] ** 2 + xy[:, 1] ** 2
        accepted = (t > 0.0) & (t <= 1.0)
        xa, ya, ta = xy[accepted, 0], xy[accepted, 1], t[accepted]
        scale = np.sqrt(-2.0 * np.log(ta) / ta)
        gx, gy = xa * scale, ya * scale
        partial = np.zeros(NUM_BINS + 2)
        partial[0] = gx.sum()
        partial[1] = gy.sum()
        bins = np.maximum(np.abs(gx), np.abs(gy)).astype(int)
        bins = np.clip(bins, 0, NUM_BINS - 1)
        partial[2:] = np.bincount(bins, minlength=NUM_BINS)
        return partial

    # -- the parallel program ------------------------------------------------------

    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        start, end = block_partition(self.pairs, self.nprocs, pid)
        remaining = end - start
        # Generation phase: purely local computation.
        while remaining > 0:
            batch = min(BATCH_PAIRS, remaining)
            yield ops.Compute(batch * CYCLES_PER_PAIR)
            remaining -= batch
        self._partials[pid] = self._generate(pid)
        # Reduction chain: p-1 folds first, 0 folds last.
        if pid != self.nprocs - 1:
            yield ops.WaitFlag(self.flags.addr(pid + 1), 1, cmp="ge")
        # Read-modify-write each global sum.
        for index in range(NUM_BINS + 2):
            yield ops.Read(self.sums.addr(index))
            yield ops.Write(self.sums.addr(index))
        yield self.flops(NUM_BINS + 2)
        self.global_sums += self._partials[pid]
        self._folded += 1
        if pid != 0:
            yield ops.SetFlag(self.flags.addr(pid), 1)
        # Everyone picks up the final totals.
        yield ops.Barrier(0)
        yield ops.ReadRange(self.sums.addr(0), NUM_BINS + 2, 8)

    # -- verification ------------------------------------------------------------------

    def verify(self) -> bool:
        if self._folded != self.nprocs:
            return False
        expected = np.zeros(NUM_BINS + 2)
        for pid in range(self.nprocs):
            partial = self._partials[pid]
            if partial is None:
                return False
            expected += partial
        if not np.allclose(self.global_sums, expected):
            return False
        # Sanity: acceptance rate of the polar method is pi/4.
        total_accepted = self.global_sums[2:].sum()
        rate = total_accepted / self.pairs
        return 0.7 < rate < 0.87
