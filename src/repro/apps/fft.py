"""FFT -- parallel radix-2 binary-exchange Fast Fourier Transform.

``n`` complex points are block-distributed over the processors, input
already in bit-reversed order (decimation-in-time).  The first
``log2(n) - log2(p)`` butterfly stages touch only a processor's own
block; the last ``log2(p)`` stages pair each processor with a partner
(``pid ^ 2^s``) whose *entire block* it reads -- consecutive data items
from a remote array.

This is the access pattern behind the paper's spatial-locality
observation: data items are 8 bytes, so a 32-byte cache block holds 4
of them, and "a cache-miss on the first data item brings in the whole
cache block ... on the [LogP] machine all four data items result in
network accesses.  Thus FFT on the [LogP] machine incurs a latency
approximately four times that of the other two" (Fig. 1).

Every stage is computed numerically (vectorized per block against a
snapshot of the previous stage) and the final spectrum is verified
against ``numpy.fft.fft``.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..core import ops
from ..engine.rng import RandomStreams
from ..errors import ApplicationError
from ..memory.address import AddressSpace
from .base import Application

#: Floating-point operations per butterfly output (complex mul + add).
FLOPS_PER_POINT = 10

#: Size of one stored complex point, bytes (single-precision pair).
POINT_BYTES = 8


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation placing ``x`` in bit-reversed order."""
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=int)
    for _ in range(bits):
        reversed_indices = (reversed_indices << 1) | (indices & 1)
        indices >>= 1
    return reversed_indices


class FFT(Application):
    """Radix-2 DIT FFT with block distribution and binary exchange."""

    name = "fft"

    def __init__(self, nprocs: int, points: int = 2_048):
        super().__init__(nprocs)
        if points & (points - 1) or points < nprocs * 2:
            raise ApplicationError(
                "points must be a power of two and at least 2*nprocs"
            )
        self.points = points
        self.stages = points.bit_length() - 1
        self.block = points // nprocs
        #: Working values, updated stage by stage during the run.
        self.values: np.ndarray = np.empty(0, dtype=complex)
        #: Snapshot of the previous stage, created by the first arriver.
        self._stage_prev: Dict[int, np.ndarray] = {}

    # -- setup -----------------------------------------------------------------

    def _setup(self, space: AddressSpace, streams: RandomStreams) -> None:
        rng = streams.fresh("fft")
        self.input = rng.standard_normal(self.points) + 1j * rng.standard_normal(
            self.points
        )
        # Data stored in bit-reversed order; DIT then produces the
        # spectrum in natural order.
        self.values = self.input[bit_reverse_permutation(self.points)].copy()
        self.data = space.alloc(
            "fft_data",
            self.points,
            POINT_BYTES,
            "blocked",
            align_blocks_per_proc=True,
        )

    # -- butterfly math ------------------------------------------------------------

    def _stage_values(self, stage: int, lo: int, hi: int) -> np.ndarray:
        """New values of [lo, hi) for ``stage`` from the stage snapshot."""
        prev = self._stage_prev[stage]
        span = 1 << stage
        indices = np.arange(lo, hi)
        partners = indices ^ span
        k = indices & (span - 1)
        w = np.exp(-2j * np.pi * k / (2 * span))
        upper = (indices & span) == 0
        return np.where(
            upper,
            prev[indices] + w * prev[partners],
            prev[partners] - w * prev[indices],
        )

    # -- the parallel program -----------------------------------------------------------

    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        block = self.block
        lo, hi = pid * block, (pid + 1) * block
        own_addr = self.data.addr(lo)
        local_stages = (block).bit_length() - 1
        for stage in range(self.stages):
            yield ops.Barrier(0)
            if stage not in self._stage_prev:
                # First arriver snapshots the previous stage's values.
                self._stage_prev[stage] = self.values.copy()
                self._stage_prev.pop(stage - 2, None)
            if stage < local_stages:
                # Butterflies entirely within the local block.
                yield ops.ReadRange(own_addr, block, POINT_BYTES)
            else:
                # Communication phase: read the partner's whole block --
                # consecutive remote data items (spatial locality).
                partner = pid ^ (1 << (stage - local_stages))
                partner_addr = self.data.addr(partner * block)
                yield ops.ReadRange(own_addr, block, POINT_BYTES)
                yield ops.ReadRange(partner_addr, block, POINT_BYTES)
            yield self.flops(block * FLOPS_PER_POINT)
            self.values[lo:hi] = self._stage_values(stage, lo, hi)
            yield ops.WriteRange(own_addr, block, POINT_BYTES)
        yield ops.Barrier(0)

    # -- verification ------------------------------------------------------------------

    def verify(self) -> bool:
        expected = np.fft.fft(self.input)
        return bool(np.allclose(self.values, expected, atol=1e-8 * self.points))
