"""repro -- reproduction of "Abstracting Network Characteristics and
Locality Properties of Parallel Systems" (HPCA 1995).

An execution-driven simulator of shared-memory parallel systems with
three machine models -- a detailed CC-NUMA **target**, the **LogP**
network abstraction, and **CLogP** (LogP plus an ideal coherent cache)
-- five scientific applications (EP, IS, CG, FFT, CHOLESKY), three
interconnect topologies (full, hypercube, 2-D mesh), and SPASM-style
separation of latency and contention overheads.

Quick start::

    from repro import SystemConfig, make_app, simulate

    config = SystemConfig(processors=8, topology="mesh")
    result = simulate(make_app("fft", 8), "target", config)
    print(result.summary())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-figure reproductions.
"""

from .config import MACHINES, PAPER_CONFIG, TOPOLOGIES, SystemConfig, paper_config
from .core import (
    LogPParams,
    OverheadBuckets,
    RunResult,
    derive_logp,
    machine_names,
    make_machine,
    simulate,
)
from .core.runner import simulate_full, simulate_spec
from .runspec import RunSpec
from .exec import (
    PointFailure,
    ProcessPoolBackend,
    ResultStore,
    RetryPolicy,
    SerialBackend,
    SupervisedPoolBackend,
    execute_spec,
    make_backend,
)
from .apps import APPLICATIONS, Application, make_app
from .errors import (
    ApplicationError,
    ConfigError,
    DeadlineExpiredError,
    DeadlockError,
    PermanentError,
    ProtocolError,
    ReproError,
    RetryLimitError,
    SimulationError,
    TopologyError,
    TransientError,
    WatchdogError,
    WorkerCrashError,
)
from .faults import FaultConfig, LinkFailure, NodeStall
from .network import make_topology

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "paper_config",
    "PAPER_CONFIG",
    "TOPOLOGIES",
    "MACHINES",
    "LogPParams",
    "derive_logp",
    "OverheadBuckets",
    "RunResult",
    "simulate",
    "simulate_full",
    "simulate_spec",
    "RunSpec",
    "PointFailure",
    "SerialBackend",
    "ProcessPoolBackend",
    "SupervisedPoolBackend",
    "RetryPolicy",
    "execute_spec",
    "make_backend",
    "ResultStore",
    "make_machine",
    "machine_names",
    "make_topology",
    "Application",
    "APPLICATIONS",
    "make_app",
    "FaultConfig",
    "LinkFailure",
    "NodeStall",
    "ReproError",
    "TransientError",
    "PermanentError",
    "ConfigError",
    "SimulationError",
    "DeadlockError",
    "WatchdogError",
    "RetryLimitError",
    "DeadlineExpiredError",
    "WorkerCrashError",
    "ProtocolError",
    "TopologyError",
    "ApplicationError",
    "__version__",
]
