"""The paper's primary contribution: three machine models under one
execution-driven simulator, with SPASM-style overhead separation.

* :class:`~repro.core.target.TargetMachine` -- detailed CC-NUMA:
  Berkeley directory coherence over a circuit-switched network,
* :class:`~repro.core.logp.LogPMachine` -- no caches, network abstracted
  by the LogP ``L`` and ``g`` parameters,
* :class:`~repro.core.clogp.CLogPMachine` -- LogP plus an *ideal
  coherent cache* (coherence maintained, overhead unmodeled),
* :class:`~repro.core.ideal_machine.IdealMachine` -- the PRAM-like
  machine providing SPASM's "ideal time".

Use :func:`~repro.core.runner.simulate` to run an application on a
machine and obtain a :class:`~repro.core.accounting.RunResult`.
"""

from .accounting import OverheadBuckets, RunResult
from .machine import Machine, Processor, make_machine, machine_names
from .ops import (
    Barrier,
    Compute,
    Lock,
    Read,
    ReadMany,
    ReadRange,
    SetFlag,
    Unlock,
    WaitFlag,
    Write,
    WriteMany,
    WriteRange,
)
from .params import LogPParams, derive_logp
from .runner import simulate, simulate_spec

# Machine registrations happen at import time.
from . import target as _target  # noqa: F401
from . import logp as _logp  # noqa: F401
from . import clogp as _clogp  # noqa: F401
from . import ideal_machine as _ideal  # noqa: F401

__all__ = [
    "OverheadBuckets",
    "RunResult",
    "Machine",
    "Processor",
    "make_machine",
    "machine_names",
    "LogPParams",
    "derive_logp",
    "simulate",
    "simulate_spec",
    "Compute",
    "Read",
    "Write",
    "ReadRange",
    "WriteRange",
    "ReadMany",
    "WriteMany",
    "Lock",
    "Unlock",
    "Barrier",
    "SetFlag",
    "WaitFlag",
]
