"""Abstract machine model, simulated processor, and synchronization.

A :class:`Machine` owns the discrete-event engine, the shared address
space, and the machine-specific memory semantics.  A :class:`Processor`
drives one application generator, translating each yielded operation
into machine interactions and charging the SPASM overhead buckets.

Memory interface
----------------
Machines expose a two-level memory interface tuned for simulation speed:

* :meth:`Machine.try_fast` -- attempt the access without any engine
  interaction (cache hit, local memory on LogP, everything on the ideal
  machine).  Returns the cost in ns, or None.
* :meth:`Machine.transact` -- a generator performing the access in
  simulated time; returns ``(latency_ns, service_ns)``: the
  contention-free network time and the memory-service time.  Whatever
  *else* the transaction took (link waits, g-stalls, directory
  serialization) is charged to contention by the processor.

Fast-path costs accumulate in a pending-time counter that is flushed to
the engine as a single timeout before any interaction that other
processors can observe (a transaction or a synchronization operation).
Within a run of private hits/compute the global clock therefore lags a
processor's logical clock slightly; it is exact again at every point
where cross-processor ordering matters.

Synchronization
---------------
Locks, barriers and condition flags are implemented *semantically* --
waiters block on engine events instead of literally spinning -- while
the memory traffic a test-test&set spin would generate is reproduced
through real accesses:

* a lock attempt reads the lock word (a miss brings it into the cache),
  winners write it (invalidating spinners), and every release makes all
  waiters re-read and one of them win -- the invalidation-storm traffic
  of test-test&set on the cached machines;
* a flag waiter reads once at wait start and once after the setter's
  write (which invalidated its cached copy): exactly the paper's
  "first and last accesses" behaviour for EP's condition variables;
* on the cache-less LogP machine, time spent blocked is converted into
  periodic remote polls by :meth:`Machine.split_spin`, each poll being a
  network round trip -- the behaviour that blows up EP's latency
  overhead on LogP in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple, Type

from ..checkers import make_checkers
from ..config import SystemConfig
from ..engine import make_simulator
from ..engine.core import Event, Simulator
from ..engine.rng import RandomStreams
from ..errors import ConfigError, SimulationError
from ..faults.injector import make_injector
from ..memory.address import AddressSpace
from ..network.topology import Topology, make_topology
from . import ops
from .accounting import OverheadBuckets


@dataclass
class _LockVar:
    """State of one simulated lock."""

    addr: int
    holder: Optional[int] = None
    waiters: List[Event] = field(default_factory=list)
    acquisitions: int = 0


@dataclass
class _BarrierVar:
    """State of one simulated centralized sense-reversing barrier."""

    counter_addr: int
    flag_addr: int
    lock_key: Hashable
    count: int = 0
    generation: int = 0


@dataclass
class _FlagVar:
    """State of one condition-variable word."""

    value: int = 0
    waiters: List[Event] = field(default_factory=list)


@dataclass
class _TreeBarrierVar:
    """State of one combining-tree barrier.

    Per-node arrival and release flags, each homed on its own node, so
    barrier traffic follows parent-child edges instead of hammering a
    central counter.
    """

    arrive_addrs: List[int]
    release_addrs: List[int]
    #: Per-processor participation count (the flag generation).
    counts: List[int] = field(default_factory=list)


class Machine(ABC):
    """Base class of the four machine models."""

    #: Registry name, e.g. ``"target"``.
    name: str = "abstract"

    #: Flat-compiled twin of :meth:`transact`, or None.  Machines that
    #: can compile a miss into a kernel-stepped flat program (currently
    #: the target machine on a plain fabric under a flat-capable
    #: kernel) set this to a callable ``(pid, addr, is_write)``
    #: returning the FLAT_TX sentinel; the caller ``yield``\ s it and
    #: is resumed with the same ``(latency_ns, service_ns)`` pair the
    #: generator form returns, after the identical event sequence.
    transact_flat = None

    def __init__(self, config: SystemConfig):
        self.config = config
        self.nprocs = config.processors
        #: Sanitizer checkers, or None when ``config.check`` is off and
        #: no digest was requested -- the None case takes the exact
        #: unchecked code paths (see :mod:`repro.checkers`).
        self.checkers = make_checkers(config)
        # Kernel selection honours config.engine_kernel / REPRO_ENGINE;
        # whenever checkers attach engine hooks the factory falls back
        # to the object kernel so sanitizers see real (time, seq)
        # actions (see repro.engine.make_simulator).
        self.sim = make_simulator(
            checkers=self.checkers.checkers if self.checkers else (),
            kernel=config.engine_kernel,
        )
        self.topology: Topology = make_topology(config.topology, config.processors)
        self.space = AddressSpace(config.processors, config.block_bytes)
        self.streams = RandomStreams(config.seed)
        #: Fault injector, or None when ``config.fault`` cannot inject
        #: anything -- the None case takes the exact fault-free paths.
        self.fault_injector = make_injector(
            config.fault, self.streams, topology=self.topology
        )
        # Reliable-delivery recovery time accumulated per processor
        # during the current transaction; drained by the Processor into
        # its retry_ns bucket (see Processor._access_slow).
        self._retry_pending: List[int] = [0] * config.processors
        self.processors: List["Processor"] = []
        self._locks: Dict[Hashable, _LockVar] = {}
        self._barriers: Dict[Hashable, _BarrierVar] = {}
        self._tree_barriers: Dict[Hashable, _TreeBarrierVar] = {}
        self._flags: Dict[int, _FlagVar] = {}
        self._sync_homes = 0
        # Message-passing channels: (src, dst, tag) -> buffered count,
        # plus receivers blocked on an empty channel.
        self._mp_buffered: Dict[Hashable, int] = {}
        self._mp_waiters: Dict[Hashable, List[Event]] = {}
        #: Total Send operations completed (instrumentation).
        self.mp_sends = 0

    # -- memory interface (machine specific) -----------------------------------

    @abstractmethod
    def try_fast(self, pid: int, addr: int, is_write: bool) -> Optional[int]:
        """Cost in ns if the access needs no simulated time, else None."""

    @abstractmethod
    def transact(self, pid: int, addr: int, is_write: bool):
        """Generator performing the access; returns (latency_ns, service_ns)."""

    def split_spin(self, pid: int, wait_ns: int, addr: int) -> Tuple[int, int]:
        """Split a blocked wait into (latency_ns, sync_ns).

        Default: the whole wait is synchronization time (cached machines
        spin locally; the ideal machine just waits).  The LogP machine
        overrides this to charge remote polling traffic.
        """
        return 0, wait_ns

    def message_count(self) -> int:
        """Network messages transported so far (instrumentation)."""
        return 0

    # -- fault-recovery accounting ------------------------------------------------

    def record_retry(self, pid: int, retry_ns: int) -> None:
        """Bank reliable-delivery recovery time for processor ``pid``."""
        self._retry_pending[pid] += retry_ns

    def take_retry_ns(self, pid: int) -> int:
        """Drain the banked recovery time (the Processor charges it)."""
        pending = self._retry_pending[pid]
        if pending:
            self._retry_pending[pid] = 0
        return pending

    # -- synchronization variables ------------------------------------------------

    def _alloc_sync_word(self, label: str) -> int:
        """Allocate a block-aligned shared word for a sync variable.

        Each variable gets its own cache block (no false sharing) and
        homes rotate round-robin across nodes.
        """
        home = self._sync_homes % self.nprocs
        self._sync_homes += 1
        array = self.space.alloc(
            f"__sync_{label}", 1, self.config.block_bytes, ("node", home)
        )
        return array.addr(0)

    def _lock_var(self, key: Hashable) -> _LockVar:
        var = self._locks.get(key)
        if var is None:
            var = _LockVar(addr=self._alloc_sync_word(f"lock_{key}"))
            self._locks[key] = var
        return var

    def _barrier_var(self, key: Hashable) -> _BarrierVar:
        var = self._barriers.get(key)
        if var is None:
            var = _BarrierVar(
                counter_addr=self._alloc_sync_word(f"barcnt_{key}"),
                flag_addr=self._alloc_sync_word(f"barflag_{key}"),
                lock_key=("__barrier__", key),
            )
            self._barriers[key] = var
        return var

    def _tree_barrier_var(self, key: Hashable) -> _TreeBarrierVar:
        var = self._tree_barriers.get(key)
        if var is None:
            block = self.config.block_bytes
            arrive = self.space.alloc(
                f"__sync_treebar_{key}_arrive", self.nprocs, block,
                "blocked", align_blocks_per_proc=True,
            )
            release = self.space.alloc(
                f"__sync_treebar_{key}_release", self.nprocs, block,
                "blocked", align_blocks_per_proc=True,
            )
            var = _TreeBarrierVar(
                arrive_addrs=[arrive.addr(i) for i in range(self.nprocs)],
                release_addrs=[release.addr(i) for i in range(self.nprocs)],
                counts=[0] * self.nprocs,
            )
            self._tree_barriers[key] = var
        return var

    def _flag_var(self, addr: int) -> _FlagVar:
        var = self._flags.get(addr)
        if var is None:
            var = _FlagVar()
            self._flags[addr] = var
        return var

    # -- synchronization operations --------------------------------------------------

    def op_lock(self, proc: "Processor", key: Hashable):
        """Acquire a lock with test-test&set semantics."""
        pending = proc._pending_ns
        if pending:
            proc._pending_ns = 0
            yield pending
        lock = self._lock_var(key)
        addr = lock.addr
        sim = self.sim
        transact = self.transact
        transact_flat = self.transact_flat
        retry_pending = self._retry_pending
        pid = proc.pid
        buckets = proc.buckets
        while True:
            # Test: read the lock word (may miss -> network traffic).
            # ``access_hit`` charges cache hits without a generator --
            # spins re-read a line they already cache, so the hit path
            # dominates here.
            for is_write in (False, True):
                if is_write:
                    if lock.holder is not None:
                        break
                    # Test&set wins: take the lock, then pay for the
                    # ownership-acquiring write (invalidates other
                    # copies).
                    lock.holder = pid
                    lock.acquisitions += 1
                if not proc.access_hit(addr, is_write):
                    # ``_access_slow`` inlined: the lock path is the
                    # hottest op, and every resumption of the delegated
                    # transaction walks the whole ``yield from`` chain,
                    # so one less frame here pays on every send (same
                    # trade as Processor.run's Read/Write slow path).
                    pending = proc._pending_ns
                    if pending:
                        proc._pending_ns = 0
                        yield pending
                    started = sim._now
                    if transact_flat is None:
                        latency_ns, service_ns = yield from transact(
                            pid, addr, is_write
                        )
                    else:
                        # Flat-compiled transaction: one yield instead
                        # of delegating into a generator -- the kernel
                        # makes the deferred call (natively on the
                        # compiled tier) and steps the whole miss
                        # round.
                        latency_ns, service_ns = yield (
                            transact_flat, pid, addr, is_write
                        )
                    elapsed = sim._now - started
                    if latency_ns + service_ns > elapsed:
                        latency_ns = max(0, elapsed - service_ns)
                    retry_ns = retry_pending[pid]
                    if retry_ns:
                        retry_pending[pid] = 0
                    if retry_ns > elapsed - latency_ns - service_ns:
                        retry_ns = max(0, elapsed - latency_ns - service_ns)
                    buckets.latency_ns += latency_ns
                    buckets.memory_ns += service_ns
                    buckets.retry_ns += retry_ns
                    buckets.contention_ns += (
                        elapsed - latency_ns - service_ns - retry_ns
                    )
                if is_write:
                    return
            # Busy: block until a release wakes us, then re-contend.
            event = sim.event()
            lock.waiters.append(event)
            started = sim.now
            yield event
            proc.charge_spin(sim.now - started, addr)

    def op_unlock(self, proc: "Processor", key: Hashable):
        """Release a lock, waking all spinners (invalidation storm)."""
        pending = proc._pending_ns
        if pending:
            proc._pending_ns = 0
            yield pending
        lock = self._lock_var(key)
        if lock.holder != proc.pid:
            raise SimulationError(
                f"processor {proc.pid} unlocking lock {key!r} held by "
                f"{lock.holder}"
            )
        lock.holder = None
        # The releasing store invalidates every spinner's cached copy.
        if not proc.access_hit(lock.addr, True):
            yield from proc._access_slow(lock.addr, True)
        waiters, lock.waiters = lock.waiters, []
        for event in waiters:
            event.succeed()

    def op_barrier(self, proc: "Processor", key: Hashable):
        """Global barrier; implementation chosen by ``config.barrier``."""
        if self.config.barrier == "tree":
            yield from self._op_tree_barrier(proc, key)
        else:
            yield from self._op_central_barrier(proc, key)

    def _op_tree_barrier(self, proc: "Processor", key: Hashable):
        """Binary combining-tree barrier over per-node flags.

        Arrivals combine up the tree (a parent waits for its children's
        arrival flags, then sets its own), the root flips the release
        wave, and releases propagate back down.  Every flag is homed on
        its own node, so traffic follows tree edges -- O(log p) depth
        and no central hot spot.
        """
        if proc._pending_ns:
            yield from proc.flush()
        barrier = self._tree_barrier_var(key)
        pid = proc.pid
        generation = barrier.counts[pid] + 1
        barrier.counts[pid] = generation
        left, right = 2 * pid + 1, 2 * pid + 2
        for child in (left, right):
            if child < self.nprocs:
                yield from self.op_wait_flag(
                    proc, barrier.arrive_addrs[child], generation, cmp="ge"
                )
        if pid != 0:
            yield from self.op_set_flag(
                proc, barrier.arrive_addrs[pid], generation
            )
            yield from self.op_wait_flag(
                proc, barrier.release_addrs[pid], generation, cmp="ge"
            )
        for child in (left, right):
            if child < self.nprocs:
                yield from self.op_set_flag(
                    proc, barrier.release_addrs[child], generation
                )

    def _op_central_barrier(self, proc: "Processor", key: Hashable):
        """Centralized sense-reversing barrier over all processors."""
        if proc._pending_ns:
            yield from proc.flush()
        barrier = self._barrier_var(key)
        yield from self.op_lock(proc, barrier.lock_key)
        # Fetch&increment of the arrival counter under the lock.
        if not proc.access_hit(barrier.counter_addr, False):
            yield from proc._access_slow(barrier.counter_addr, False)
        if not proc.access_hit(barrier.counter_addr, True):
            yield from proc._access_slow(barrier.counter_addr, True)
        barrier.count += 1
        arrived_generation = barrier.generation
        last = barrier.count == self.nprocs
        if last:
            barrier.count = 0
            barrier.generation += 1
        yield from self.op_unlock(proc, barrier.lock_key)
        if last:
            yield from self.op_set_flag(
                proc, barrier.flag_addr, barrier.generation
            )
        else:
            yield from self.op_wait_flag(
                proc, barrier.flag_addr, arrived_generation + 1, cmp="ge"
            )

    def op_set_flag(self, proc: "Processor", addr: int, value: int):
        """Write a condition variable and wake its waiters."""
        pending = proc._pending_ns
        if pending:
            proc._pending_ns = 0
            yield pending
        flag = self._flag_var(addr)
        # The store invalidates waiters' cached copies (on the target,
        # real invalidation traffic; on CLogP, a free transition).
        if not proc.access_hit(addr, True):
            yield from proc._access_slow(addr, True)
        flag.value = value
        waiters, flag.waiters = flag.waiters, []
        for event in waiters:
            event.succeed()

    def op_wait_flag(self, proc: "Processor", addr: int, value: int,
                     cmp: str = "ge"):
        """Spin until the condition variable satisfies the test."""
        pending = proc._pending_ns
        if pending:
            proc._pending_ns = 0
            yield pending
        flag = self._flag_var(addr)
        equality = cmp == "eq"
        while True:
            # The test read: on cached machines the first iteration may
            # miss, later iterations re-read after an invalidation.
            if not proc.access_hit(addr, False):
                yield from proc._access_slow(addr, False)
            current = flag.value
            if (current == value) if equality else (current >= value):
                return
            event = self.sim.event()
            flag.waiters.append(event)
            started = self.sim.now
            yield event
            proc.charge_spin(self.sim.now - started, addr)

    # -- message passing -------------------------------------------------------------

    def mp_transmit(self, pid: int, dst: int, nbytes: int):
        """Generator: move an explicit message; returns (latency, service).

        The base implementation (used by the ideal machine) is free --
        subclasses route through their network model.
        """
        return 0, 0
        yield  # pragma: no cover - makes this a generator

    def op_send(self, proc: "Processor", dst: int, nbytes: int, tag: int):
        """Eager send: completes when the data has reached ``dst``."""
        if not 0 <= dst < self.nprocs:
            raise SimulationError(f"send to invalid processor {dst}")
        if proc._pending_ns:
            yield from proc.flush()
        sim = self.sim
        started = sim.now
        latency_ns, service_ns = yield from self.mp_transmit(
            proc.pid, dst, nbytes
        )
        elapsed = sim.now - started
        if latency_ns + service_ns > elapsed:
            latency_ns = max(0, elapsed - service_ns)
        retry_ns = self.take_retry_ns(proc.pid)
        if retry_ns > elapsed - latency_ns - service_ns:
            retry_ns = max(0, elapsed - latency_ns - service_ns)
        proc.buckets.latency_ns += latency_ns
        proc.buckets.memory_ns += service_ns
        proc.buckets.retry_ns += retry_ns
        proc.buckets.contention_ns += (
            elapsed - latency_ns - service_ns - retry_ns
        )
        self.mp_sends += 1
        key = (proc.pid, dst, tag)
        waiters = self._mp_waiters.get(key)
        if waiters:
            waiters.pop(0).succeed()
        else:
            self._mp_buffered[key] = self._mp_buffered.get(key, 0) + 1

    def op_recv(self, proc: "Processor", src: int, tag: int):
        """Blocking receive of one message from ``src`` with ``tag``."""
        if not 0 <= src < self.nprocs:
            raise SimulationError(f"receive from invalid processor {src}")
        if proc._pending_ns:
            yield from proc.flush()
        key = (src, proc.pid, tag)
        buffered = self._mp_buffered.get(key, 0)
        if buffered:
            self._mp_buffered[key] = buffered - 1
        else:
            event = self.sim.event()
            self._mp_waiters.setdefault(key, []).append(event)
            started = self.sim.now
            yield event
            # Blocked receives idle the processor (no polling traffic:
            # arrival notification is the send itself).
            proc.buckets.sync_ns += self.sim.now - started
        # Copying the delivered message out of the buffer.
        copy_ns = self.config.memory_ns
        proc._pending_ns += copy_ns
        proc.buckets.memory_ns += copy_ns

    # -- instrumentation -----------------------------------------------------------

    def lock_acquisitions(self) -> int:
        """Total successful lock acquisitions across all locks."""
        return sum(lock.acquisitions for lock in self._locks.values())

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} p={self.nprocs} "
            f"topology={self.config.topology}>"
        )


class Processor:
    """One simulated processor: interprets an application generator."""

    __slots__ = ("machine", "pid", "buckets", "_pending_ns", "finish_ns",
                 "_batch")

    def __init__(self, machine: Machine, pid: int):
        if not 0 <= pid < machine.nprocs:
            raise ConfigError(f"pid {pid} out of range")
        self.machine = machine
        self.pid = pid
        self.buckets = OverheadBuckets()
        self._pending_ns = 0
        self.finish_ns = 0
        self._batch = machine.config.batch_local

    # -- charging helpers ------------------------------------------------------------

    def flush(self):
        """Generator: release accumulated local time to the engine."""
        if self._pending_ns:
            delay, self._pending_ns = self._pending_ns, 0
            yield delay

    def charge_spin(self, wait_ns: int, addr: int) -> None:
        """Attribute a blocked wait per the machine's spin model."""
        latency_ns, sync_ns = self.machine.split_spin(self.pid, wait_ns, addr)
        self.buckets.latency_ns += latency_ns
        self.buckets.sync_ns += sync_ns

    # -- memory access ---------------------------------------------------------------

    def access(self, addr: int, is_write: bool):
        """Generator: one shared reference with full accounting."""
        cost = self.machine.try_fast(self.pid, addr, is_write)
        if cost is not None:
            self._pending_ns += cost
            self.buckets.memory_ns += cost
            return
        yield from self._access_slow(addr, is_write)

    def access_hit(self, addr: int, is_write: bool) -> bool:
        """Charge a fast-path hit inline; False when the access misses.

        The non-generator half of :meth:`access`: sync operations call
        this first so the (dominant) cache-hit case costs no generator
        allocation, and fall through to :meth:`_access_slow` on a miss.
        """
        cost = self.machine.try_fast(self.pid, addr, is_write)
        if cost is None:
            return False
        self._pending_ns += cost
        self.buckets.memory_ns += cost
        return True

    def _access_slow(self, addr: int, is_write: bool):
        machine = self.machine
        sim = machine.sim
        pending = self._pending_ns
        if pending:
            self._pending_ns = 0
            yield pending
        started = sim._now
        transact_flat = machine.transact_flat
        if transact_flat is None:
            latency_ns, service_ns = yield from machine.transact(
                self.pid, addr, is_write
            )
        else:
            # Flat-compiled transaction (see Machine.transact_flat):
            # the request tuple defers the call to the kernel, which
            # on the compiled tier builds the op natively.
            latency_ns, service_ns = yield (
                transact_flat, self.pid, addr, is_write
            )
        elapsed = sim._now - started
        # Contention-free time cannot exceed the observed window: when a
        # parallel leg (e.g. the target's invalidation round) overlaps
        # the data path completely, its charged latency is credited back
        # so that the buckets always sum to the elapsed time.
        if latency_ns + service_ns > elapsed:
            latency_ns = max(0, elapsed - service_ns)
        # ``take_retry_ns`` inlined (zero on every fault-free access).
        retry_pending = machine._retry_pending
        retry_ns = retry_pending[self.pid]
        if retry_ns:
            retry_pending[self.pid] = 0
        if retry_ns > elapsed - latency_ns - service_ns:
            retry_ns = max(0, elapsed - latency_ns - service_ns)
        buckets = self.buckets
        buckets.latency_ns += latency_ns
        buckets.memory_ns += service_ns
        buckets.retry_ns += retry_ns
        buckets.contention_ns += (
            elapsed - latency_ns - service_ns - retry_ns
        )

    def _access_range(self, base: int, count: int, stride: int, is_write: bool):
        """Generator: a strided scan, fast-pathing hits without yields."""
        try_fast = self.machine.try_fast
        pid = self.pid
        pending = 0
        addr = base
        for _ in range(count):
            cost = try_fast(pid, addr, is_write)
            if cost is None:
                if pending:
                    self._pending_ns += pending
                    self.buckets.memory_ns += pending
                    pending = 0
                yield from self._access_slow(addr, is_write)
            else:
                pending += cost
            addr += stride
        if pending:
            self._pending_ns += pending
            self.buckets.memory_ns += pending

    def _access_many(self, addrs, is_write: bool):
        """Generator: an index gather/scatter."""
        try_fast = self.machine.try_fast
        pid = self.pid
        pending = 0
        for addr in addrs:
            cost = try_fast(pid, addr, is_write)
            if cost is None:
                if pending:
                    self._pending_ns += pending
                    self.buckets.memory_ns += pending
                    pending = 0
                yield from self._access_slow(addr, is_write)
            else:
                pending += cost
        if pending:
            self._pending_ns += pending
            self.buckets.memory_ns += pending

    # -- the interpreter ---------------------------------------------------------------

    def run(self, app_generator):
        """Engine process: interpret the application's operation stream.

        Reads and writes that :meth:`Machine.try_fast` can satisfy are
        charged inline -- no generator, no engine event -- so a run of
        cache hits costs the engine nothing until the accumulated time
        is flushed.  With ``config.batch_local`` off, the accumulated
        local time is instead released after every operation.
        """
        machine = self.machine
        sim = machine.sim
        try_fast = machine.try_fast
        transact = machine.transact
        transact_flat = machine.transact_flat
        retry_pending = machine._retry_pending
        cycle_ns = machine.config.cpu_cycle_ns
        buckets = self.buckets
        pid = self.pid
        batch = self._batch
        for op in app_generator:
            kind = type(op)
            if kind is ops.Compute:
                duration = op.cycles * cycle_ns
                self._pending_ns += duration
                buckets.compute_ns += duration
                if batch:
                    continue
            elif kind is ops.Read or kind is ops.Write:
                is_write = kind is ops.Write
                cost = try_fast(pid, op.addr, is_write)
                if cost is not None:
                    self._pending_ns += cost
                    buckets.memory_ns += cost
                    if batch:
                        continue
                else:
                    # ``_access_slow`` inlined: this is the hottest slow
                    # path, and every resumption of the delegated
                    # transaction walks the whole ``yield from`` chain,
                    # so one less frame here pays on every send.
                    pending = self._pending_ns
                    if pending:
                        self._pending_ns = 0
                        yield pending
                    started = sim._now
                    if transact_flat is None:
                        latency_ns, service_ns = yield from transact(
                            pid, op.addr, is_write
                        )
                    else:
                        # Flat-compiled transaction: one yield instead
                        # of delegating into a generator -- the kernel
                        # makes the deferred call (natively on the
                        # compiled tier) and steps the whole miss
                        # round.
                        latency_ns, service_ns = yield (
                            transact_flat, pid, op.addr, is_write
                        )
                    elapsed = sim._now - started
                    if latency_ns + service_ns > elapsed:
                        latency_ns = max(0, elapsed - service_ns)
                    retry_ns = retry_pending[pid]
                    if retry_ns:
                        retry_pending[pid] = 0
                    if retry_ns > elapsed - latency_ns - service_ns:
                        retry_ns = max(0, elapsed - latency_ns - service_ns)
                    buckets.latency_ns += latency_ns
                    buckets.memory_ns += service_ns
                    buckets.retry_ns += retry_ns
                    buckets.contention_ns += (
                        elapsed - latency_ns - service_ns - retry_ns
                    )
                    continue
            elif kind is ops.ReadRange:
                yield from self._access_range(op.addr, op.count, op.stride, False)
            elif kind is ops.WriteRange:
                yield from self._access_range(op.addr, op.count, op.stride, True)
            elif kind is ops.ReadMany:
                yield from self._access_many(op.addrs, False)
            elif kind is ops.WriteMany:
                yield from self._access_many(op.addrs, True)
            elif kind is ops.Send:
                yield from machine.op_send(self, op.dst, op.nbytes, op.tag)
            elif kind is ops.Recv:
                yield from machine.op_recv(self, op.src, op.tag)
            elif kind is ops.Lock:
                yield from machine.op_lock(self, op.lock_id)
            elif kind is ops.Unlock:
                yield from machine.op_unlock(self, op.lock_id)
            elif kind is ops.Barrier:
                yield from machine.op_barrier(self, op.barrier_id)
            elif kind is ops.SetFlag:
                yield from machine.op_set_flag(self, op.addr, op.value)
            elif kind is ops.WaitFlag:
                yield from machine.op_wait_flag(self, op.addr, op.value, op.cmp)
            else:
                raise SimulationError(
                    f"processor {self.pid} received unknown operation {op!r}"
                )
            if not batch and self._pending_ns:
                delay, self._pending_ns = self._pending_ns, 0
                yield delay
        if self._pending_ns:
            yield from self.flush()
        self.finish_ns = machine.sim.now

    def __repr__(self) -> str:
        return f"<Processor {self.pid} of {self.machine.name}>"


# -- machine registry -------------------------------------------------------------------

_MACHINE_REGISTRY: Dict[str, Type[Machine]] = {}


def register_machine(cls: Type[Machine]) -> Type[Machine]:
    """Class decorator adding a machine model to the registry."""
    _MACHINE_REGISTRY[cls.name] = cls
    return cls


def make_machine(name: str, config: SystemConfig) -> Machine:
    """Instantiate a registered machine model by name."""
    try:
        cls = _MACHINE_REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown machine {name!r}; known: {sorted(_MACHINE_REGISTRY)}"
        ) from None
    return cls(config)


def machine_names() -> List[str]:
    """Names of all registered machine models."""
    return sorted(_MACHINE_REGISTRY)
