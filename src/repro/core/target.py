"""The target machine: detailed CC-NUMA simulation.

This is the paper's reference point -- the machine whose "pertinent
hardware features" are simulated in full:

* per-node Berkeley caches kept sequentially consistent by a
  fully-mapped directory at each block's home node,
* every protocol message (request, forward, data, invalidation, ack,
  writeback) individually transported over the circuit-switched
  network, paying real link contention,
* directory requests serialized per block at the home (a FIFO resource,
  which doubles as the protocol's race-freedom mechanism),
* NUMA local memory (``memory_cycles``) at the home node.

Message sizes follow Section 5: data messages carry a 32-byte block;
control messages are 8 bytes.  The LogP abstraction charges everything
at the 32-byte ``L`` -- the paper calls out both that pessimism and the
opposing optimism of CLogP not modeling this machine's coherence
traffic.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SystemConfig
from ..engine.core import TURN, all_of
from ..engine.resource import Resource
from ..faults.reliable import ReliableTransport, RetryPolicy
from ..network.fabric import Fabric
from ..network.message import Message
from .coherence import CoherentMemory
from .machine import Machine, register_machine


@register_machine
class TargetMachine(Machine):
    """Detailed CC-NUMA machine (caches + directory + real network)."""

    name = "target"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.fabric = Fabric(
            self.sim, self.topology, config.link_ns_per_byte,
            switch_delay_ns=config.switch_delay_ns,
            injector=self.fault_injector,
            checkers=self.checkers,
        )
        if self.fault_injector is not None:
            self.reliable = ReliableTransport(
                self.fabric,
                self.fault_injector,
                RetryPolicy.from_fault(config.fault),
                ack_bytes=config.control_message_bytes,
                checkers=self.checkers,
            )
        else:
            self.reliable = None
        self.memory = CoherentMemory(
            config, self.space, checkers=self.checkers, sim=self.sim
        )
        self._home_locks: Dict[int, Resource] = {}
        self._ctrl = config.control_message_bytes
        self._data = config.data_message_bytes
        #: Contention-free time of one invalidation+ack round.
        self._inv_round_latency = 2 * config.control_message_ns
        # Hot-path constants (attribute chains cost on every access).
        self._block_bytes = config.block_bytes
        self._hit_ns = config.cache_hit_ns
        self._mem_ns = config.memory_ns
        self._caches = self.memory.caches
        if self.reliable is None:
            # Fault-free: skip the retry-banking wrapper generator --
            # ``_net_transmit(pid, msg)`` then IS ``fabric.transmit(msg)``.
            self._net_transmit = self._net_transmit_plain

    def _net_transmit(self, pid: int, message: Message):
        """Generator: transmit on behalf of processor ``pid``.

        Routes through the reliable-delivery layer when faults are
        enabled, banking its recovery time against ``pid``'s retry
        bucket; otherwise this is exactly ``fabric.transmit``.
        """
        result = yield from self.reliable.transmit(message)
        if result.retry_ns:
            self.record_retry(pid, result.retry_ns)
        return result

    def _net_transmit_plain(self, pid: int, message: Message):
        # Returns the fabric's generator directly: ``yield from`` at the
        # call sites delegates to it with no wrapper frame in between.
        return self.fabric.transmit(message)

    # -- memory interface ---------------------------------------------------------

    def try_fast(self, pid: int, addr: int, is_write: bool) -> Optional[int]:
        block = addr // self._block_bytes
        cache = self._caches[pid]
        if cache.probe(block, is_write):
            return self._hit_ns
        if is_write and self.memory.try_silent_upgrade(pid, block):
            # Illinois: EXCLUSIVE -> DIRTY without a directory
            # transaction -- the "fancier protocol" saving.
            cache.lookup(block)
            return self._hit_ns
        return None

    def transact(self, pid: int, addr: int, is_write: bool):
        """One directory transaction.

        The per-block home lock models *directory occupancy*: it is held
        from the request's arrival at the home until the home has
        updated state, read memory, collected invalidation acks, and
        launched the forward/reply -- but not through the reply's flight
        back to the requester, which real directories pipeline with the
        next request.

        Returns the transaction generator directly (no wrapper frame:
        every ``send`` into a ``yield from`` chain walks the whole
        delegation stack, so one less frame here cheapens every
        resumption of every transaction).
        """
        block = addr // self._block_bytes
        if is_write:
            return self._write_transaction(pid, block)
        return self._read_transaction(pid, block)

    def _post_writeback(self, pid: int, writeback) -> None:
        """Launch an evicted victim's writeback message, if any."""
        if writeback is not None:
            victim_block, victim_home = writeback
            if victim_home != pid:
                # Off the critical path, but it occupies real links.
                self.fabric.post(
                    Message(pid, victim_home, self._data, "wb"),
                    name=f"wb{victim_block}",
                )

    # -- transactions ------------------------------------------------------------------

    def _read_transaction(self, pid: int, block: int):
        """Directory read-miss: request, (forward,) data reply."""
        latency = 0
        service = 0
        home = self.space.home_of_block(block)
        if pid != home:
            result = yield from self._net_transmit(
                pid, Message(pid, home, self._ctrl, "read_req")
            )
            latency += result.latency_ns
        home_lock = self._home_lock(block)
        yield TURN if home_lock.try_acquire() else home_lock.request()
        plan = self.memory.plan_read(pid, block)
        if plan.hit:  # raced with ourselves; cannot normally happen
            home_lock.release()
            return 0, self._hit_ns
        if plan.from_memory:
            service += self._mem_ns
            yield self._mem_ns
            home_lock.release()
            if home != pid:
                result = yield from self._net_transmit(
                    pid, Message(home, pid, self._data, "data")
                )
                latency += result.latency_ns
        else:
            # Owned by a remote cache: home forwards, owner supplies.
            source = plan.source
            if home != source:
                result = yield from self._net_transmit(
                    pid, Message(home, source, self._ctrl, "fwd")
                )
                latency += result.latency_ns
            home_lock.release()
            service += self._hit_ns
            yield self._hit_ns
            result = yield from self._net_transmit(
                pid, Message(source, pid, self._data, "data")
            )
            latency += result.latency_ns
            if plan.sharing_writeback and source != home:
                # Illinois: the dirty owner's data also returns to the
                # home -- real traffic, off the requester's critical path.
                self.fabric.post(
                    Message(source, home, self._data, "shwb"),
                    name=f"shwb{block}",
                )
        self._post_writeback(pid, plan.writeback)
        return latency, service

    def _write_transaction(self, pid: int, block: int):
        """Directory write/ownership miss with parallel invalidations."""
        sim = self.sim
        latency = 0
        service = 0
        home = self.space.home_of_block(block)
        if pid != home:
            result = yield from self._net_transmit(
                pid, Message(pid, home, self._ctrl, "write_req")
            )
            latency += result.latency_ns
        home_lock = self._home_lock(block)
        yield TURN if home_lock.try_acquire() else home_lock.request()
        plan = self.memory.plan_write(pid, block)
        if plan.fast:  # raced with ourselves; cannot normally happen
            home_lock.release()
            return 0, self._hit_ns
        # Invalidations go out in parallel with the home-side work.  The
        # previous owner (when it supplies the data) is invalidated by
        # the forwarded request itself, not a separate message.
        inv_targets = [s for s in plan.invalidated if s != plan.source]
        inv_rounds = [
            sim.spawn(
                self._invalidation_round(pid, home, node), name=f"inv{node}"
            )
            for node in inv_targets
        ]
        if not plan.had_data and plan.from_memory:
            service += self._mem_ns
            yield self._mem_ns
        elif not plan.had_data:
            source = plan.source
            if home != source:
                result = yield from self._net_transmit(
                    pid, Message(home, source, self._ctrl, "fwd")
                )
                latency += result.latency_ns
        if inv_rounds:
            # Sequential consistency: the home releases the block only
            # after every stale copy is gone.
            yield all_of(sim, inv_rounds)
            # Contention-free the rounds overlap, so one round's worth
            # of transmission time is genuine latency; queuing beyond
            # that surfaces as contention.
            if any(node != home for node in inv_targets):
                latency += self._inv_round_latency
        home_lock.release()
        if plan.had_data:
            # Ownership upgrade: permission only, granted by the home.
            if pid != home:
                result = yield from self._net_transmit(
                    pid, Message(home, pid, self._ctrl, "grant")
                )
                latency += result.latency_ns
        elif plan.from_memory:
            if home != pid:
                result = yield from self._net_transmit(
                    pid, Message(home, pid, self._data, "data")
                )
                latency += result.latency_ns
        else:
            source = plan.source
            service += self._hit_ns
            yield self._hit_ns
            result = yield from self._net_transmit(
                pid, Message(source, pid, self._data, "data")
            )
            latency += result.latency_ns
        self._post_writeback(pid, plan.writeback)
        return latency, service

    def _invalidation_round(self, pid: int, home: int, node: int):
        """Home -> sharer invalidation plus the returning ack.

        ``pid`` is the writer whose transaction required the round; its
        retry bucket absorbs any fault-recovery time the two control
        messages incur.
        """
        if home == node:
            # The home invalidates its local cache without a message.
            return
        yield from self._net_transmit(
            pid, Message(home, node, self._ctrl, "inv")
        )
        yield from self._net_transmit(
            pid, Message(node, home, self._ctrl, "ack")
        )

    # -- plumbing -----------------------------------------------------------------------

    def mp_transmit(self, pid: int, dst: int, nbytes: int):
        """Explicit message over the real network, packetized.

        Messages larger than the 32-byte maximum (Section 5) travel as
        a train of packets over the same circuit-switched links.
        """
        if pid == dst:
            return 0, 0
        latency = 0
        remaining = nbytes
        packet = self.config.data_message_bytes
        while remaining > 0:
            size = min(packet, remaining)
            result = yield from self._net_transmit(
                pid, Message(pid, dst, size, "mp")
            )
            latency += result.latency_ns
            remaining -= size
        return latency, 0

    def _home_lock(self, block: int) -> Resource:
        lock = self._home_locks.get(block)
        if lock is None:
            lock = Resource(self.sim, capacity=1, name=f"dir{block}")
            self._home_locks[block] = lock
        return lock

    def message_count(self) -> int:
        return self.fabric.messages
