"""The target machine: detailed CC-NUMA simulation.

This is the paper's reference point -- the machine whose "pertinent
hardware features" are simulated in full:

* per-node Berkeley caches kept sequentially consistent by a
  fully-mapped directory at each block's home node,
* every protocol message (request, forward, data, invalidation, ack,
  writeback) individually transported over the circuit-switched
  network, paying real link contention,
* directory requests serialized per block at the home (a FIFO resource,
  which doubles as the protocol's race-freedom mechanism),
* NUMA local memory (``memory_cycles``) at the home node.

Message sizes follow Section 5: data messages carry a 32-byte block;
control messages are 8 bytes.  The LogP abstraction charges everything
at the 32-byte ``L`` -- the paper calls out both that pessimism and the
opposing optimism of CLogP not modeling this machine's coherence
traffic.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SystemConfig
from ..engine.core import all_of
from ..engine.resource import Resource
from ..faults.reliable import ReliableTransport, RetryPolicy
from ..network.fabric import Fabric
from ..network.message import Message
from .coherence import CoherentMemory
from .machine import Machine, register_machine


@register_machine
class TargetMachine(Machine):
    """Detailed CC-NUMA machine (caches + directory + real network)."""

    name = "target"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.fabric = Fabric(
            self.sim, self.topology, config.link_ns_per_byte,
            switch_delay_ns=config.switch_delay_ns,
            injector=self.fault_injector,
            checkers=self.checkers,
        )
        if self.fault_injector is not None:
            self.reliable = ReliableTransport(
                self.fabric,
                self.fault_injector,
                RetryPolicy.from_fault(config.fault),
                ack_bytes=config.control_message_bytes,
                checkers=self.checkers,
            )
        else:
            self.reliable = None
        self.memory = CoherentMemory(
            config, self.space, checkers=self.checkers, sim=self.sim
        )
        self._home_locks: Dict[int, Resource] = {}
        self._ctrl = config.control_message_bytes
        self._data = config.data_message_bytes
        #: Contention-free time of one invalidation+ack round.
        self._inv_round_latency = 2 * config.control_message_ns
        # Hot-path constants (attribute chains cost on every access).
        self._block_bytes = config.block_bytes
        self._hit_ns = config.cache_hit_ns
        self._mem_ns = config.memory_ns
        self._caches = self.memory.caches
        if self.reliable is None:
            # Fault-free: skip the retry-banking wrapper generator --
            # ``_net_transmit(pid, msg)`` then IS ``fabric.transmit(msg)``.
            self._net_transmit = self._net_transmit_plain
        #: Contention-free transmission times of the two message sizes.
        self._ctrl_ns = self._ctrl * self.fabric.ns_per_byte
        self._data_ns = self._data * self.fabric.ns_per_byte
        if self.reliable is None and self.fabric.is_plain:
            # Fault-free, hook-free fabric: transactions transmit
            # through the Message-free latency path, and the directory
            # transactions run their fully-inlined twins (every link
            # grant and transmission delay yielded from the transaction
            # frame itself -- no per-message sub-generator).
            self._net_lat = self._lat_fast
            self._read_tx = self._read_transaction_fast
            self._write_tx = self._write_transaction_fast
            self._inv_round = self._invalidation_round_fast
            # On a flat-capable kernel, invalidation rounds post as
            # flat ops (same event sequence, no generator frame), and
            # whole directory transactions run as tag-dispatched flat
            # programs (see SoaSimulator.flat_transact): the kernel
            # steps request leg -> home lock -> plan callout -> service
            # sleep -> data/forward legs with no generator frame at
            # all.
            if self.sim._flat_capable:
                self._spawn_inv = self._spawn_inv_flat
                self._flat_ctx = (
                    self.fabric,
                    self.fabric._route_links,
                    self.fabric._nprocs,
                    self._ctrl,
                    self._data,
                    self._ctrl_ns,
                    self._data_ns,
                    self._mem_ns,
                    self._hit_ns,
                    self._inv_round_latency,
                    self.memory.plan_read,
                    self.memory.plan_write,
                    self,
                )
                # Bind once: the C loop recognizes deferred-call
                # tuples by identity of this exact callable (each
                # ``self._transact_flat`` access would make a fresh
                # bound method), and builds the op natively --
                # block/home/lock resolved through the same memo
                # dicts, with the method-form fallbacks for cold
                # blocks.
                self.transact_flat = self._transact_flat
                self.sim._flat_mctx = (
                    self.transact_flat,
                    self._block_bytes,
                    self.space._home_cache,
                    self.space.home_of_block,
                    self._home_locks,
                    self._home_lock,
                    self._flat_ctx,
                )
            else:
                self._spawn_inv = self._spawn_inv_gen
        else:
            self._net_lat = self._lat_general
            self._read_tx = self._read_transaction
            self._write_tx = self._write_transaction
            self._inv_round = self._invalidation_round
            self._spawn_inv = self._spawn_inv_gen

    def _net_transmit(self, pid: int, message: Message):
        """Generator: transmit on behalf of processor ``pid``.

        Routes through the reliable-delivery layer when faults are
        enabled, banking its recovery time against ``pid``'s retry
        bucket; otherwise this is exactly ``fabric.transmit``.
        """
        result = yield from self.reliable.transmit(message)
        if result.retry_ns:
            self.record_retry(pid, result.retry_ns)
        return result

    def _net_transmit_plain(self, pid: int, message: Message):
        # Returns the fabric's generator directly: ``yield from`` at the
        # call sites delegates to it with no wrapper frame in between.
        return self.fabric.transmit(message)

    def _lat_fast(self, pid: int, src: int, dst: int, nbytes: int,
                  kind: str):
        # Returns the fabric's Message-free generator directly -- one
        # message transfer with no Message, no TransferResult, and no
        # wrapper frame.  ``pid`` and ``kind`` are unused: the plain
        # fabric has no retry banking and no message hooks.
        return self.fabric.transmit_fast(src, dst, nbytes)

    def _lat_general(self, pid: int, src: int, dst: int, nbytes: int,
                     kind: str):
        """Generator twin of :meth:`_lat_fast` for the general fabric
        (faults, hooks, or switching delay): full Message transfer,
        returning only the latency split the transactions charge."""
        result = yield from self._net_transmit(
            pid, Message(src, dst, nbytes, kind)
        )
        return result.latency_ns

    # -- memory interface ---------------------------------------------------------

    def try_fast(self, pid: int, addr: int, is_write: bool) -> Optional[int]:
        block = addr // self._block_bytes
        cache = self._caches[pid]
        if cache.probe(block, is_write):
            return self._hit_ns
        if is_write and self.memory.try_silent_upgrade(pid, block):
            # Illinois: EXCLUSIVE -> DIRTY without a directory
            # transaction -- the "fancier protocol" saving.
            cache.lookup(block)
            return self._hit_ns
        return None

    def transact(self, pid: int, addr: int, is_write: bool):
        """One directory transaction.

        The per-block home lock models *directory occupancy*: it is held
        from the request's arrival at the home until the home has
        updated state, read memory, collected invalidation acks, and
        launched the forward/reply -- but not through the reply's flight
        back to the requester, which real directories pipeline with the
        next request.

        Returns the transaction generator directly (no wrapper frame:
        every ``send`` into a ``yield from`` chain walks the whole
        delegation stack, so one less frame here cheapens every
        resumption of every transaction).
        """
        block = addr // self._block_bytes
        if is_write:
            return self._write_tx(pid, block)
        return self._read_tx(pid, block)

    def _transact_flat(self, pid: int, addr: int, is_write: bool):
        """One directory transaction as a flat op (plain fabric,
        flat-capable kernel).

        Compiles the miss round into a kernel-stepped table program
        instead of a generator; the caller yields the returned FLAT_TX
        sentinel and is resumed with the same ``(latency, service)``
        pair, after the identical event sequence, as the generator
        twins above (the parity tests pin this).
        """
        block = addr // self._block_bytes
        return self.sim.flat_transact(
            self._flat_ctx, pid, block,
            self.space.home_of_block(block),
            self._home_lock(block), is_write,
        )

    def _post_writeback(self, pid: int, writeback) -> None:
        """Launch an evicted victim's writeback message, if any."""
        if writeback is not None:
            victim_block, victim_home = writeback
            if victim_home != pid:
                # Off the critical path, but it occupies real links.
                fabric = self.fabric
                if fabric.is_plain:
                    # Message-object-free twin: identical link grants,
                    # delays, and counters -- a flat op on flat-capable
                    # kernels (see Fabric.post_fast).
                    fabric.post_fast(pid, victim_home, self._data,
                                     name="wb")
                else:
                    fabric.post(
                        Message(pid, victim_home, self._data, "wb"),
                        name=f"wb{victim_block}",
                    )

    # -- transactions ------------------------------------------------------------------

    def _read_transaction(self, pid: int, block: int):
        """Directory read-miss: request, (forward,) data reply."""
        latency = 0
        service = 0
        home = self.space.home_of_block(block)
        if pid != home:
            latency += yield from self._net_lat(
                pid, pid, home, self._ctrl, "read_req"
            )
        home_lock = self._home_lock(block)
        yield home_lock  # kernel-resolved FIFO grant (see Resource)
        plan = self.memory.plan_read(pid, block)
        if plan.hit:  # raced with ourselves; cannot normally happen
            home_lock.release()
            return 0, self._hit_ns
        if plan.from_memory:
            service += self._mem_ns
            yield self._mem_ns
            home_lock.release()
            if home != pid:
                latency += yield from self._net_lat(
                    pid, home, pid, self._data, "data"
                )
        else:
            # Owned by a remote cache: home forwards, owner supplies.
            source = plan.source
            if home != source:
                latency += yield from self._net_lat(
                    pid, home, source, self._ctrl, "fwd"
                )
            home_lock.release()
            service += self._hit_ns
            yield self._hit_ns
            latency += yield from self._net_lat(
                pid, source, pid, self._data, "data"
            )
            if plan.sharing_writeback and source != home:
                # Illinois: the dirty owner's data also returns to the
                # home -- real traffic, off the requester's critical path.
                self.fabric.post(
                    Message(source, home, self._data, "shwb"),
                    name=f"shwb{block}",
                )
        self._post_writeback(pid, plan.writeback)
        return latency, service

    def _write_transaction(self, pid: int, block: int):
        """Directory write/ownership miss with parallel invalidations."""
        sim = self.sim
        latency = 0
        service = 0
        home = self.space.home_of_block(block)
        if pid != home:
            latency += yield from self._net_lat(
                pid, pid, home, self._ctrl, "write_req"
            )
        home_lock = self._home_lock(block)
        yield home_lock  # kernel-resolved FIFO grant (see Resource)
        plan = self.memory.plan_write(pid, block)
        if plan.fast:  # raced with ourselves; cannot normally happen
            home_lock.release()
            return 0, self._hit_ns
        # Invalidations go out in parallel with the home-side work.  The
        # previous owner (when it supplies the data) is invalidated by
        # the forwarded request itself, not a separate message.
        inv_targets = [s for s in plan.invalidated if s != plan.source]
        inv_rounds = [
            self._spawn_inv(pid, home, node) for node in inv_targets
        ]
        if not plan.had_data and plan.from_memory:
            service += self._mem_ns
            yield self._mem_ns
        elif not plan.had_data:
            source = plan.source
            if home != source:
                latency += yield from self._net_lat(
                    pid, home, source, self._ctrl, "fwd"
                )
        if inv_rounds:
            # Sequential consistency: the home releases the block only
            # after every stale copy is gone.
            yield all_of(sim, inv_rounds)
            # Contention-free the rounds overlap, so one round's worth
            # of transmission time is genuine latency; queuing beyond
            # that surfaces as contention.
            if any(node != home for node in inv_targets):
                latency += self._inv_round_latency
        home_lock.release()
        if plan.had_data:
            # Ownership upgrade: permission only, granted by the home.
            if pid != home:
                latency += yield from self._net_lat(
                    pid, home, pid, self._ctrl, "grant"
                )
        elif plan.from_memory:
            if home != pid:
                latency += yield from self._net_lat(
                    pid, home, pid, self._data, "data"
                )
        else:
            source = plan.source
            service += self._hit_ns
            yield self._hit_ns
            latency += yield from self._net_lat(
                pid, source, pid, self._data, "data"
            )
        self._post_writeback(pid, plan.writeback)
        return latency, service

    def _invalidation_round(self, pid: int, home: int, node: int):
        """Home -> sharer invalidation plus the returning ack.

        ``pid`` is the writer whose transaction required the round; its
        retry bucket absorbs any fault-recovery time the two control
        messages incur.
        """
        if home == node:
            # The home invalidates its local cache without a message.
            return
        yield from self._net_lat(pid, home, node, self._ctrl, "inv")
        yield from self._net_lat(pid, node, home, self._ctrl, "ack")

    def _spawn_inv_gen(self, pid: int, home: int, node: int):
        """Launch one invalidation round as a spawned generator."""
        return self.sim.spawn(
            self._inv_round(pid, home, node), name=f"inv{node}"
        )

    def _spawn_inv_flat(self, pid: int, home: int, node: int):
        """Launch one invalidation round as a flat op (plain fabric,
        flat-capable kernel).

        Two control-message legs -- inv out, ack back -- stepped by the
        kernel with no generator frame; the event timeline is identical
        to the spawned ``_invalidation_round_fast`` (the parity tests
        pin this).  The degenerate home==node round (no messages) keeps
        the generator form so its three-event start/finish/dispatch
        sequence is preserved exactly.
        """
        if home == node:
            return self._spawn_inv_gen(pid, home, node)
        fabric = self.fabric
        routes = fabric._route_links
        nprocs = fabric._nprocs
        out = routes[home * nprocs + node]
        back = routes[node * nprocs + home]
        ctrl = self._ctrl
        tx = self._ctrl_ns
        return self.sim.flat_transmit(
            fabric, ((out, ctrl, tx), (back, ctrl, tx))
        )

    # -- plain-fabric fast transactions ------------------------------------------------
    #
    # Frame-flattened twins of the three generators above, selected at
    # construction when the fabric is plain (fault-free, hook-free, zero
    # switching delay).  Every link grant and transmission delay is
    # yielded from the transaction's own frame -- no per-message
    # sub-generator -- which removes one delegation hop from every
    # resumption of every message transfer.  They MUST mirror the
    # general versions' event sequence exactly: same yields in the same
    # order under the same conditions (the cross-kernel and fast-path
    # parity tests pin this).  Per-message accounting is applied by
    # ``Fabric.settle_fast``.

    def _read_transaction_fast(self, pid: int, block: int):
        """``_read_transaction`` with transmits inlined (plain fabric)."""
        fabric = self.fabric
        sim = self.sim
        routes = fabric._route_links
        nprocs = fabric._nprocs
        settle = fabric.settle_fast
        latency = 0
        service = 0
        home = self.space.home_of_block(block)
        if pid != home:
            start = sim._now                       # read_req ->
            path = routes[pid * nprocs + home]
            for link in path:
                yield link
            circuit = sim._now
            tx = self._ctrl_ns
            yield tx
            settle(path, self._ctrl, tx, start, circuit, sim._now)
            latency += tx
        home_lock = self._home_lock(block)
        yield home_lock  # kernel-resolved FIFO grant (see Resource)
        plan = self.memory.plan_read(pid, block)
        if plan.hit:  # raced with ourselves; cannot normally happen
            home_lock.release()
            return 0, self._hit_ns
        if plan.from_memory:
            service += self._mem_ns
            yield self._mem_ns
            if home_lock._waiters:
                home_lock.release()
            else:
                # Uncontended directory release inlined (this frame
                # holds the lock, so in_use >= 1).
                home_lock.in_use -= 1
            if home != pid:
                start = sim._now                   # data ->
                path = routes[home * nprocs + pid]
                for link in path:
                    yield link
                circuit = sim._now
                tx = self._data_ns
                yield tx
                settle(path, self._data, tx, start, circuit, sim._now)
                latency += tx
        else:
            # Owned by a remote cache: home forwards, owner supplies.
            source = plan.source
            if home != source:
                start = sim._now                   # fwd ->
                path = routes[home * nprocs + source]
                for link in path:
                    yield link
                circuit = sim._now
                tx = self._ctrl_ns
                yield tx
                settle(path, self._ctrl, tx, start, circuit, sim._now)
                latency += tx
            if home_lock._waiters:
                home_lock.release()
            else:
                home_lock.in_use -= 1
            service += self._hit_ns
            yield self._hit_ns
            start = sim._now                       # data ->
            path = routes[source * nprocs + pid]
            for link in path:
                yield link
            circuit = sim._now
            tx = self._data_ns
            yield tx
            settle(path, self._data, tx, start, circuit, sim._now)
            latency += tx
            if plan.sharing_writeback and source != home:
                # Illinois: the dirty owner's data also returns to the
                # home -- real traffic, off the requester's critical path.
                fabric.post_fast(source, home, self._data, name="shwb")
        self._post_writeback(pid, plan.writeback)
        return latency, service

    def _write_transaction_fast(self, pid: int, block: int):
        """``_write_transaction`` with transmits inlined (plain fabric)."""
        fabric = self.fabric
        sim = self.sim
        routes = fabric._route_links
        nprocs = fabric._nprocs
        settle = fabric.settle_fast
        latency = 0
        service = 0
        home = self.space.home_of_block(block)
        if pid != home:
            start = sim._now                       # write_req ->
            path = routes[pid * nprocs + home]
            for link in path:
                yield link
            circuit = sim._now
            tx = self._ctrl_ns
            yield tx
            settle(path, self._ctrl, tx, start, circuit, sim._now)
            latency += tx
        home_lock = self._home_lock(block)
        yield home_lock  # kernel-resolved FIFO grant (see Resource)
        plan = self.memory.plan_write(pid, block)
        if plan.fast:  # raced with ourselves; cannot normally happen
            home_lock.release()
            return 0, self._hit_ns
        # Invalidations go out in parallel with the home-side work.  The
        # previous owner (when it supplies the data) is invalidated by
        # the forwarded request itself, not a separate message.
        inv_targets = [s for s in plan.invalidated if s != plan.source]
        inv_rounds = [
            self._spawn_inv(pid, home, node) for node in inv_targets
        ]
        if not plan.had_data and plan.from_memory:
            service += self._mem_ns
            yield self._mem_ns
        elif not plan.had_data:
            source = plan.source
            if home != source:
                start = sim._now                   # fwd ->
                path = routes[home * nprocs + source]
                for link in path:
                    yield link
                circuit = sim._now
                tx = self._ctrl_ns
                yield tx
                settle(path, self._ctrl, tx, start, circuit, sim._now)
                latency += tx
        if inv_rounds:
            # Sequential consistency: the home releases the block only
            # after every stale copy is gone.
            yield all_of(sim, inv_rounds)
            if any(node != home for node in inv_targets):
                latency += self._inv_round_latency
        if home_lock._waiters:
            home_lock.release()
        else:
            home_lock.in_use -= 1
        if plan.had_data:
            # Ownership upgrade: permission only, granted by the home.
            if pid != home:
                start = sim._now                   # grant ->
                path = routes[home * nprocs + pid]
                for link in path:
                    yield link
                circuit = sim._now
                tx = self._ctrl_ns
                yield tx
                settle(path, self._ctrl, tx, start, circuit, sim._now)
                latency += tx
        elif plan.from_memory:
            if home != pid:
                start = sim._now                   # data ->
                path = routes[home * nprocs + pid]
                for link in path:
                    yield link
                circuit = sim._now
                tx = self._data_ns
                yield tx
                settle(path, self._data, tx, start, circuit, sim._now)
                latency += tx
        else:
            source = plan.source
            service += self._hit_ns
            yield self._hit_ns
            start = sim._now                       # data ->
            path = routes[source * nprocs + pid]
            for link in path:
                yield link
            circuit = sim._now
            tx = self._data_ns
            yield tx
            settle(path, self._data, tx, start, circuit, sim._now)
            latency += tx
        self._post_writeback(pid, plan.writeback)
        return latency, service

    def _invalidation_round_fast(self, pid: int, home: int, node: int):
        """``_invalidation_round`` with transmits inlined (plain fabric)."""
        if home == node:
            # The home invalidates its local cache without a message.
            return
        fabric = self.fabric
        sim = self.sim
        routes = fabric._route_links
        nprocs = fabric._nprocs
        settle = fabric.settle_fast
        ctrl = self._ctrl
        tx = self._ctrl_ns
        start = sim._now                           # inv ->
        path = routes[home * nprocs + node]
        for link in path:
            yield link
        circuit = sim._now
        yield tx
        settle(path, ctrl, tx, start, circuit, sim._now)
        start = sim._now                           # ack ->
        path = routes[node * nprocs + home]
        for link in path:
            yield link
        circuit = sim._now
        yield tx
        settle(path, ctrl, tx, start, circuit, sim._now)

    # -- plumbing -----------------------------------------------------------------------

    def mp_transmit(self, pid: int, dst: int, nbytes: int):
        """Explicit message over the real network, packetized.

        Messages larger than the 32-byte maximum (Section 5) travel as
        a train of packets over the same circuit-switched links.
        """
        if pid == dst:
            return 0, 0
        latency = 0
        remaining = nbytes
        packet = self.config.data_message_bytes
        while remaining > 0:
            size = min(packet, remaining)
            latency += yield from self._net_lat(pid, pid, dst, size, "mp")
            remaining -= size
        return latency, 0

    def _home_lock(self, block: int) -> Resource:
        lock = self._home_locks.get(block)
        if lock is None:
            lock = Resource(self.sim, capacity=1, name=f"dir{block}")
            self._home_locks[block] = lock
        return lock

    def message_count(self) -> int:
        return self.fabric.messages
