"""Deriving the LogP parameters from machine configuration.

Following the paper (Section 5), which follows Culler et al.:

* ``L`` is the contention-free network time of the largest (32-byte)
  message: ``32 B x 50 ns/B = 1.6 us``, *independent of topology* --
  with negligible switching delay the serial-link transmission dominates
  the hop count.
* ``g`` is derived from the cross-section (bisection) bandwidth
  available per processor: in the worst case all ``P`` processors send
  across the bisection, and ``P/2`` messages must share each direction's
  ``bisection_links`` links, so a processor may inject at most one
  message every ``g = L * (P/2) / bisection_links`` nanoseconds.

For the paper's three networks this yields exactly the values quoted in
Section 5 (with L = 1.6 us):

* full:  ``g = 2L/P``          = 3.2/P us,
* cube:  ``g = L``             = 1.6 us,
* mesh:  ``g = L * cols / 2``  = 0.8 * cols us.

The ``o`` (send/receive overhead) parameter is carried for completeness
but is zero: on a shared-memory machine the message handling happens in
hardware, and the paper explicitly drops ``o`` as insignificant next to
``L`` and ``g``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..network.topology import Topology, make_topology


@dataclass(frozen=True)
class LogPParams:
    """The LogP parameter vector for one machine configuration."""

    #: Contention-free message latency, ns.
    L_ns: int

    #: Minimum gap between consecutive network events at a node, ns.
    g_ns: int

    #: Per-message processor overhead, ns (zero on shared memory).
    o_ns: int

    #: Number of processors.
    P: int

    @property
    def round_trip_ns(self) -> int:
        """Contention-free request/reply time: 2L + 2o."""
        return 2 * self.L_ns + 2 * self.o_ns


def derive_logp(config: SystemConfig, topology: Topology = None) -> LogPParams:
    """Compute the LogP parameters for a configuration.

    :param topology: pass an existing topology object to avoid
        rebuilding one; it must match ``config``.
    """
    if topology is None:
        topology = make_topology(config.topology, config.processors)
    L = config.data_message_ns
    nprocs = config.processors
    if nprocs == 1:
        g = 0
    else:
        bisection = topology.bisection_links()
        # Messages from P/2 processors share the bisection's links.
        g = round(L * (nprocs / 2) / bisection)
    return LogPParams(L_ns=L, g_ns=g, o_ns=0, P=nprocs)
