"""The abstracted LogP network: L delays plus g-gap gating.

Both the LogP and CLogP machines transport messages through this model.
A message from ``src`` to ``dst``:

1. may stall at the *sender* until ``g`` has elapsed since the sender's
   previous network event,
2. spends ``L`` in transit,
3. may stall at the *receiver* until ``g`` has elapsed since the
   receiver's previous network event.

The LogP definition gates *all* network events at a node with one gap
(a node cannot even overlap a send with a receive) -- the paper points
out this is one source of contention pessimism.  With
``per_event_type=True`` (the Section 7 relaxation) sends and receives
are gated independently.

Stalls are the model's *contention* estimate; the ``L`` terms are its
*latency* estimate.  The gate bookkeeping is pure arithmetic -- callers
get back the total duration and sleep once, which keeps LogP-machine
simulations event-light even though the *paper's* LogP simulations were
slow (their cost was the sheer number of references that become network
events; ours is too, relative to the cached machines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..engine.core import Simulator
from .params import LogPParams


@dataclass(frozen=True)
class Trip:
    """Timing decomposition of one (round-)trip through the LogP network."""

    #: Total elapsed time from initiation to completion.
    total_ns: int

    #: Contention-free transmission time (the L terms).
    latency_ns: int

    #: g-gap stall time (the model's contention estimate).
    stall_ns: int

    #: Remote service time included in the trip (e.g. memory access).
    service_ns: int

    #: Number of messages injected.
    messages: int

    #: Reliable-delivery recovery time contained in ``total_ns``:
    #: failed attempts, backoff waits, acks, fault delays and stalls.
    #: Zero on a fault-free network.
    retry_ns: int = 0


class LogPNetwork:
    """Per-node g-gap gates plus L-delay arithmetic.

    With ``adaptive=True`` (and a topology to measure routes on), the
    model implements the history-based g estimation the paper suggests
    as future work in Section 7: the effective gap is the configured
    ``g`` scaled by the *observed* communication locality -- the running
    mean of route hop counts divided by the mean hop count of uniform
    traffic (the assumption under which the bisection-bandwidth ``g``
    is derived).  An application whose messages travel half as far as
    uniform traffic gets half the gap, removing much of the pessimism
    the paper documents for EP.
    """

    def __init__(self, sim: Simulator, params: LogPParams,
                 per_event_type: bool = False, topology=None,
                 adaptive: bool = False, injector=None,
                 retry_policy=None, checkers=None):
        self.sim = sim
        self.params = params
        self.per_event_type = per_event_type
        self.adaptive = adaptive and topology is not None
        self.topology = topology
        #: Sanitizer hooks (empty tuples when unchecked).
        self._message_hooks = (
            checkers.message_hooks if checkers is not None else ()
        )
        self._arq_checkers = (
            checkers.arq_checkers if checkers is not None else ()
        )
        #: Optional :class:`~repro.faults.injector.FaultInjector`; when
        #: set, every message goes through the reliable-delivery
        #: arithmetic in :meth:`_one_way_faulty` (see there).
        self.injector = injector
        self.retry_policy = retry_policy
        #: Cumulative reliable-delivery recovery time.
        self.total_retry_ns = 0
        nprocs = params.P
        # Next time each node may perform a network event.  With
        # per-event-type gating, sends and receives have separate gates.
        self._send_gate: List[int] = [0] * nprocs
        self._recv_gate: List[int] = (
            [0] * nprocs if per_event_type else self._send_gate
        )
        #: Total messages injected through this network.
        self.messages = 0
        #: Cumulative stall time (instrumentation).
        self.total_stall_ns = 0
        # History for adaptive g.
        self._hops_total = 0
        self._hops_messages = 0
        self._uniform_mean_hops = (
            self._mean_uniform_hops(topology) if self.adaptive else 0.0
        )

    @staticmethod
    def _mean_uniform_hops(topology) -> float:
        """Mean route length of uniform all-pairs traffic."""
        nprocs = topology.nprocs
        if nprocs <= 1:
            return 1.0
        total = sum(
            topology.hops(src, dst)
            for src in range(nprocs)
            for dst in range(nprocs)
            if src != dst
        )
        return total / (nprocs * (nprocs - 1))

    # -- gate helpers ------------------------------------------------------------

    def effective_g(self) -> int:
        """The gap currently applied (scaled by history when adaptive)."""
        g = self.params.g_ns
        if not self.adaptive or self._hops_messages == 0:
            return g
        observed = self._hops_total / self._hops_messages
        factor = min(1.0, observed / self._uniform_mean_hops)
        return round(g * factor)

    def _observe(self, src: int, dst: int) -> None:
        if self.adaptive:
            self._hops_total += self.topology.hops(src, dst)
            self._hops_messages += 1

    def _gate_send(self, node: int, at: int) -> int:
        """Earliest time >= ``at`` the node may send; reserves the slot."""
        start = max(at, self._send_gate[node])
        self._send_gate[node] = start + self.effective_g()
        return start

    def _gate_recv(self, node: int, at: int) -> int:
        """Earliest time >= ``at`` the node may receive; reserves the slot."""
        start = max(at, self._recv_gate[node])
        self._recv_gate[node] = start + self.effective_g()
        return start

    # -- trips --------------------------------------------------------------------

    def one_way(self, src: int, dst: int, start_at: int = None) -> Trip:
        """One message src -> dst; returns its timing decomposition."""
        now = self.sim.now if start_at is None else start_at
        if self.injector is not None:
            return self._one_way_faulty(src, dst, now)
        L = self.params.L_ns
        o2 = 2 * self.params.o_ns
        self._observe(src, dst)
        sent = self._gate_send(src, now)
        arrived = sent + L
        received = self._gate_recv(dst, arrived)
        total = (received - now) + o2
        stall = (sent - now) + (received - arrived)
        self.messages += 1
        self.total_stall_ns += stall
        if self._message_hooks:
            for hook in self._message_hooks:
                hook(received, src, dst, "logp", 0, True)
        return Trip(
            total_ns=total,
            latency_ns=L + o2,
            stall_ns=stall,
            service_ns=0,
            messages=1,
        )

    def _one_way_faulty(self, src: int, dst: int, begin: int) -> Trip:
        """One message under fault injection with reliable delivery.

        The LogP network abstracts links, so the ARQ protocol is
        abstracted to match: each attempt pays the ordinary gated trip;
        a lost or corrupted attempt costs a backed-off timeout before
        the retransmission; a delivered attempt is confirmed by an ack
        that costs one ``L`` (acks are small and not ``g``-gated -- the
        deliberate simplification mirroring how the model already
        ignores control-message sizes).  Link-failure windows apply to
        any route the topology says crosses the dead link; node stalls
        freeze the endpoint until their window closes.

        The returned trip keeps the successful attempt's ``L`` as
        latency and its gate waits as stall; everything else is
        ``retry_ns``.

        :raises RetryLimitError: the retry cap was exhausted.
        """
        from ..errors import RetryLimitError

        injector = self.injector
        policy = self.retry_policy
        message_hooks = self._message_hooks
        arq_checkers = self._arq_checkers
        L = self.params.L_ns
        o2 = 2 * self.params.o_ns
        self._observe(src, dst)
        now = begin
        failed_attempts = 0
        delivered = False
        latency = L + o2
        stall = 0
        for checker in arq_checkers:
            checker.on_logical_send(begin, src, dst)
        while True:
            send_stall = injector.stall_ns(src, now)
            fate = injector.fate(src, dst, now + send_stall, check_route=True)
            sent = self._gate_send(src, now + send_stall)
            self.messages += 1
            if not fate.delivered and not fate.corrupted:
                # Lost in the network: the sender times out.
                failure_at = sent + L
                if message_hooks:
                    for hook in message_hooks:
                        hook(failure_at, src, dst, "logp", 0, False)
            else:
                arrived = sent + L + fate.delay_ns
                recv_stall = injector.stall_ns(dst, arrived)
                received = self._gate_recv(dst, arrived + recv_stall)
                if fate.corrupted:
                    # Checksum failure at the receiver: no ack follows.
                    failure_at = received
                    if message_hooks:
                        for hook in message_hooks:
                            hook(received, src, dst, "logp", 0, False)
                else:
                    if message_hooks:
                        for hook in message_hooks:
                            hook(received, src, dst, "logp", 0, True)
                    for checker in arq_checkers:
                        checker.on_app_delivery(received, src, dst, delivered)
                    if not delivered:
                        delivered = True
                        stall = (sent - (now + send_stall)) + \
                            (received - (arrived + recv_stall))
                    ack_fate = injector.fate(
                        dst, src, received, check_route=True
                    )
                    acked = received + L
                    self.messages += 1
                    if message_hooks:
                        for hook in message_hooks:
                            hook(acked, dst, src, "ack", 0,
                                 ack_fate.delivered)
                    if ack_fate.delivered:
                        for checker in arq_checkers:
                            checker.on_logical_complete(acked, src, dst)
                        total = (acked - begin) + o2
                        retry = max(0, total - latency - stall)
                        self.total_stall_ns += stall
                        self.total_retry_ns += retry
                        return Trip(
                            total_ns=total,
                            latency_ns=latency,
                            stall_ns=stall,
                            service_ns=0,
                            messages=1,
                            retry_ns=retry,
                        )
                    failure_at = acked
            failed_attempts += 1
            if failed_attempts > policy.max_retries:
                raise RetryLimitError(src, dst, failed_attempts, failure_at)
            now = failure_at + policy.backoff_ns(failed_attempts)

    def round_trip(self, src: int, dst: int, service_ns: int = 0) -> Trip:
        """Request src -> dst, remote service, reply dst -> src.

        This is the cost of satisfying a shared-memory reference
        remotely under the LogP abstraction.  ``service_ns`` models the
        remote node's memory/cache access between the two messages.
        """
        now = self.sim.now
        request = self.one_way(src, dst, now)
        reply_start = now + request.total_ns + service_ns
        reply = self.one_way(dst, src, reply_start)
        total = request.total_ns + service_ns + reply.total_ns
        return Trip(
            total_ns=total,
            latency_ns=request.latency_ns + reply.latency_ns,
            stall_ns=request.stall_ns + reply.stall_ns,
            service_ns=service_ns,
            messages=2,
            retry_ns=request.retry_ns + reply.retry_ns,
        )
