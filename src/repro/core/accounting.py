"""SPASM-style overhead separation.

SPASM's profiling novelty -- the thing the whole paper leans on -- is
splitting a parallel execution into an *algorithmic* component and an
*interaction* component, and splitting the interaction component into
network **latency** (time messages would take on a contention-free
network) and network **contention** (the rest of the time spent in, or
waiting for, the network).  We keep per-processor buckets:

``compute_ns``
    cycles the application explicitly executes,
``memory_ns``
    cache-hit and local-memory time (present on the ideal machine too),
``latency_ns``
    contention-free transmission time of network messages the processor
    waited on (plus, on LogP, the cost of spin polls),
``contention_ns``
    everything network-induced beyond that: link waiting (target),
    ``g``-gap stalls (LogP/CLogP), directory serialization,
``sync_ns``
    time blocked on locks/barriers/flags that was *not* network time.

``compute + memory`` over the critical path is what SPASM calls ideal
time; we obtain it directly by running the application on
:class:`~repro.core.ideal_machine.IdealMachine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..checkers.base import CheckReport
from ..units import ns_to_us


@dataclass
class OverheadBuckets:
    """Per-processor accumulated overhead components (nanoseconds)."""

    compute_ns: int = 0
    memory_ns: int = 0
    latency_ns: int = 0
    contention_ns: int = 0
    sync_ns: int = 0
    #: Reliable-delivery recovery time under fault injection: failed
    #: transmission attempts, backoff waits, acks, duplicate sends,
    #: fault-injected delays and stalls.  Always zero on a fault-free
    #: network, keeping the classic SPASM separation untouched.
    retry_ns: int = 0

    @property
    def total_ns(self) -> int:
        """Sum of all buckets (≈ the processor's busy+blocked time)."""
        return (
            self.compute_ns
            + self.memory_ns
            + self.latency_ns
            + self.contention_ns
            + self.sync_ns
            + self.retry_ns
        )

    def add(self, other: "OverheadBuckets") -> None:
        """Accumulate another bucket set into this one."""
        self.compute_ns += other.compute_ns
        self.memory_ns += other.memory_ns
        self.latency_ns += other.latency_ns
        self.contention_ns += other.contention_ns
        self.sync_ns += other.sync_ns
        self.retry_ns += other.retry_ns

    def as_dict(self) -> Dict[str, int]:
        return {
            "compute_ns": int(self.compute_ns),
            "memory_ns": int(self.memory_ns),
            "latency_ns": int(self.latency_ns),
            "contention_ns": int(self.contention_ns),
            "sync_ns": int(self.sync_ns),
            "retry_ns": int(self.retry_ns),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "OverheadBuckets":
        """Rebuild a bucket set from :meth:`as_dict` output."""
        return cls(**{key: int(value) for key, value in data.items()})


@dataclass
class RunResult:
    """Everything measured from one (application, machine) simulation."""

    app: str
    machine: str
    topology: str
    nprocs: int

    #: Simulated execution time: max over processors of finish time.
    total_ns: int = 0

    #: Per-processor overhead buckets, index = processor id.
    buckets: List[OverheadBuckets] = field(default_factory=list)

    #: Network messages transported (protocol messages on the target;
    #: round-trip halves and spin polls on the LogP machines).
    messages: int = 0

    #: Scheduler steps executed by the discrete-event engine -- the
    #: paper's "speed of simulation" argument is about event counts.
    sim_events: int = 0

    #: Host wall-clock seconds the simulation took.
    wall_seconds: float = 0.0

    #: Did the application's functional self-check pass?
    verified: bool = False

    #: End-of-run sanitizer report (None when ``check="off"`` and no
    #: digest was requested; see :mod:`repro.checkers`).
    check_report: Optional[CheckReport] = None

    #: Engine-kernel metadata from the run's simulator: the kernel name
    #: plus its deterministic scheduling counters (heap pops, ring pops,
    #: free-list reuse -- see ``Simulator.engine_profile``).  None on
    #: results recorded before the kernel tier existed.
    engine: Optional[Dict] = None

    # -- aggregates used by the paper's figures --------------------------------

    def _mean(self, attribute: str) -> float:
        if not self.buckets:
            return 0.0
        return sum(getattr(b, attribute) for b in self.buckets) / len(self.buckets)

    @property
    def total_us(self) -> float:
        """Execution time in microseconds (figures 12-18)."""
        return ns_to_us(self.total_ns)

    @property
    def mean_latency_us(self) -> float:
        """Mean per-processor latency overhead, us (figures 1-5)."""
        return ns_to_us(self._mean("latency_ns"))

    @property
    def mean_contention_us(self) -> float:
        """Mean per-processor contention overhead, us (figures 6-11, 19-20)."""
        return ns_to_us(self._mean("contention_ns"))

    @property
    def mean_compute_us(self) -> float:
        return ns_to_us(self._mean("compute_ns"))

    @property
    def mean_memory_us(self) -> float:
        return ns_to_us(self._mean("memory_ns"))

    @property
    def mean_sync_us(self) -> float:
        return ns_to_us(self._mean("sync_ns"))

    @property
    def mean_retry_us(self) -> float:
        """Mean per-processor fault-recovery (retry) overhead, us."""
        return ns_to_us(self._mean("retry_ns"))

    def metric(self, name: str) -> float:
        """Figure metrics by name: ``execution|latency|contention|retry``."""
        if name == "execution":
            return self.total_us
        if name == "latency":
            return self.mean_latency_us
        if name == "contention":
            return self.mean_contention_us
        if name == "retry":
            return self.mean_retry_us
        raise KeyError(f"unknown metric {name!r}")

    # -- (de)serialization for sweep checkpoints --------------------------------

    def to_dict(self) -> Dict:
        """JSON-ready representation (see sweep checkpointing)."""
        return {
            "app": self.app,
            "machine": self.machine,
            "topology": self.topology,
            "nprocs": int(self.nprocs),
            "total_ns": int(self.total_ns),
            "buckets": [b.as_dict() for b in self.buckets],
            "messages": int(self.messages),
            "sim_events": int(self.sim_events),
            "wall_seconds": float(self.wall_seconds),
            # bool() strips numpy scalar types, keeping the dict
            # JSON-serializable for sweep checkpoints.
            "verified": bool(self.verified),
            "check_report": (
                self.check_report.to_dict()
                if self.check_report is not None else None
            ),
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            app=data["app"],
            machine=data["machine"],
            topology=data["topology"],
            nprocs=int(data["nprocs"]),
            total_ns=int(data["total_ns"]),
            buckets=[OverheadBuckets.from_dict(b) for b in data["buckets"]],
            messages=int(data["messages"]),
            sim_events=int(data["sim_events"]),
            wall_seconds=float(data["wall_seconds"]),
            verified=bool(data["verified"]),
            # .get() keeps checkpoints written before the sanitizer
            # existed loadable.
            check_report=(
                CheckReport.from_dict(data["check_report"])
                if data.get("check_report") is not None else None
            ),
            # .get(): results serialized before the kernel tier existed.
            engine=data.get("engine"),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.app:9s} {self.machine:6s} {self.topology:4s} p={self.nprocs:<3d} "
            f"time={self.total_us:12.1f}us latency={self.mean_latency_us:10.1f}us "
            f"contention={self.mean_contention_us:10.1f}us msgs={self.messages:<8d} "
            f"{'ok' if self.verified else 'FAILED'}"
        )
