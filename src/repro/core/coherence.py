"""Shared functional core of the Berkeley coherence protocol.

Both cached machines -- the detailed target and the CLogP abstraction --
run the *same* state machine over the same caches and directory, which
is exactly the paper's setup: CLogP "maintains the caches coherent ...
but does not model the overheads associated with maintaining the
coherence".  The state machine therefore lives here once, and each
machine attaches its own timing:

* the **target** turns each transition into directory messages on the
  detailed network (and pays memory/serialization time),
* **CLogP** pays only for transitions whose *data* must come from a
  remote node, via a LogP round trip; pure coherence actions
  (invalidations, ownership grants, acks, writebacks) are free.

A transaction is planned *atomically*: ``plan_read``/``plan_write``
mutate the caches and directory and return a plan object describing
what happened, from which the machines derive their message sequences.
The target serializes transactions per block at the home node before
planning, which is how a real fully-mapped directory orders conflicting
requests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..config import SystemConfig
from ..errors import ProtocolError
from ..memory.address import AddressSpace
from ..memory.cache import Cache
from ..memory.directory import Directory
from ..memory.states import LineState

#: A required writeback: (block id, home node of the block).
Writeback = Tuple[int, int]


class ReadPlan:
    """Outcome of one load.

    A plain ``__slots__`` value class (one is allocated per directory
    read transaction, so its constructor is hot -- a frozen dataclass
    pays ``object.__setattr__`` per field).
    """

    __slots__ = ("hit", "source", "from_memory", "home", "writeback",
                 "sharing_writeback")

    def __init__(self, hit: bool, source: Optional[int] = None,
                 from_memory: bool = False, home: int = -1,
                 writeback: Optional[Writeback] = None,
                 sharing_writeback: bool = False):
        #: The line was already valid locally: no transaction at all.
        self.hit = hit
        #: Node that supplied the data (home or previous owner); None
        #: on hit.
        self.source = source
        #: Data came from home memory (as opposed to an owning cache).
        self.from_memory = from_memory
        #: Home node of the block.
        self.home = home
        #: Eviction-induced writeback, if the victim was owned.
        self.writeback = writeback
        #: Illinois only: the dirty owner's data also returns to the
        #: home (a sharing writeback message on the target machine).
        self.sharing_writeback = sharing_writeback

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadPlan(hit={self.hit}, source={self.source}, "
            f"from_memory={self.from_memory}, home={self.home}, "
            f"writeback={self.writeback}, "
            f"sharing_writeback={self.sharing_writeback})"
        )


class WritePlan:
    """Outcome of one store (a ``__slots__`` value class, like
    :class:`ReadPlan`)."""

    __slots__ = ("fast", "had_data", "source", "from_memory", "home",
                 "invalidated", "prev_owner", "writeback")

    def __init__(self, fast: bool, had_data: bool = True,
                 source: Optional[int] = None, from_memory: bool = False,
                 home: int = -1, invalidated: Tuple[int, ...] = (),
                 prev_owner: Optional[int] = None,
                 writeback: Optional[Writeback] = None):
        #: The line was already writable (DIRTY): no coherence action.
        self.fast = fast
        #: The line held valid data (no data transfer needed), even if
        #: ownership had to be acquired.
        self.had_data = had_data
        #: Node that supplied the data when a transfer was needed.
        self.source = source
        self.from_memory = from_memory
        self.home = home
        #: Caches whose copies were invalidated (ownership transfer
        #: included).
        self.invalidated = invalidated
        #: Previous owner (may equal a member of ``invalidated``).
        self.prev_owner = prev_owner
        self.writeback = writeback

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WritePlan(fast={self.fast}, had_data={self.had_data}, "
            f"source={self.source}, from_memory={self.from_memory}, "
            f"home={self.home}, invalidated={self.invalidated}, "
            f"prev_owner={self.prev_owner}, writeback={self.writeback})"
        )


class CoherentMemory:
    """Caches + directory + the Berkeley transition function."""

    def __init__(self, config: SystemConfig, space: AddressSpace,
                 checkers=None, sim=None):
        self.config = config
        self.space = space
        self.nprocs = config.processors
        self.protocol = config.protocol
        self.caches: List[Cache] = [
            Cache(config.sets, config.cache_assoc)
            for _ in range(config.processors)
        ]
        self.directory = Directory()
        #: Silent EXCLUSIVE -> DIRTY upgrades performed (Illinois only).
        self.silent_upgrades = 0
        # Sanitizer wiring: transition hooks fire after every protocol
        # state change (see repro.checkers.coherence); the sim reference
        # only timestamps violations.
        self._sim = sim
        self._transition_hooks = (
            checkers.transition_hooks if checkers is not None else ()
        )

    def _after_transition(self, pid: int, block: int,
                          victim_block: Optional[int] = None) -> None:
        """Dispatch sanitizer hooks for a completed state transition."""
        now = self._sim.now if self._sim is not None else 0
        for hook in self._transition_hooks:
            hook(self, pid, block, now)
            if victim_block is not None and victim_block != block:
                hook(self, pid, victim_block, now)

    # -- classification (no mutation) -------------------------------------------

    def read_source(self, pid: int, block: int) -> Optional[int]:
        """Remote node a read miss must fetch from, or None if local.

        Assumes the line is INVALID at ``pid`` (i.e. an actual miss).
        A remote *owner* forces a network access even when ``pid`` is
        the home (memory is stale); otherwise the home supplies data.
        """
        entry = self.directory.peek(block)
        if entry is not None and entry.owner is not None and entry.owner != pid:
            return entry.owner
        home = self.space.home_of_block(block)
        return None if home == pid else home

    def write_source(self, pid: int, block: int) -> Optional[int]:
        """Remote node a write must fetch data from, or None.

        None means the store needs no remote data: either the line is
        valid locally, or home memory is local and clean.
        """
        if self.caches[pid].state_of(block).is_valid:
            return None
        return self.read_source(pid, block)

    # -- transitions (mutate state, return plans) ----------------------------------

    def plan_read(self, pid: int, block: int) -> ReadPlan:
        """Execute a load's state transition."""
        cache = self.caches[pid]
        line = cache.lookup(block)
        if line is not None:
            return ReadPlan(hit=True)
        home = self.space.home_of_block(block)
        entry = self.directory.entry(block)
        sharing_writeback = False
        fill_state = LineState.VALID
        if entry.owner is not None and entry.owner != pid:
            source = entry.owner
            from_memory = False
            if self.protocol == "illinois":
                # MESI: the owner downgrades to shared; a dirty owner
                # also returns the data to memory (sharing writeback),
                # so the home is clean again and ownership lapses.
                owner_state = self.caches[source].state_of(block)
                sharing_writeback = owner_state.is_dirty
                self.caches[source].set_state(block, LineState.VALID)
                entry.owner = None
            else:
                # Berkeley: the owner supplies data and keeps ownership,
                # but the block is now (potentially) shared.
                self.caches[source].set_state(block, LineState.SHARED_DIRTY)
        else:
            if entry.owner == pid:
                raise ProtocolError(
                    f"node {pid} owns block {block} but missed on it"
                )
            source = home
            from_memory = True
            if self.protocol == "illinois" and not entry.sharers:
                # MESI: a fill nobody else caches arrives EXCLUSIVE.
                fill_state = LineState.EXCLUSIVE
        victim = cache.install(block, fill_state)
        entry.sharers.add(pid)
        if fill_state is LineState.EXCLUSIVE:
            entry.owner = pid
        writeback = self._retire_victim(pid, victim)
        if self._transition_hooks:
            self._after_transition(
                pid, block, victim[0] if victim is not None else None
            )
        return ReadPlan(
            hit=False,
            source=source,
            from_memory=from_memory,
            home=home,
            writeback=writeback,
            sharing_writeback=sharing_writeback,
        )

    def try_silent_upgrade(self, pid: int, block: int) -> bool:
        """Illinois: upgrade an EXCLUSIVE line to DIRTY for free.

        Returns True when the store needs no coherence transaction at
        all -- the defining optimization of the MESI protocol.
        """
        if self.protocol != "illinois":
            return False
        cache = self.caches[pid]
        if cache.state_of(block) is not LineState.EXCLUSIVE:
            return False
        cache.set_state(block, LineState.DIRTY)
        self.silent_upgrades += 1
        if self._transition_hooks:
            self._after_transition(pid, block)
        return True

    def plan_write(self, pid: int, block: int) -> WritePlan:
        """Execute a store's state transition."""
        cache = self.caches[pid]
        line = cache.lookup(block)
        state = line.state if line is not None else LineState.INVALID
        if state is LineState.DIRTY:
            return WritePlan(fast=True)
        if state is LineState.EXCLUSIVE and self.try_silent_upgrade(pid, block):
            return WritePlan(fast=True)
        home = self.space.home_of_block(block)
        entry = self.directory.entry(block)
        prev_owner = entry.owner
        invalidated = tuple(sorted(s for s in entry.sharers if s != pid))
        for node in invalidated:
            self.caches[node].invalidate(block)
        had_data = state.is_valid
        source: Optional[int] = None
        from_memory = False
        if not had_data:
            if prev_owner is not None and prev_owner != pid:
                source = prev_owner
            else:
                source = home
                from_memory = True
        victim = cache.install(block, LineState.DIRTY)
        entry.owner = pid
        entry.sharers = {pid}
        writeback = self._retire_victim(pid, victim)
        if self._transition_hooks:
            self._after_transition(
                pid, block, victim[0] if victim is not None else None
            )
        return WritePlan(
            fast=False,
            had_data=had_data,
            source=source,
            from_memory=from_memory,
            home=home,
            invalidated=invalidated,
            prev_owner=prev_owner,
            writeback=writeback,
        )

    def _retire_victim(
        self, pid: int, victim: Optional[Tuple[int, LineState]]
    ) -> Optional[Writeback]:
        """Update the directory for an evicted line; report writebacks."""
        if victim is None:
            return None
        vblock, vstate = victim
        ventry = self.directory.entry(vblock)
        ventry.sharers.discard(pid)
        writeback: Optional[Writeback] = None
        if vstate.is_owned:
            if ventry.owner != pid:
                raise ProtocolError(
                    f"evicting owned block {vblock} from {pid} but directory "
                    f"says owner is {ventry.owner}"
                )
            ventry.owner = None
            if vstate.is_dirty:
                # EXCLUSIVE victims are clean and die silently.
                writeback = (vblock, self.space.home_of_block(vblock))
        elif ventry.owner == pid:
            raise ProtocolError(
                f"directory says {pid} owns {vblock} but its line state "
                f"was {vstate.name}"
            )
        self.directory.drop_if_idle(vblock)
        return writeback

    # -- invariants (runtime sanitizer and tests) -------------------------------------

    def check_block(self, block: int) -> None:
        """Verify the coherence invariants of one block (O(P)).

        The per-transition check of ``--check=basic``: directory entry
        self-consistency (:meth:`DirectoryEntry.check`), SWMR, and
        directory <-> cache cross-consistency for the touched block.

        :raises ProtocolError: any invariant is violated.
        """
        entry = self.directory.peek(block)
        holders = [
            (pid, cache.state_of(block))
            for pid, cache in enumerate(self.caches)
            if cache.contains(block)
        ]
        if entry is None:
            if holders:
                raise ProtocolError(
                    f"block {block} cached at "
                    f"{[pid for pid, _ in holders]} but has no directory "
                    f"entry"
                )
            return
        entry.check()
        owners = [pid for pid, state in holders if state.is_owned]
        if len(owners) > 1:
            raise ProtocolError(f"block {block} has owners {owners}")
        exclusive = [
            pid for pid, state in holders
            if state in (LineState.DIRTY, LineState.EXCLUSIVE)
        ]
        if exclusive and len(holders) > 1:
            raise ProtocolError(
                f"block {block} exclusive at {exclusive} but held by "
                f"{holders}"
            )
        for pid, _state in holders:
            if pid not in entry.sharers:
                raise ProtocolError(
                    f"block {block} cached at {pid} but not in sharer set "
                    f"{entry.sharers}"
                )
        if owners and entry.owner != owners[0]:
            raise ProtocolError(
                f"block {block}: directory owner {entry.owner} != cache "
                f"owner {owners[0]}"
            )
        if not owners and entry.owner is not None:
            raise ProtocolError(
                f"block {block}: directory owner {entry.owner} owns nothing"
            )
        for pid in entry.sharers:
            if not self.caches[pid].contains(block):
                raise ProtocolError(
                    f"block {block}: sharer {pid} holds no line"
                )

    def check_invariants(self) -> None:
        """Raise :class:`ProtocolError` on any coherence inconsistency."""
        seen = {}
        for pid, cache in enumerate(self.caches):
            for block, line in cache._by_block.items():
                seen.setdefault(block, []).append((pid, line.state))
        for block, holders in seen.items():
            entry = self.directory.peek(block)
            if entry is None:
                raise ProtocolError(f"block {block} cached but no directory entry")
            owners = [p for p, s in holders if s.is_owned]
            if len(owners) > 1:
                raise ProtocolError(f"block {block} has owners {owners}")
            exclusive = [
                p for p, s in holders
                if s in (LineState.DIRTY, LineState.EXCLUSIVE)
            ]
            if exclusive and len(holders) > 1:
                raise ProtocolError(
                    f"block {block} exclusive at {exclusive} but shared by "
                    f"{holders}"
                )
            for pid, _state in holders:
                if pid not in entry.sharers:
                    raise ProtocolError(
                        f"block {block} cached at {pid} but not in sharer set"
                    )
            if owners:
                if entry.owner != owners[0]:
                    raise ProtocolError(
                        f"block {block}: directory owner {entry.owner} != "
                        f"cache owner {owners[0]}"
                    )
            elif entry.owner is not None:
                raise ProtocolError(
                    f"block {block}: directory owner {entry.owner} owns nothing"
                )
        for block in list(self.directory.blocks()):
            entry = self.directory.peek(block)
            for pid in entry.sharers:
                if not self.caches[pid].contains(block):
                    raise ProtocolError(
                        f"block {block}: sharer {pid} holds no line"
                    )
