"""The LogP machine: no caches, network abstracted by L and g.

Each node holds its slice of shared memory (like the paper's reference
to the BBN Butterfly GP-1000); *every* reference to a non-local address
becomes a request/reply round trip through the
:class:`~repro.core.logp_net.LogPNetwork` -- there is no cache to absorb
reuse or spatial locality, which is exactly what the paper's
LogP-vs-CLogP comparison isolates.

Spin-based synchronization cannot sit in a cache here: a blocked
processor polls the remote word every ``poll_interval_ns``, and each
poll is two messages charged to latency overhead
(:meth:`LogPMachine.split_spin`).  Fig. 3's enormous EP latency
overhead on LogP comes from precisely this behaviour.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..config import SystemConfig
from ..faults.reliable import RetryPolicy
from .logp_net import LogPNetwork
from .machine import Machine, register_machine
from .params import derive_logp


@register_machine
class LogPMachine(Machine):
    """Cache-less NUMA machine over the LogP network abstraction."""

    name = "logp"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.params = derive_logp(config, self.topology)
        self.net = LogPNetwork(
            self.sim,
            self.params,
            per_event_type=config.g_per_event_type,
            topology=self.topology,
            adaptive=config.adaptive_g,
            injector=self.fault_injector,
            retry_policy=(
                RetryPolicy.from_fault(config.fault)
                if self.fault_injector is not None else None
            ),
            checkers=self.checkers,
        )
        self._poll_messages = 0

    # -- memory interface ---------------------------------------------------------

    def try_fast(self, pid: int, addr: int, is_write: bool) -> Optional[int]:
        if self.space.home_of(addr) == pid:
            return self.config.memory_ns
        return None

    def transact(self, pid: int, addr: int, is_write: bool):
        home = self.space.home_of(addr)
        trip = self.net.round_trip(pid, home, service_ns=self.config.memory_ns)
        if trip.retry_ns:
            self.record_retry(pid, trip.retry_ns)
        yield trip.total_ns
        return trip.latency_ns, trip.service_ns


    def mp_transmit(self, pid: int, dst: int, nbytes: int):
        """Explicit message through the LogP network, packetized.

        Each packet is one LogP message: full ``L`` latency plus the
        per-node ``g`` gating (and ``o``, were it non-zero) -- the
        model's home turf, since LogP was formulated for message
        passing.
        """
        if pid == dst:
            return 0, 0
        latency = 0
        total = 0
        remaining = nbytes
        packet = self.config.data_message_bytes
        while remaining > 0:
            trip = self.net.one_way(pid, dst)
            latency += trip.latency_ns
            total = max(total, trip.total_ns)
            if trip.retry_ns:
                self.record_retry(pid, trip.retry_ns)
            remaining -= packet
        yield total
        return latency, 0

    # -- spin model ---------------------------------------------------------------

    def split_spin(self, pid: int, wait_ns: int, addr: int) -> Tuple[int, int]:
        """Blocked waits become periodic remote polls.

        A poll is a full round trip (2 messages, 2L of latency).  Waits
        on locally-homed words poll local memory and cost nothing extra.
        """
        if wait_ns <= 0 or self.space.home_of(addr) == pid:
            return 0, wait_ns
        polls = wait_ns // self.config.poll_interval_ns
        if polls <= 0:
            return 0, wait_ns
        poll_ns = polls * self.params.round_trip_ns
        if poll_ns > wait_ns:
            poll_ns = wait_ns
        self._poll_messages += 2 * polls
        return poll_ns, wait_ns - poll_ns

    def message_count(self) -> int:
        return self.net.messages + self._poll_messages
