"""Running an application on a machine model.

:func:`simulate` is the package's main entry point: build the machine,
let the application allocate its shared data and generate its input,
spawn one simulated processor per node, run the event loop to
completion, and collect a :class:`~repro.core.accounting.RunResult`.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from ..config import SystemConfig
from ..errors import ApplicationError
from .accounting import RunResult
from .machine import Machine, Processor, make_machine


def simulate(
    app,
    machine_name: str,
    config: SystemConfig,
    check_invariants: bool = False,
    max_events: Optional[int] = None,
) -> RunResult:
    """Simulate ``app`` on the named machine model.

    :param app: a fresh :class:`~repro.apps.base.Application` instance
        (applications hold run state and must not be reused across runs).
    :param machine_name: ``"target"``, ``"logp"``, ``"clogp"`` or ``"ideal"``.
    :param config: hardware configuration; ``config.processors`` decides
        how many application processes run.
    :param check_invariants: verify coherence invariants after the run
        (cached machines only; used by tests).
    :param max_events: optional engine watchdog budget (see
        :meth:`~repro.engine.core.Simulator.run`).
    """
    result, _machine = simulate_full(
        app, machine_name, config, check_invariants=check_invariants,
        max_events=max_events,
    )
    return result


def simulate_spec(spec, check_invariants: bool = False) -> RunResult:
    """Simulate one :class:`~repro.runspec.RunSpec`.

    The spec-level entry point shared by the CLI, the execution
    backends, and the analysis tooling: a fresh application instance is
    built from the spec's canonical parameters and run on the spec's
    machine and configuration.  Unlike the sweep layer this propagates
    simulation errors -- retry/failure policy lives in
    :func:`repro.exec.backend.execute_spec`.
    """
    app = spec.make_application()
    return simulate(
        app, spec.machine, spec.config,
        check_invariants=check_invariants, max_events=spec.max_events,
    )


def simulate_full(
    app,
    machine_name: str,
    config: SystemConfig,
    check_invariants: bool = False,
    max_events: Optional[int] = None,
) -> Tuple[RunResult, Machine]:
    """Like :func:`simulate` but also returns the machine for inspection."""
    machine = make_machine(machine_name, config)
    app.setup(machine.space, machine.streams)
    processors = [Processor(machine, pid) for pid in range(config.processors)]
    machine.processors = processors
    for pid, processor in enumerate(processors):
        machine.sim.spawn(processor.run(app.proc_main(pid)), name=f"cpu{pid}")
    wall_start = time.perf_counter()
    machine.sim.run(max_events=max_events)
    wall = time.perf_counter() - wall_start
    if check_invariants:
        memory = getattr(machine, "memory", None)
        if memory is not None:
            memory.check_invariants()
    verified = app.verify()
    if not verified and app.strict_verify:
        raise ApplicationError(
            f"application {app.name!r} failed verification on "
            f"{machine_name}/{config.topology}/p={config.processors}"
        )
    check_report = (
        machine.checkers.finalize(machine)
        if machine.checkers is not None else None
    )
    # Deterministic kernel metadata only: scheduling counters are a
    # function of the event sequence, so they are stable across hosts
    # and safe to content-address (wall-clock stays in wall_seconds).
    profile = machine.sim.engine_profile()
    engine_meta = {
        "kernel": profile["kernel"],
        "heap_pops": profile["heap_pops"],
        "ring_pops": profile["ring_pops"],
        "rows_recycled": profile.get("rows_recycled", 0),
        "flat_posts": profile.get("flat_posts", 0),
        "flat_tx": profile.get("flat_tx", 0),
        "extension_loaded": profile.get("extension_loaded", 0),
    }
    return (
        RunResult(
            app=app.name,
            machine=machine_name,
            topology=config.topology,
            nprocs=config.processors,
            total_ns=max(p.finish_ns for p in processors),
            buckets=[p.buckets for p in processors],
            messages=machine.message_count(),
            sim_events=machine.sim.events_executed,
            wall_seconds=wall,
            verified=verified,
            check_report=check_report,
            engine=engine_meta,
        ),
        machine,
    )
