"""Operations an application yields to its simulated processor.

Applications are generators: each ``yield`` hands one of these
operations to the :class:`~repro.core.machine.Processor`, which charges
time and (for shared references) drives the machine model.  Memory
operations carry plain integer addresses obtained from
:class:`~repro.memory.address.SharedArray`.

The range/many variants exist for simulation efficiency: a strided scan
or an index gather is handed to the machine as one operation, which
processes each element reference internally (per-element cache
semantics are preserved) without a generator round trip per element.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class Op:
    """Base class for all operations (dispatch tag only)."""

    __slots__ = ()


class Compute(Op):
    """Execute ``cycles`` of purely local computation."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise ValueError(f"negative compute cycles {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Compute({self.cycles})"


class Read(Op):
    """Load one shared element."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"Read({self.addr:#x})"


class Write(Op):
    """Store one shared element."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"Write({self.addr:#x})"


class ReadRange(Op):
    """Load ``count`` elements starting at ``addr`` with byte ``stride``."""

    __slots__ = ("addr", "count", "stride")

    def __init__(self, addr: int, count: int, stride: int):
        if count < 0 or stride <= 0:
            raise ValueError("count must be >= 0 and stride positive")
        self.addr = addr
        self.count = count
        self.stride = stride

    def __repr__(self) -> str:
        return f"ReadRange({self.addr:#x}, n={self.count}, stride={self.stride})"


class WriteRange(Op):
    """Store ``count`` elements starting at ``addr`` with byte ``stride``."""

    __slots__ = ("addr", "count", "stride")

    def __init__(self, addr: int, count: int, stride: int):
        if count < 0 or stride <= 0:
            raise ValueError("count must be >= 0 and stride positive")
        self.addr = addr
        self.count = count
        self.stride = stride

    def __repr__(self) -> str:
        return f"WriteRange({self.addr:#x}, n={self.count}, stride={self.stride})"


class ReadMany(Op):
    """Load an arbitrary list of addresses (index gather)."""

    __slots__ = ("addrs",)

    def __init__(self, addrs: Sequence[int]):
        self.addrs: Tuple[int, ...] = tuple(addrs)

    def __repr__(self) -> str:
        return f"ReadMany(n={len(self.addrs)})"


class WriteMany(Op):
    """Store an arbitrary list of addresses (index scatter)."""

    __slots__ = ("addrs",)

    def __init__(self, addrs: Sequence[int]):
        self.addrs: Tuple[int, ...] = tuple(addrs)

    def __repr__(self) -> str:
        return f"WriteMany(n={len(self.addrs)})"


class Send(Op):
    """Send ``nbytes`` to processor ``dst`` (message-passing paradigm).

    SPASM simulated message-passing platforms alongside shared memory
    ("SENDs and RECEIVEs ... that may potentially involve a network
    access"); these operations expose the same capability.  Sends are
    eager: the sender completes once its data has left for the
    destination, where it is buffered until received.
    """

    __slots__ = ("dst", "nbytes", "tag")

    def __init__(self, dst: int, nbytes: int, tag: int = 0):
        if nbytes <= 0:
            raise ValueError("message size must be positive")
        self.dst = dst
        self.nbytes = nbytes
        self.tag = tag

    def __repr__(self) -> str:
        return f"Send(dst={self.dst}, {self.nbytes}B, tag={self.tag})"


class Recv(Op):
    """Block until a message from ``src`` with ``tag`` has arrived."""

    __slots__ = ("src", "tag")

    def __init__(self, src: int, tag: int = 0):
        self.src = src
        self.tag = tag

    def __repr__(self) -> str:
        return f"Recv(src={self.src}, tag={self.tag})"


class Lock(Op):
    """Acquire mutual-exclusion lock ``lock_id`` (test-test&set)."""

    __slots__ = ("lock_id",)

    def __init__(self, lock_id: int):
        self.lock_id = lock_id

    def __repr__(self) -> str:
        return f"Lock({self.lock_id})"


class Unlock(Op):
    """Release lock ``lock_id``."""

    __slots__ = ("lock_id",)

    def __init__(self, lock_id: int):
        self.lock_id = lock_id

    def __repr__(self) -> str:
        return f"Unlock({self.lock_id})"


class Barrier(Op):
    """Join global barrier ``barrier_id`` (all processors participate)."""

    __slots__ = ("barrier_id",)

    def __init__(self, barrier_id: int):
        self.barrier_id = barrier_id

    def __repr__(self) -> str:
        return f"Barrier({self.barrier_id})"


class SetFlag(Op):
    """Write ``value`` to the condition variable at ``addr`` and wake waiters."""

    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: int):
        self.addr = addr
        self.value = value

    def __repr__(self) -> str:
        return f"SetFlag({self.addr:#x}, {self.value})"


class WaitFlag(Op):
    """Spin until the condition variable at ``addr`` satisfies the test.

    ``cmp`` is ``"eq"`` (value equals) or ``"ge"`` (value at least).
    On cached machines the spin sits in the cache (two network accesses:
    the initial read and the re-read after the setter's invalidation);
    on the cache-less LogP machine every poll is a network round trip.
    """

    __slots__ = ("addr", "value", "cmp")

    def __init__(self, addr: int, value: int, cmp: str = "ge"):
        if cmp not in ("eq", "ge"):
            raise ValueError(f"cmp must be 'eq' or 'ge', got {cmp!r}")
        self.addr = addr
        self.value = value
        self.cmp = cmp

    def satisfied_by(self, current: int) -> bool:
        """Does ``current`` satisfy the wait condition?"""
        if self.cmp == "eq":
            return current == self.value
        return current >= self.value

    def __repr__(self) -> str:
        return f"WaitFlag({self.addr:#x}, {self.cmp} {self.value})"
