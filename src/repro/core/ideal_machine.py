"""The ideal (PRAM-like) machine supplying SPASM's "ideal time".

Every memory reference costs one cache-hit time, there is no network,
and synchronization generates no traffic (waiting still takes simulated
time -- work imbalance and serialization are *algorithmic* overheads and
belong in ideal time).  The difference between an application's
execution time on a real machine model and on this one is SPASM's
"interaction component"; the ideal time itself captures the serial
fraction and load imbalance of the algorithm.
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from ..errors import SimulationError
from .machine import Machine, register_machine


@register_machine
class IdealMachine(Machine):
    """PRAM-like machine: unit-cost conflict-free memory, free sync."""

    name = "ideal"

    def __init__(self, config: SystemConfig):
        super().__init__(config)

    def try_fast(self, pid: int, addr: int, is_write: bool) -> Optional[int]:
        return self.config.cache_hit_ns

    def transact(self, pid: int, addr: int, is_write: bool):
        raise SimulationError(
            "IdealMachine.transact should be unreachable: try_fast always "
            "satisfies the access"
        )
        yield  # pragma: no cover - makes this a generator
