"""The CLogP machine: LogP plus an ideal coherent cache.

This is the paper's proposed locality abstraction.  Each node has the
target machine's cache running the *same* Berkeley state machine
(:class:`~repro.core.coherence.CoherentMemory` is shared code), but the
*overheads* of coherence maintenance are not modeled:

* invalidations, acks, ownership grants and writebacks are free and
  instantaneous -- state still changes, so a subsequent read by an
  invalidated sharer misses on both machines;
* the network is touched only when a reference "cannot be satisfied by
  the cache or local memory": a miss whose data lives at a remote node
  (remote home memory, or a remote dirty owner), costing one LogP round
  trip of two full-``L`` messages.

The network traffic this machine generates is therefore the minimum any
invalidation-based protocol could hope to achieve -- the property the
paper validates by comparing its latency curves against the target's.
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from ..errors import ProtocolError
from ..faults.reliable import RetryPolicy
from .coherence import CoherentMemory
from .logp_net import LogPNetwork
from .machine import Machine, register_machine
from .params import derive_logp


@register_machine
class CLogPMachine(Machine):
    """LogP network + ideal (overhead-free) coherent caches."""

    name = "clogp"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.params = derive_logp(config, self.topology)
        self.net = LogPNetwork(
            self.sim,
            self.params,
            per_event_type=config.g_per_event_type,
            topology=self.topology,
            adaptive=config.adaptive_g,
            injector=self.fault_injector,
            retry_policy=(
                RetryPolicy.from_fault(config.fault)
                if self.fault_injector is not None else None
            ),
            checkers=self.checkers,
        )
        self.memory = CoherentMemory(
            config, self.space, checkers=self.checkers, sim=self.sim
        )
        # Hot-path constants (attribute chains cost on every access).
        self._block_bytes = config.block_bytes
        self._hit_ns = config.cache_hit_ns
        self._fill_ns = config.cache_hit_ns + config.memory_ns
        self._caches = self.memory.caches

    # -- memory interface ---------------------------------------------------------

    def try_fast(self, pid: int, addr: int, is_write: bool) -> Optional[int]:
        block = addr // self._block_bytes
        memory = self.memory
        cache = self._caches[pid]
        if cache.probe(block, is_write):
            return self._hit_ns
        if not is_write:
            if memory.read_source(pid, block) is not None:
                return None  # remote data: needs a round trip
            # Local fill from home memory: free of network, pays memory.
            memory.plan_read(pid, block)
            return self._fill_ns
        if memory.try_silent_upgrade(pid, block):
            cache.lookup(block)
            return self._hit_ns
        if cache.state_of(block).is_valid:
            # Ownership upgrade: data already present, invalidations are
            # coherence overhead and cost nothing here.
            memory.plan_write(pid, block)
            return self._hit_ns
        if memory.write_source(pid, block) is not None:
            return None
        memory.plan_write(pid, block)
        return self._fill_ns

    def transact(self, pid: int, addr: int, is_write: bool):
        config = self.config
        block = addr // config.block_bytes
        memory = self.memory
        if is_write:
            plan = memory.plan_write(pid, block)
            if plan.fast:
                raise ProtocolError("CLogP write transact on a writable line")
            source = plan.source
            from_memory = plan.from_memory
        else:
            plan = memory.plan_read(pid, block)
            if plan.hit:
                raise ProtocolError("CLogP read transact on a valid line")
            source = plan.source
            from_memory = plan.from_memory
        if source is None or source == pid:
            # The source moved local while we flushed pending time.
            service = config.memory_ns
            yield service
            return 0, service
        service = config.memory_ns if from_memory else config.cache_hit_ns
        trip = self.net.round_trip(pid, source, service_ns=service)
        if trip.retry_ns:
            self.record_retry(pid, trip.retry_ns)
        yield trip.total_ns
        return trip.latency_ns, service


    def mp_transmit(self, pid: int, dst: int, nbytes: int):
        """Explicit message through the LogP network, packetized.

        Each packet is one LogP message: full ``L`` latency plus the
        per-node ``g`` gating (and ``o``, were it non-zero) -- the
        model's home turf, since LogP was formulated for message
        passing.
        """
        if pid == dst:
            return 0, 0
        latency = 0
        total = 0
        remaining = nbytes
        packet = self.config.data_message_bytes
        while remaining > 0:
            trip = self.net.one_way(pid, dst)
            latency += trip.latency_ns
            total = max(total, trip.total_ns)
            if trip.retry_ns:
                self.record_retry(pid, trip.retry_ns)
            remaining -= packet
        yield total
        return latency, 0

    def message_count(self) -> int:
        return self.net.messages
