"""Time and size units used throughout the simulator.

The simulation clock is an *integer count of nanoseconds*.  Integer time
keeps the event queue deterministic (no floating-point drift when two
machine models replay the same application) and is plenty of resolution:
the slowest hardware quantity we model, a 33 MHz processor cycle, is
~30 ns, and the fastest, a single byte on a 20 MB/s serial link, is 50 ns.

All helpers in this module are pure functions; they exist so that the
rest of the code never hand-rolls a unit conversion.
"""

from __future__ import annotations

#: Nanoseconds per microsecond.
NS_PER_US = 1_000

#: Nanoseconds per millisecond.
NS_PER_MS = 1_000_000

#: Nanoseconds per second.
NS_PER_S = 1_000_000_000

#: Bytes per kilobyte (binary).
KB = 1_024

#: Bytes per megabyte (binary).
MB = 1_024 * 1_024


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return round(value * NS_PER_US)


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return round(value * NS_PER_MS)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return round(value * NS_PER_S)


def ns_to_us(value_ns: int) -> float:
    """Convert integer nanoseconds to (float) microseconds."""
    return value_ns / NS_PER_US


def ns_to_ms(value_ns: int) -> float:
    """Convert integer nanoseconds to (float) milliseconds."""
    return value_ns / NS_PER_MS


def cycles_to_ns(cycles: int, cycle_ns: int) -> int:
    """Convert a processor cycle count to nanoseconds."""
    return cycles * cycle_ns


def bytes_to_link_ns(nbytes: int, ns_per_byte: int) -> int:
    """Time to push ``nbytes`` over a serial link with the given byte time."""
    return nbytes * ns_per_byte
