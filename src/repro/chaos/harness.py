"""Host-level chaos harness: prove the execution tier self-heals.

The fault-injection subsystem (PR 1) attacks the *simulated* system;
this harness attacks the *host*: it SIGKILLs pool workers mid-sweep,
stalls a chosen point past its wall-clock deadline, and flips bytes in
result-store entries -- then asserts the sweep still completes with
results **bit-identical** (series values and determinism digests) to an
undisturbed serial run.  That is the whole robustness claim of the
supervised execution tier, stated as an executable check.

Injection is deterministic, like everything else in this repo: the
:class:`ChaosPlan` names *which* completion counts trigger a kill or a
corruption, *which* spec digest stalls, and a seed that picks victims
-- no wall-clock or PRNG coupling, so a chaos run is reproducible.

Three seams carry the chaos into the supervised backend
(:class:`~repro.exec.supervisor.SupervisedPoolBackend`):

* ``task_fn`` -- :func:`chaos_task` runs in the worker and stalls the
  planned spec on its first attempt (inside the deadline guard, so the
  alarm converts the stall into a retryable
  :class:`~repro.errors.DeadlineExpiredError`);
* ``observer`` -- :class:`ChaosMonkey` runs in the parent after every
  completed point and delivers worker kills / cache corruption at the
  planned counts;
* the result store root -- corruption flips a byte in a committed
  entry, exercising checksum quarantine on the next read.
"""

from __future__ import annotations

import functools
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from ..exec.backend import PointFailure, PointOutcome, execute_spec
from ..exec.policy import RetryPolicy
from ..exec.store import ResultStore
from ..exec.supervisor import SupervisedPoolBackend
from ..experiments import SweepRunner, get_experiment, render_figure
from ..runspec import RunSpec


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic schedule of host faults for one sweep.

    Frozen and picklable: the worker-side stall rule ships to pool
    workers next to each spec.
    """

    #: Completion counts after which one live worker is SIGKILLed.
    kill_at: Tuple[int, ...] = ()
    #: Completion counts after which one store entry gets a byte flip.
    corrupt_at: Tuple[int, ...] = ()
    #: Spec digest whose first attempt stalls in the worker.
    stall_digest: Optional[str] = None
    #: How long the stalled attempt sleeps (set it past the deadline).
    stall_s: float = 30.0
    #: Victim selection seed (worker index, entry index).
    seed: int = 0


#: Per-worker-process record of digests already stalled, so a retried
#: attempt (in the same worker) and a resubmitted attempt (in a fresh
#: worker after the first one was reclaimed) both make progress.
_STALLED: set = set()


def _maybe_stall(plan: ChaosPlan, spec: RunSpec, attempt: int) -> None:
    """Worker-side pre-attempt hook: stall the planned spec once."""
    digest = spec.spec_digest()
    if plan.stall_digest == digest and attempt == 1 and digest not in _STALLED:
        _STALLED.add(digest)
        time.sleep(plan.stall_s)


def chaos_task(
    plan: ChaosPlan,
    spec: RunSpec,
    policy: RetryPolicy,
    deadline_s: Optional[float],
) -> PointOutcome:
    """Worker task that injects the plan's stall, then executes."""
    return execute_spec(
        spec,
        policy=policy,
        deadline_s=deadline_s,
        before_attempt=functools.partial(_maybe_stall, plan),
    )


class ChaosMonkey:
    """Parent-side observer delivering worker kills and cache rot."""

    def __init__(self, plan: ChaosPlan, store_root: Optional[Union[str, Path]] = None):
        self.plan = plan
        self.store_root = Path(store_root) if store_root is not None else None
        #: Workers SIGKILLed so far.
        self.kills = 0
        #: Store entries corrupted so far.
        self.corruptions = 0

    def __call__(self, backend: SupervisedPoolBackend, completed: int) -> None:
        if completed in self.plan.kill_at:
            self.kill_worker(backend)
        if completed in self.plan.corrupt_at:
            self.corrupt_entry()

    def kill_worker(self, backend: SupervisedPoolBackend) -> bool:
        """SIGKILL one live pool worker (seed-selected)."""
        pids = backend.worker_pids()
        if not pids:
            return False
        victim = pids[self.plan.seed % len(pids)]
        try:
            os.kill(victim, signal.SIGKILL)
        except (OSError, ProcessLookupError):  # pragma: no cover - raced exit
            return False
        self.kills += 1
        return True

    def corrupt_entry(self) -> Optional[Path]:
        """Flip one byte in the middle of a committed store entry."""
        if self.store_root is None:
            return None
        entries = ResultStore(self.store_root).entry_paths()
        if not entries:
            return None
        target = entries[self.plan.seed % len(entries)]
        data = bytearray(target.read_bytes())
        if not data:  # pragma: no cover - zero-length entry
            return None
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        self.corruptions += 1
        return target


# -- end-to-end chaos sweeps --------------------------------------------------------


def figure_fingerprint(runner: SweepRunner, experiment_id: str):
    """(series, digests, rendered text) of one figure under a runner."""
    data = runner.run_experiment(get_experiment(experiment_id))
    digests = {
        label: [
            None if isinstance(outcome, PointFailure)
            else outcome.check_report.digest
            for outcome in outcomes
        ]
        for label, outcomes in data.results.items()
    }
    return data.series, digests, render_figure(data)


@dataclass
class ChaosReport:
    """Everything a chaos run proved (or failed to prove)."""

    experiment_id: str
    #: Serial-reference fingerprint matched bit-for-bit?
    identical: bool
    #: Warm re-read of the corrupted store also matched?
    warm_identical: bool
    kills: int
    corruptions: int
    stalled: bool
    rebuilds: int
    degraded: bool
    #: Corrupt entries quarantined during the warm pass.
    quarantined: int
    failures: int
    chaos_wall_s: float
    serial_wall_s: float

    @property
    def passed(self) -> bool:
        return (
            self.identical
            and self.warm_identical
            and self.failures == 0
        )

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"chaos sweep {self.experiment_id}: {status} -- "
            f"{self.kills} worker kill(s), {self.corruptions} corrupted "
            f"entr{'y' if self.corruptions == 1 else 'ies'}, "
            f"stalled={self.stalled}, {self.rebuilds} pool rebuild(s), "
            f"degraded={self.degraded}, {self.quarantined} quarantined, "
            f"{self.failures} point failure(s); bit-identical to serial: "
            f"chaos={self.identical} warm={self.warm_identical} "
            f"({self.chaos_wall_s:.1f}s vs {self.serial_wall_s:.1f}s serial)"
        )


def run_chaos_sweep(
    experiment_id: str = "fig01",
    preset: str = "quick",
    processors: Optional[Tuple[int, ...]] = None,
    jobs: int = 2,
    cache_dir: Union[str, Path, None] = None,
    deadline_s: float = 10.0,
    stall_s: float = 60.0,
    kill_at: Tuple[int, ...] = (2,),
    corrupt_at: Tuple[int, ...] = (4,),
    stall_index: int = 1,
    seed: int = 0,
    max_retries: int = 2,
) -> ChaosReport:
    """One full self-healing demonstration.

    Three phases: (1) an undisturbed serial run establishes the
    reference fingerprint; (2) the same figure runs on a supervised
    pool while the harness kills a worker, stalls one point past its
    deadline, and flips a byte in a committed cache entry; (3) a fresh
    warm runner re-reads the (corrupted) store, which must quarantine
    the rot, re-simulate exactly that point, and again match the
    reference bit-for-bit.
    """
    if cache_dir is None:
        raise ValueError("run_chaos_sweep needs a cache_dir for phase 3")
    cache_dir = Path(cache_dir)

    # Phase 1: the undisturbed serial reference.
    serial_start = time.perf_counter()
    with SweepRunner(preset=preset, processors=processors,
                     digest=True) as serial:
        reference = figure_fingerprint(serial, experiment_id)
    serial_wall = time.perf_counter() - serial_start

    # Pick the stalled victim from the sweep's own spec list, so the
    # plan adapts to any figure/preset without hard-coded digests.
    with SweepRunner(preset=preset, processors=processors,
                     digest=True) as planner:
        specs = planner.experiment_specs(get_experiment(experiment_id))
    digests = list(dict.fromkeys(spec.spec_digest() for spec in specs))
    stall_digest = digests[stall_index % len(digests)] if digests else None

    plan = ChaosPlan(
        kill_at=kill_at,
        corrupt_at=corrupt_at,
        stall_digest=stall_digest,
        stall_s=stall_s,
        seed=seed,
    )
    monkey = ChaosMonkey(plan, store_root=cache_dir)
    policy = RetryPolicy(max_retries=max_retries, base_delay_s=0.05, seed=seed)

    # Phase 2: the same figure under fire.
    backend = SupervisedPoolBackend(
        jobs,
        policy=policy,
        deadline_s=deadline_s,
        task_fn=functools.partial(chaos_task, plan),
        observer=monkey,
    )
    chaos_start = time.perf_counter()
    with SweepRunner(preset=preset, processors=processors, digest=True,
                     backend=backend, cache_dir=cache_dir) as chaotic:
        chaos_fp = figure_fingerprint(chaotic, experiment_id)
        chaos_failures = len(chaotic.failures)
    chaos_wall = time.perf_counter() - chaos_start

    # Phase 3: warm pass over the corrupted store -- quarantine + heal.
    with SweepRunner(preset=preset, processors=processors, digest=True,
                     jobs=jobs, cache_dir=cache_dir) as warm:
        warm_fp = figure_fingerprint(warm, experiment_id)
        warm_failures = len(warm.failures)
        quarantined = warm.store.quarantined if warm.store else 0

    return ChaosReport(
        experiment_id=experiment_id,
        identical=chaos_fp == reference,
        warm_identical=warm_fp == reference,
        kills=monkey.kills,
        corruptions=monkey.corruptions,
        stalled=stall_digest is not None,
        rebuilds=backend.rebuilds,
        degraded=backend.degraded,
        quarantined=quarantined,
        failures=chaos_failures + warm_failures,
        chaos_wall_s=chaos_wall,
        serial_wall_s=serial_wall,
    )
