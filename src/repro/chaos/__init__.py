"""Host-fault chaos harness for the supervised execution tier.

Deterministically kills pool workers, stalls points past their
deadlines, and corrupts result-store entries mid-sweep, then asserts
the sweep still completes bit-identical to an undisturbed serial run.
Run the self-contained smoke check with::

    PYTHONPATH=src python -m repro.chaos --preset quick --jobs 2

See :mod:`repro.chaos.harness` for the injection seams.
"""

from .harness import (
    ChaosMonkey,
    ChaosPlan,
    ChaosReport,
    chaos_task,
    figure_fingerprint,
    run_chaos_sweep,
)

__all__ = [
    "ChaosMonkey",
    "ChaosPlan",
    "ChaosReport",
    "chaos_task",
    "figure_fingerprint",
    "run_chaos_sweep",
]
