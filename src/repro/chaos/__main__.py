"""Chaos smoke check: ``python -m repro.chaos``.

Runs one quick figure sweep three times -- serial reference, supervised
pool under injected host faults (worker SIGKILL, deadline stall, cache
byte flip), and a warm pass over the corrupted store -- and exits
non-zero unless every pass is bit-identical to the reference.  This is
the CI chaos job's entry point and a one-command local repro.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from .harness import run_chaos_sweep


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="self-healing smoke check for the execution tier",
    )
    parser.add_argument("--figure", default="fig01", metavar="FIG",
                        help="experiment to sweep (default fig01)")
    parser.add_argument("--preset", default="quick",
                        help="workload preset (default quick)")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="pool workers (default 2)")
    parser.add_argument("--deadline-s", type=float, default=5.0, metavar="S",
                        help="per-point wall-clock deadline (default 5)")
    parser.add_argument("--stall-s", type=float, default=30.0, metavar="S",
                        help="injected stall length; must exceed the "
                             "deadline to trigger expiry (default 30)")
    parser.add_argument("--processors", default=None, metavar="P,P,...",
                        help="override the preset's processor sweep")
    args = parser.parse_args(argv)

    processors = (
        tuple(int(p) for p in args.processors.split(","))
        if args.processors else None
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as cache_dir:
        report = run_chaos_sweep(
            experiment_id=args.figure,
            preset=args.preset,
            processors=processors,
            jobs=args.jobs,
            cache_dir=cache_dir,
            deadline_s=args.deadline_s,
            stall_s=args.stall_s,
        )
    print(report.summary())
    if report.kills == 0:
        print("chaos: warning: no worker kill was delivered "
              "(sweep too short for the kill schedule?)", file=sys.stderr)
    if report.corruptions == 0:
        print("chaos: warning: no cache entry was corrupted", file=sys.stderr)
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
