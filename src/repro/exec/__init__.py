"""Execution layer: where :class:`~repro.runspec.RunSpec`\\ s run.

The run path is layered (see DESIGN.md, Sections 9 and 11):

``RunSpec`` (:mod:`repro.runspec`)
    frozen, canonically-serializable description of one simulation,
``ExecutionBackend`` (:mod:`repro.exec.backend`)
    executes batches of specs -- :class:`SerialBackend` in-process,
    :class:`ProcessPoolBackend` across worker processes -- streaming
    completed points back for incremental checkpointing,
``SupervisedPoolBackend`` (:mod:`repro.exec.supervisor`)
    the parallel backend sweeps actually get: detects worker death and
    hung points, rebuilds the pool, resubmits in-flight specs, and
    degrades to serial execution when the pool cannot be kept alive,
``RetryPolicy`` (:mod:`repro.exec.policy`)
    transient-only retries with exponential backoff and deterministic
    seeded jitter, shared by every backend,
``ResultStore`` (:mod:`repro.exec.store`)
    on-disk content-addressed cache keyed by spec digest with per-entry
    content checksums and an eager ``verify``/``repair`` audit.

The determinism digests (PR 2) are the contract that makes this safe:
a run is a pure function of its spec, so results may be computed on
any worker, recomputed after any crash, and cached indefinitely.
"""

from .backend import (
    ExecutionBackend,
    PointFailure,
    ProcessPoolBackend,
    SerialBackend,
    execute_spec,
    failure_from,
    make_backend,
)
from .policy import RetryPolicy, deadline_guard, legacy_policy
from .store import STORE_SCHEMA, ResultStore, VerifyReport, entry_checksum
from .supervisor import SupervisedPoolBackend, supervised_task

__all__ = [
    "ExecutionBackend",
    "PointFailure",
    "ProcessPoolBackend",
    "SerialBackend",
    "SupervisedPoolBackend",
    "RetryPolicy",
    "deadline_guard",
    "legacy_policy",
    "execute_spec",
    "failure_from",
    "make_backend",
    "supervised_task",
    "ResultStore",
    "VerifyReport",
    "entry_checksum",
    "STORE_SCHEMA",
]
