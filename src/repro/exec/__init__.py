"""Execution layer: where :class:`~repro.runspec.RunSpec`\\ s run.

The run path is layered (see DESIGN.md, Section 9):

``RunSpec`` (:mod:`repro.runspec`)
    frozen, canonically-serializable description of one simulation,
``ExecutionBackend`` (:mod:`repro.exec.backend`)
    executes batches of specs -- :class:`SerialBackend` in-process,
    :class:`ProcessPoolBackend` across worker processes -- streaming
    completed points back for incremental checkpointing,
``ResultStore`` (:mod:`repro.exec.store`)
    on-disk content-addressed cache keyed by spec digest, so repeated
    invocations skip already-simulated points.

The determinism digests (PR 2) are the contract that makes this safe:
a run is a pure function of its spec, so results may be computed on
any worker and cached indefinitely.
"""

from .backend import (
    ExecutionBackend,
    PointFailure,
    ProcessPoolBackend,
    SerialBackend,
    execute_spec,
    make_backend,
)
from .store import STORE_SCHEMA, ResultStore

__all__ = [
    "ExecutionBackend",
    "PointFailure",
    "ProcessPoolBackend",
    "SerialBackend",
    "execute_spec",
    "make_backend",
    "ResultStore",
    "STORE_SCHEMA",
]
