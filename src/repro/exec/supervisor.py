"""Supervised parallel execution: worker death and hangs are survivable.

:class:`SupervisedPoolBackend` wraps a
:class:`concurrent.futures.ProcessPoolExecutor` with the supervision a
long sweep needs to outlive host-level trouble:

* **Worker death.**  A SIGKILL'd or crashed worker breaks the whole
  executor (``BrokenProcessPool``); the bare pool backend would abort
  the sweep and lose every in-flight point.  The supervisor detects the
  breakage, tears the dead pool down, rebuilds it, and resubmits only
  the specs that were in flight -- completed points already streamed
  back and are never re-run.
* **Hung points.**  With a ``deadline_s`` every attempt is bounded two
  ways: worker-side, :func:`~repro.exec.policy.deadline_guard` raises a
  structured :class:`~repro.errors.DeadlineExpiredError` inside the run
  (retryable in place); host-side, a timer watches for workers too
  wedged to deliver their own alarm (e.g. stuck in C code) and reclaims
  them by killing the pool, converting the overdue point into a
  resubmission or a :class:`~repro.exec.backend.PointFailure`.
* **Resubmission budget.**  Which spec crashed a worker is not
  observable from the parent, so every in-flight spec of a broken pool
  is charged one resubmission; a spec exceeding the policy's retry
  budget is failed with :class:`~repro.errors.WorkerCrashError` (or
  ``DeadlineExpiredError`` if it was the overdue one) instead of
  crash-looping the pool forever.
* **Graceful degradation.**  After ``max_rebuilds`` *consecutive*
  rebuilds with no completed point in between, the pool is abandoned
  and the remaining specs run serially in-process -- slower, but a
  sweep always terminates with an answer for every point.

Submission is windowed to exactly ``jobs`` outstanding futures (the
bare backend submits everything up front), so a future's submission
time approximates its execution start and host-side deadlines measure
run time, not queue time.  Results still stream back in completion
order; the consumer contract is unchanged.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor
from concurrent.futures import CancelledError as FuturesCancelledError
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import DeadlineExpiredError, WorkerCrashError
from ..runspec import RunSpec
from .backend import (
    PointOutcome,
    ProcessPoolBackend,
    execute_spec,
    failure_from,
)
from .policy import RetryPolicy

#: Task executed in the worker: (spec, policy, deadline_s) -> outcome.
TaskFn = Callable[[RunSpec, RetryPolicy, Optional[float]], PointOutcome]

#: Parent-side hook invoked after every completed point with
#: (backend, completed_count) -- the chaos harness's injection seam.
Observer = Callable[["SupervisedPoolBackend", int], None]


def supervised_task(
    spec: RunSpec, policy: RetryPolicy, deadline_s: Optional[float]
) -> PointOutcome:
    """Default worker-side task: execute with policy and deadline."""
    return execute_spec(spec, policy=policy, deadline_s=deadline_s)


@dataclass
class _InFlight:
    """Bookkeeping of one submitted, not-yet-completed spec."""

    spec: RunSpec
    #: Times this spec was already re-dispatched after pool trouble.
    resubmits: int
    #: ``time.monotonic()`` at submission (~execution start; see module
    #: docstring on windowed submission).
    submitted_at: float


class SupervisedPoolBackend(ProcessPoolBackend):
    """A process-pool backend that survives worker crashes and hangs."""

    name = "supervised"

    def __init__(
        self,
        jobs: int,
        policy: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
        max_rebuilds: int = 3,
        deadline_grace_s: float = 5.0,
        task_fn: Optional[TaskFn] = None,
        observer: Optional[Observer] = None,
        wait_tick_s: float = 0.1,
    ):
        super().__init__(jobs)
        self.policy = policy
        self.deadline_s = deadline_s
        #: Consecutive rebuilds tolerated before degrading to serial.
        self.max_rebuilds = max_rebuilds
        #: Host-side slack past ``deadline_s`` before a worker is
        #: presumed wedged (its own alarm should have fired already).
        self.deadline_grace_s = deadline_grace_s
        self._task_fn = task_fn if task_fn is not None else supervised_task
        self._observer = observer
        self._wait_tick_s = wait_tick_s
        #: Total pool rebuilds over the backend's lifetime.
        self.rebuilds = 0
        #: Points that streamed back (results and worker-side failures).
        self.completed = 0
        #: True once the backend fell back to in-process execution.
        self.degraded = False
        self._consecutive_rebuilds = 0
        self._rebuild_listeners: List[Callable[[], None]] = []
        self._aborted = False

    # -- introspection -------------------------------------------------------

    def add_rebuild_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener()`` right before every pool rebuild.

        The sweep runner registers its checkpoint flush here, so a
        rebuild never races a half-journaled sweep state.
        """
        self._rebuild_listeners.append(listener)

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool workers (empty before first submit)."""
        pool = self._pool
        processes = getattr(pool, "_processes", None) if pool else None
        if not processes:
            return []
        return sorted(pid for pid, proc in processes.items() if proc.is_alive())

    def stats(self) -> Dict[str, int]:
        return {
            "rebuilds": self.rebuilds,
            "completed": self.completed,
            "degraded": int(self.degraded),
        }

    # -- supervision internals -----------------------------------------------

    def _teardown_pool(self) -> None:
        """Shut the (possibly broken) pool down hard, killing stragglers."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            if proc.is_alive():
                # A wedged worker ignores cooperative shutdown; SIGKILL
                # is the only reclamation that always works.
                proc.kill()
        for proc in processes:
            proc.join(timeout=1.0)

    def _ensure_pool(self):
        if self._aborted:
            # Close the abort()-vs-submit race: a rebuild must never
            # resurrect the pool after the owner abandoned the run.
            raise BrokenExecutor("supervised backend aborted")
        return super()._ensure_pool()

    def _host_deadline_s(self) -> Optional[float]:
        if self.deadline_s is None:
            return None
        return self.deadline_s + self.deadline_grace_s

    def _overdue(self, inflight: Dict) -> Set[str]:
        """Digests of in-flight specs past the host-side deadline."""
        limit = self._host_deadline_s()
        if limit is None:
            return set()
        now = time.monotonic()
        return {
            entry.spec.spec_digest()
            for entry in inflight.values()
            if now - entry.submitted_at > limit
        }

    def _rebuild(
        self,
        inflight: Dict,
        queue: deque,
        policy: RetryPolicy,
        overdue: Set[str],
    ) -> Iterator[Tuple[RunSpec, PointOutcome]]:
        """Recover from a broken/wedged pool.

        Flushes listeners (checkpoint), kills the old pool, requeues
        every in-flight spec with one resubmission charged, fails specs
        over budget, and arms degradation if rebuilds are not making
        progress.  Yields the failure records of over-budget specs.
        """
        self.rebuilds += 1
        self._consecutive_rebuilds += 1
        for listener in list(self._rebuild_listeners):
            listener()
        self._teardown_pool()
        entries = list(inflight.values())
        inflight.clear()
        for entry in entries:
            resubmits = entry.resubmits + 1
            if resubmits > policy.max_retries:
                digest = entry.spec.spec_digest()
                if digest in overdue:
                    exc: Exception = DeadlineExpiredError(
                        self.deadline_s or 0.0,
                        time.monotonic() - entry.submitted_at,
                    )
                else:
                    exc = WorkerCrashError(entry.spec.describe(), resubmits)
                yield entry.spec, failure_from(entry.spec, exc, resubmits)
            else:
                queue.append((entry.spec, resubmits))
        if self._consecutive_rebuilds >= self.max_rebuilds:
            self.degraded = True

    def _completed_one(self) -> None:
        self.completed += 1
        self._consecutive_rebuilds = 0
        if self._observer is not None:
            self._observer(self, self.completed)

    # -- cross-thread abort --------------------------------------------------

    def abort(self) -> None:
        """Stop the run loop as soon as possible (thread-safe).

        Called from *another* thread (the service daemon's drain path)
        while ``run`` is blocked in the dispatcher thread.  Killing the
        pool breaks every outstanding future, which wakes the blocked
        ``wait``; the loop then observes the flag and returns without
        rebuilding.  Specs still queued or in flight are simply never
        yielded -- the caller is abandoning them by definition.
        """
        self._aborted = True
        self._teardown_pool()

    # -- the supervised run loop ---------------------------------------------

    def run(
        self, specs: Sequence[RunSpec], retries: int = 1
    ) -> Iterator[Tuple[RunSpec, PointOutcome]]:
        specs = list(specs)
        if not specs:
            return
        policy = self._effective_policy(retries)
        queue: deque = deque((spec, 0) for spec in specs)
        inflight: Dict = {}
        while queue or inflight:
            if self._aborted:
                return
            if self.degraded:
                # Serial fallback: correctness over throughput.  Only
                # reachable with an empty in-flight set (degradation is
                # armed inside _rebuild, which drains it).
                while queue:
                    if self._aborted:
                        return
                    spec, _resubmits = queue.popleft()
                    yield spec, execute_spec(
                        spec, policy=policy, deadline_s=self.deadline_s
                    )
                    self._completed_one()
                return
            # Top up to exactly `jobs` outstanding submissions.
            submit_broken = False
            while queue and len(inflight) < self.jobs:
                if self._aborted:
                    return
                spec, resubmits = queue[0]
                try:
                    future = self._ensure_pool().submit(
                        self._task_fn, spec, policy, self.deadline_s
                    )
                except BrokenExecutor:
                    submit_broken = True
                    break
                queue.popleft()
                inflight[future] = _InFlight(spec, resubmits, time.monotonic())
            if submit_broken:
                yield from self._rebuild(inflight, queue, policy, set())
                continue
            timeout = (
                self._wait_tick_s if self._host_deadline_s() is not None
                else None
            )
            done, _pending = wait_futures(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                overdue = self._overdue(inflight)
                if overdue:
                    yield from self._rebuild(inflight, queue, policy, overdue)
                continue
            crashed: Dict = {}
            for future in done:
                entry = inflight.pop(future)
                try:
                    outcome = future.result()
                except (BrokenExecutor, FuturesCancelledError):  # noqa: PERF203
                    # Cancelled futures appear when abort() (or a raced
                    # close) shut the pool down under us; treat them
                    # like a crash so the abort check at the loop top
                    # decides what happens next.
                    crashed[future] = entry
                else:
                    self._completed_one()
                    yield entry.spec, outcome
            if crashed:
                inflight.update(crashed)
                yield from self._rebuild(inflight, queue, policy, set())

    def close(self) -> None:
        self._teardown_pool()
