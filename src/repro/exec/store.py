"""On-disk content-addressed result cache: the ResultStore.

Entries are keyed by :meth:`~repro.runspec.RunSpec.spec_digest` and
live at ``<root>/<digest[:2]>/<digest>.json``; each entry carries a
schema version, the digest it claims to be, the full serialized spec
(for auditing -- the digest alone is not human-readable), the
serialized :class:`~repro.core.accounting.RunResult`, and a BLAKE2b
*content checksum* over the canonical JSON of everything else.

Durability and integrity:

* writes are atomic: a unique temp file is flushed, fsynced, then
  renamed over the final path, so a crash leaves either the old entry
  or the new one, never a torn file;
* reads validate schema version, content checksum, and digest; an
  unreadable, truncated, bit-flipped, or mismatched entry is
  *quarantined* (renamed aside with a ``.quarantined`` suffix) and
  reported as a miss, so one corrupt file costs exactly one
  re-simulation -- it can never poison results;
* entries written under a different schema version are plain misses
  (overwritten on the next ``put``), not corruption;
* :meth:`ResultStore.verify` audits the whole store eagerly (``repro
  cache verify``) instead of waiting for a lookup to stumble over rot,
  and with ``repair=True`` re-simulates every corrupt entry whose
  embedded spec is still recoverable.

Caching is sound because a run is a pure function of its spec: the
determinism checker's golden digests (PR 2) gate exactly the property
that equal specs produce bit-identical results.  The one exception is
``wall_seconds``, a host-side measurement: a cached result reports the
wall time of the run that produced it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.accounting import RunResult
from ..runspec import RunSpec, canonical_json

#: Entry schema version.  Bump when the entry layout changes; stale
#: entries then read as misses and are overwritten in place.
#: Version 2 added the per-entry content checksum.
STORE_SCHEMA = 2

#: Suffix given to corrupt entries moved out of the cache's way.
QUARANTINE_SUFFIX = ".quarantined"

#: Process-wide counter making temp names unique *within* a process:
#: two tasks/threads racing ``put()`` of the same digest must never
#: share a temp file, or one would rename the other's half-written
#: bytes into place.  Cross-process uniqueness comes from the PID.
_TMP_SEQ = itertools.count()


def entry_checksum(payload: Dict) -> str:
    """BLAKE2b over the canonical JSON of the payload sans checksum.

    Canonical JSON (sorted keys, minimal separators) makes the checksum
    representation-independent: it survives a JSON round trip, so the
    reader can recompute it from the parsed entry.
    """
    body = {key: value for key, value in payload.items() if key != "checksum"}
    return hashlib.blake2b(
        canonical_json(body).encode("utf-8"), digest_size=16
    ).hexdigest()


@dataclass
class VerifyReport:
    """Outcome of one :meth:`ResultStore.verify` scan."""

    #: Entries examined (quarantined and temp files are skipped).
    scanned: int = 0
    #: Entries that validated end-to-end.
    ok: int = 0
    #: Entries written under a different schema (left in place).
    stale: int = 0
    #: Digests of corrupt entries (all were quarantined).
    corrupt: List[str] = field(default_factory=list)
    #: Digests re-simulated and rewritten (subset of ``corrupt``).
    repaired: List[str] = field(default_factory=list)
    #: Digests whose embedded spec was unrecoverable (subset of
    #: ``corrupt``; only populated when repairing).
    unrepairable: List[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when the store holds no unrepaired corruption."""
        return len(self.corrupt) == len(self.repaired)

    def summary(self) -> str:
        parts = [
            f"scanned {self.scanned} entr{'y' if self.scanned == 1 else 'ies'}",
            f"{self.ok} ok",
            f"{self.stale} stale",
            f"{len(self.corrupt)} corrupt",
        ]
        if self.repaired:
            parts.append(f"{len(self.repaired)} repaired")
        if self.unrepairable:
            parts.append(f"{len(self.unrepairable)} unrepairable")
        return "result store verify: " + ", ".join(parts)


@dataclass
class GcReport:
    """Outcome of one :meth:`ResultStore.gc` pass."""

    #: Size budget the pass enforced.
    max_bytes: int
    #: Store size before the pass (live + quarantined + orphan temp).
    before_bytes: int = 0
    #: Store size after the pass.
    after_bytes: int = 0
    #: Live entries evicted (LRU by mtime).
    evicted: int = 0
    #: Bytes reclaimed from live entries.
    evicted_bytes: int = 0
    #: Quarantine files removed (always reclaimed first).
    quarantine_removed: int = 0
    #: Orphaned temp files from dead writers removed.
    tmp_removed: int = 0
    #: Live entries surviving the pass.
    kept: int = 0

    @property
    def within_budget(self) -> bool:
        return self.after_bytes <= self.max_bytes

    def summary(self) -> str:
        return (
            f"result store gc: {self.before_bytes} -> {self.after_bytes} "
            f"bytes (budget {self.max_bytes}); evicted {self.evicted} "
            f"entr{'y' if self.evicted == 1 else 'ies'} "
            f"({self.evicted_bytes} bytes), removed "
            f"{self.quarantine_removed} quarantined and "
            f"{self.tmp_removed} temp file(s), kept {self.kept}"
        )


class ResultStore:
    """Content-addressed on-disk cache of completed run results."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        #: Entries served from disk.
        self.hits = 0
        #: Lookups that found no usable entry.
        self.misses = 0
        #: Entries written.
        self.stores = 0
        #: Corrupt entries moved aside.
        self.quarantined = 0

    def _entry_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is never read again."""
        target = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing cleaner/permissions
            pass
        self.quarantined += 1

    # -- validation ----------------------------------------------------------

    @staticmethod
    def _read_entry(
        path: Path, digest: str
    ) -> Tuple[Optional[Dict], Optional[RunResult], Optional[str]]:
        """Parse and validate one entry file.

        Returns ``(data, result, problem)`` where ``problem`` is None
        for a valid entry, ``"missing"``, ``"stale"`` (foreign schema,
        not corruption), or ``"corrupt"``.  ``data`` is whatever JSON
        parsed, even for corrupt entries -- repair mines it for a
        recoverable spec.
        """
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None, None, "missing"
        except (OSError, UnicodeDecodeError):
            return None, None, "corrupt"
        try:
            data = json.loads(raw)
        except json.JSONDecodeError:
            return None, None, "corrupt"
        if not isinstance(data, dict):
            return None, None, "corrupt"
        if data.get("schema") != STORE_SCHEMA:
            # A different (older/newer) store version: a legitimate
            # miss, not corruption; ``put`` will overwrite it.
            return data, None, "stale"
        if data.get("checksum") != entry_checksum(data):
            return data, None, "corrupt"
        if data.get("spec_digest") != digest:
            return data, None, "corrupt"
        try:
            result = RunResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            return data, None, "corrupt"
        return data, result, None

    @staticmethod
    def _recover_spec(data: Optional[Dict], digest: str) -> Optional[RunSpec]:
        """The embedded spec of a damaged entry, if still trustworthy.

        Recovery demands the spec re-hash to the entry's own digest, so
        a corrupt entry can only ever be repaired into the result it
        was supposed to hold.
        """
        if not isinstance(data, dict):
            return None
        try:
            spec = RunSpec.from_dict(data.get("spec"))
        except Exception:
            return None
        if spec.spec_digest() != digest:
            return None
        return spec

    # -- lookups -------------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The cached result of ``spec``, or None.

        Never raises on bad cache contents: anything unusable is
        quarantined and treated as a miss.
        """
        digest = spec.spec_digest()
        path = self._entry_path(digest)
        _data, result, problem = self._read_entry(path, digest)
        if problem is None:
            self.hits += 1
            try:
                # Refresh the mtime so gc's LRU eviction sees recency
                # of *use*, not of the original write.
                os.utime(path)
            except OSError:  # pragma: no cover - raced eviction
                pass
            return result
        if problem == "corrupt":
            self._quarantine(path)
        self.misses += 1
        return None

    # -- writes --------------------------------------------------------------

    def put(self, spec: RunSpec, result: RunResult) -> None:
        """Persist one completed result (atomic fsync-then-rename).

        Safe under concurrent writers: every ``put`` -- from racing
        tasks in one process or racing server processes sharing the
        cache directory -- writes its *own* (pid, sequence)-unique temp
        file, fsyncs it, and renames it into place.  ``os.replace`` is
        atomic, so the losing writer of a race simply has its complete,
        byte-equivalent entry overwritten by another complete entry;
        nothing ever interleaves, and the loss is silent by design
        (results are a pure function of the spec, so both writers held
        the same payload).  A writer that dies mid-write leaves only
        its own temp file, which gc sweeps up later.
        """
        digest = spec.spec_digest()
        path = self._entry_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: Dict = {
            "schema": STORE_SCHEMA,
            "spec_digest": digest,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        payload["checksum"] = entry_checksum(payload)
        tmp = path.with_name(
            f".{digest}.{os.getpid()}.{next(_TMP_SEQ)}.tmp"
        )
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._fsync_dir(path.parent)
        self.stores += 1

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Best-effort fsync of a directory, making renames durable."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(fd)

    # -- integrity audit -----------------------------------------------------

    def entry_paths(self) -> List[Path]:
        """Every live entry file, sorted for deterministic scans."""
        if not self.root.is_dir():
            return []
        return sorted(
            path for path in self.root.glob("*/*.json")
            if not path.name.startswith(".")
        )

    def quarantined_paths(self) -> List[Path]:
        """Entries moved aside by earlier reads or verify scans."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*/*.json{QUARANTINE_SUFFIX}"))

    def verify(self, repair: bool = False, simulate=None) -> VerifyReport:
        """Audit every entry; quarantine (and optionally heal) rot.

        Each entry is re-validated end-to-end (parse, schema, content
        checksum, digest, result shape).  Corrupt entries are
        quarantined; with ``repair=True`` each one whose embedded spec
        still re-hashes to the entry's digest is re-simulated and
        rewritten, so the store comes back bit-identical (the
        determinism contract) minus only entries damaged beyond spec
        recovery.  Repair also revisits entries *already* quarantined
        by earlier reads or verify-only scans, so ``verify`` followed by
        ``verify --repair`` heals everything a single ``--repair`` pass
        would have.  Quarantine files are kept as forensic evidence
        (their digest now has a healthy live entry, so later scans skip
        them).  ``simulate`` overrides the simulation entry point
        (tests); it takes a :class:`RunSpec` and returns a
        :class:`RunResult`.
        """
        if simulate is None:
            from ..core.runner import simulate_spec as simulate
        report = VerifyReport()
        stash = self.quarantined_paths() if repair else []
        live = set()
        for path in self.entry_paths():
            digest = path.stem
            live.add(digest)
            data, _result, problem = self._read_entry(path, digest)
            report.scanned += 1
            if problem is None:
                report.ok += 1
                continue
            if problem == "stale":
                report.stale += 1
                continue
            self._quarantine(path)
            report.corrupt.append(digest)
            if not repair:
                continue
            spec = self._recover_spec(data, digest)
            if spec is None:
                report.unrepairable.append(digest)
                continue
            self.put(spec, simulate(spec))
            report.repaired.append(digest)
        for path in stash:
            # "<digest>.json.quarantined" -> "<digest>".
            digest = Path(path.stem).stem
            if digest in live:
                continue  # a healthy entry superseded this quarantine
            report.scanned += 1
            report.corrupt.append(digest)
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                data = None
            spec = self._recover_spec(data, digest)
            if spec is None:
                report.unrepairable.append(digest)
                continue
            self.put(spec, simulate(spec))
            report.repaired.append(digest)
        return report

    # -- size bounding -------------------------------------------------------

    def tmp_paths(self) -> List[Path]:
        """Leftover temp files of writers that died mid-``put``."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/.*.tmp"))

    def size_bytes(self) -> int:
        """Total bytes held: live entries, quarantine, orphan temps."""
        total = 0
        for path in (
            self.entry_paths() + self.quarantined_paths() + self.tmp_paths()
        ):
            try:
                total += path.stat().st_size
            except OSError:  # noqa: PERF203  # pragma: no cover
                pass
        return total

    def gc(self, max_bytes: int) -> GcReport:
        """Bound the store to ``max_bytes`` (LRU-by-mtime eviction).

        Reclamation order: orphaned temp files and quarantine stashes
        go unconditionally (they serve no lookup), then live entries
        are evicted oldest-``mtime`` first until the store fits the
        budget.  ``get`` refreshes an entry's mtime on every hit, so
        mtime order is true recency-of-use -- a long-lived daemon keeps
        its hot set and sheds the cold tail.  Evicting a live entry
        only costs one re-simulation on the next miss; it can never
        lose information.
        """
        report = GcReport(max_bytes=max_bytes)
        overhead = 0
        for kind, paths in (
            ("tmp", self.tmp_paths()),
            ("quarantine", self.quarantined_paths()),
        ):
            for path in paths:
                try:
                    size = path.stat().st_size
                    os.unlink(path)
                except OSError:  # noqa: PERF203  # pragma: no cover
                    continue
                overhead += size
                if kind == "tmp":
                    report.tmp_removed += 1
                else:
                    report.quarantine_removed += 1
        entries: List[Tuple[float, int, Path]] = []
        for path in self.entry_paths():
            try:
                stat = path.stat()
            except OSError:  # noqa: PERF203  # pragma: no cover
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _mtime, size, _path in entries)
        report.before_bytes = total + overhead
        entries.sort(key=lambda item: (item[0], str(item[2])))
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:  # noqa: PERF203  # pragma: no cover
                continue
            total -= size
            report.evicted += 1
            report.evicted_bytes += size
        report.after_bytes = total
        report.kept = len(entries) - report.evicted
        return report

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters for instrumentation and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
        }

    def summary(self) -> str:
        return (
            f"result store {self.root}: {self.hits} hit(s), "
            f"{self.misses} miss(es), {self.stores} store(s), "
            f"{self.quarantined} quarantined"
        )
