"""On-disk content-addressed result cache: the ResultStore.

Entries are keyed by :meth:`~repro.runspec.RunSpec.spec_digest` and
live at ``<root>/<digest[:2]>/<digest>.json``; each entry carries a
schema version, the digest it claims to be, the full serialized spec
(for auditing -- the digest alone is not human-readable), and the
serialized :class:`~repro.core.accounting.RunResult`.

Durability and integrity:

* writes are atomic: a unique temp file is flushed, fsynced, then
  renamed over the final path, so a crash leaves either the old entry
  or the new one, never a torn file;
* reads validate schema version and digest; an unreadable, truncated,
  or mismatched entry is *quarantined* (renamed aside with a
  ``.quarantined`` suffix) and reported as a miss, so one corrupt file
  costs exactly one re-simulation -- it can never poison results;
* entries written under a different schema version are plain misses
  (overwritten on the next ``put``), not corruption.

Caching is sound because a run is a pure function of its spec: the
determinism checker's golden digests (PR 2) gate exactly the property
that equal specs produce bit-identical results.  The one exception is
``wall_seconds``, a host-side measurement: a cached result reports the
wall time of the run that produced it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.accounting import RunResult
from ..runspec import RunSpec

#: Entry schema version.  Bump when the entry layout changes; stale
#: entries then read as misses and are overwritten in place.
STORE_SCHEMA = 1

#: Suffix given to corrupt entries moved out of the cache's way.
QUARANTINE_SUFFIX = ".quarantined"


class ResultStore:
    """Content-addressed on-disk cache of completed run results."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        #: Entries served from disk.
        self.hits = 0
        #: Lookups that found no usable entry.
        self.misses = 0
        #: Entries written.
        self.stores = 0
        #: Corrupt entries moved aside.
        self.quarantined = 0

    def _entry_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is never read again."""
        target = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing cleaner/permissions
            pass
        self.quarantined += 1

    # -- lookups -------------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The cached result of ``spec``, or None.

        Never raises on bad cache contents: anything unusable is
        quarantined and treated as a miss.
        """
        digest = spec.spec_digest()
        path = self._entry_path(digest)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, UnicodeDecodeError):
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError:
            self._quarantine(path)
            self.misses += 1
            return None
        if not isinstance(data, dict):
            self._quarantine(path)
            self.misses += 1
            return None
        if data.get("schema") != STORE_SCHEMA:
            # A different (older/newer) store version: a legitimate
            # miss, not corruption; ``put`` will overwrite it.
            self.misses += 1
            return None
        if data.get("spec_digest") != digest:
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            result = RunResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    # -- writes --------------------------------------------------------------

    def put(self, spec: RunSpec, result: RunResult) -> None:
        """Persist one completed result (atomic fsync-then-rename)."""
        digest = spec.spec_digest()
        path = self._entry_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: Dict = {
            "schema": STORE_SCHEMA,
            "spec_digest": digest,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        # PID-unique temp name: concurrent invocations sharing a cache
        # directory each rename their own complete file into place.
        tmp = path.with_name(f".{digest}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.stores += 1

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters for instrumentation and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
        }

    def summary(self) -> str:
        return (
            f"result store {self.root}: {self.hits} hit(s), "
            f"{self.misses} miss(es), {self.stores} store(s), "
            f"{self.quarantined} quarantined"
        )
