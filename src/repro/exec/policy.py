"""Retry policy and wall-clock deadline enforcement for spec execution.

Two host-level robustness primitives shared by every execution backend:

* :class:`RetryPolicy` -- how many times a failing point is
  re-attempted and how long to wait between attempts.  Only
  :class:`~repro.errors.TransientError`\\ s are ever retried (see the
  taxonomy in :mod:`repro.errors`); the backoff schedule is exponential
  with *deterministic seeded jitter*, so two runs of the same sweep
  produce bit-identical retry timing -- the same property the simulator
  itself guarantees for its results.
* :func:`deadline_guard` -- a context manager that converts a run
  exceeding its wall-clock budget into a structured
  :class:`~repro.errors.DeadlineExpiredError` raised *inside* the
  executing process (via ``SIGALRM``), interrupting even a hung engine
  loop.  Truly wedged processes that never deliver the signal are
  reclaimed one level up by the supervisor's host-side timer
  (:mod:`repro.exec.supervisor`).
"""

from __future__ import annotations

import hashlib
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import ConfigError, DeadlineExpiredError, TransientError


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) a failing point is re-attempted.

    The policy is a frozen, picklable value object: backends ship it to
    worker processes next to the spec, so in-worker retries follow the
    same schedule the parent would have applied.
    """

    #: Re-attempts after the first try (0 disables retrying).
    max_retries: int = 1
    #: First backoff delay; 0 disables sleeping entirely (the default,
    #: matching the historical immediate-retry behaviour and keeping
    #: tests fast).
    base_delay_s: float = 0.0
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Ceiling on any single delay.
    max_delay_s: float = 30.0
    #: Fraction of each delay that is jittered (0..1).  Jitter is
    #: *deterministic*: derived from (seed, key, attempt) by BLAKE2b,
    #: never from a global RNG.
    jitter: float = 0.5
    #: Seed of the jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s < 0:
            raise ConfigError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    def should_retry(self, exc: BaseException, attempts: int) -> bool:
        """Whether to re-attempt after ``attempts`` tries raised ``exc``.

        Only transient errors are retried: a permanent error (bad
        config, deterministic deadlock, violated invariant) reproduces
        identically on every attempt, so retrying it only hides the
        diagnosis behind a delay.
        """
        return isinstance(exc, TransientError) and attempts <= self.max_retries

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Backoff delay before re-attempt number ``attempt``.

        ``key`` (typically the spec digest) decorrelates the jitter of
        different points retrying in the same window, so a mass failure
        does not resubmit everything in lockstep.
        """
        if self.base_delay_s <= 0:
            return 0.0
        raw = min(
            self.base_delay_s * self.backoff_factor ** max(attempt - 1, 0),
            self.max_delay_s,
        )
        if self.jitter <= 0:
            return raw
        token = f"{self.seed}:{key}:{attempt}".encode("utf-8")
        digest = hashlib.blake2b(token, digest_size=8).digest()
        fraction = int.from_bytes(digest, "big") / 2.0 ** 64
        return raw * (1.0 - self.jitter + self.jitter * fraction)

    def schedule(self, key: str = "") -> List[float]:
        """Every delay the policy would apply for one point, in order."""
        return [self.delay_s(attempt, key)
                for attempt in range(1, self.max_retries + 1)]


#: Policy equivalent to the historical hard-coded behaviour: one
#: immediate re-attempt, no sleeping.
def legacy_policy(retries: int = 1) -> RetryPolicy:
    """The pre-supervision behaviour (``retries`` immediate attempts)."""
    return RetryPolicy(max_retries=retries, base_delay_s=0.0)


def _deadline_supported() -> bool:
    """SIGALRM-based deadlines need POSIX and the process main thread."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def deadline_guard(deadline_s: Optional[float]) -> Iterator[bool]:
    """Raise :class:`DeadlineExpiredError` if the body outlives ``deadline_s``.

    Yields ``True`` when the guard is armed, ``False`` when it cannot be
    (no deadline requested, non-POSIX host, or not the main thread --
    worker processes always execute on their main thread, so the guard
    is armed everywhere it matters).  The previous ``SIGALRM``
    disposition is restored on exit, so guards nest safely with other
    alarm users as long as they do the same.
    """
    if deadline_s is None or deadline_s <= 0 or not _deadline_supported():
        yield False
        return
    start = time.monotonic()

    def _expire(signum, frame):
        raise DeadlineExpiredError(deadline_s, time.monotonic() - start)

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, deadline_s)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
