"""Execution backends: serial and process-parallel spec execution.

A backend turns :class:`~repro.runspec.RunSpec`\\ s into
:class:`~repro.core.accounting.RunResult`\\ s.  Both backends share one
primitive, :func:`execute_spec`, which owns the retry/
:class:`PointFailure` semantics, so a point behaves identically no
matter where it runs:

* :class:`SerialBackend` executes specs one by one in the calling
  process -- the pre-existing behaviour, and the reference the parallel
  backend is tested against,
* :class:`ProcessPoolBackend` fans a batch out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (CLI ``--jobs N``)
  and yields points *as they complete*, so the consumer can checkpoint
  incrementally.

Because the simulator is deterministic (equal spec => equal execution,
gated by the golden digests), a worker process produces bit-identical
results and determinism digests to an in-process run -- the only field
that legitimately differs between backends is the measured
``wall_seconds``.
"""

from __future__ import annotations

import signal
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from ..core.accounting import RunResult
from ..core.runner import simulate
from ..errors import ConfigError, ReproError
from ..runspec import RunSpec
from .policy import RetryPolicy, deadline_guard


@dataclass(frozen=True)
class PointFailure:
    """Structured record of one sweep point that could not complete."""

    app: str
    machine: str
    topology: str
    nprocs: int
    #: Exception type name (e.g. ``"RetryLimitError"``).
    error: str
    #: The exception's message.
    message: str
    #: How many times the run was attempted (including retries).
    attempts: int

    def to_dict(self) -> Dict:
        return {
            "app": self.app,
            "machine": self.machine,
            "topology": self.topology,
            "nprocs": self.nprocs,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PointFailure":
        return cls(
            app=data["app"],
            machine=data["machine"],
            topology=data["topology"],
            nprocs=int(data["nprocs"]),
            error=data["error"],
            message=data["message"],
            attempts=int(data["attempts"]),
        )

    def summary(self) -> str:
        return (
            f"{self.app}/{self.machine}/{self.topology}/p={self.nprocs}: "
            f"{self.error}: {self.message} (after {self.attempts} attempt(s))"
        )


#: What executing one spec yields: the result, or a structured failure.
PointOutcome = Union[RunResult, PointFailure]


def failure_from(spec: RunSpec, exc: BaseException, attempts: int) -> PointFailure:
    """The structured failure record of ``spec`` dying with ``exc``."""
    return PointFailure(
        app=spec.app,
        machine=spec.machine,
        topology=spec.config.topology,
        nprocs=spec.config.processors,
        error=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
    )


def execute_spec(
    spec: RunSpec,
    retries: int = 1,
    policy: Optional[RetryPolicy] = None,
    deadline_s: Optional[float] = None,
    before_attempt: Optional[Callable[[RunSpec, int], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> PointOutcome:
    """Execute one spec with graceful failure handling.

    A run failing with a :class:`~repro.errors.TransientError` (most
    interestingly :class:`~repro.errors.RetryLimitError` under fault
    injection, or :class:`~repro.errors.DeadlineExpiredError` from the
    deadline guard) is re-attempted per ``policy`` with a *fresh*
    application instance, sleeping the policy's deterministic backoff
    delay between attempts.  Permanent errors, and transient errors
    that exhaust the budget, are returned as a :class:`PointFailure`
    instead of raising, so the rest of a sweep continues.
    Non-simulation errors (bugs) propagate.

    ``policy`` wins over the legacy ``retries`` count; ``deadline_s``
    arms a per-attempt wall-clock deadline.  ``before_attempt`` is a
    test/chaos seam invoked inside the deadline guard, before the
    simulation, with ``(spec, attempt_number)``.
    """
    if policy is None:
        policy = RetryPolicy(max_retries=retries)
    key = spec.spec_digest()
    attempts = 0
    while True:
        attempts += 1
        app = spec.make_application()
        try:
            with deadline_guard(deadline_s):
                if before_attempt is not None:
                    before_attempt(spec, attempts)
                return simulate(
                    app, spec.machine, spec.config, max_events=spec.max_events
                )
        except ReproError as exc:  # noqa: PERF203 -- intentional retry loop
            if policy.should_retry(exc, attempts):
                delay = policy.delay_s(attempts, key)
                if delay > 0:
                    sleep(delay)
                continue
            return failure_from(spec, exc, attempts)


class ExecutionBackend:
    """Protocol of an execution backend.

    ``run`` lazily yields ``(spec, outcome)`` pairs as points complete
    (not necessarily in submission order), so callers can checkpoint
    each point the moment it finishes.  Backends may carry a
    :class:`~repro.exec.policy.RetryPolicy` and a per-point deadline;
    a policy set on the backend wins over the legacy per-call
    ``retries`` count.
    """

    #: Worker parallelism the backend provides.
    jobs: int = 1
    #: Retry policy applied to every point (None: derive from ``retries``).
    policy: Optional[RetryPolicy] = None
    #: Per-point wall-clock deadline in seconds (None: unbounded).
    deadline_s: Optional[float] = None

    def _effective_policy(self, retries: int) -> RetryPolicy:
        if self.policy is not None:
            return self.policy
        return RetryPolicy(max_retries=retries)

    def run(
        self, specs: Sequence[RunSpec], retries: int = 1
    ) -> Iterator[Tuple[RunSpec, PointOutcome]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Executes specs one by one in the calling process."""

    name = "serial"
    jobs = 1

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
    ):
        self.policy = policy
        self.deadline_s = deadline_s

    def run(
        self, specs: Sequence[RunSpec], retries: int = 1
    ) -> Iterator[Tuple[RunSpec, PointOutcome]]:
        policy = self._effective_policy(retries)
        for spec in specs:
            yield spec, execute_spec(
                spec, policy=policy, deadline_s=self.deadline_s
            )


def _reset_worker_signals() -> None:
    """Pool-worker initializer: detach inherited signal plumbing.

    Workers are forked from a parent that may have installed signal
    handlers *and* a signal wakeup fd (``asyncio``'s
    ``add_signal_handler`` routes signals through a self-pipe).  A
    forked worker shares that very pipe, so a signal delivered to the
    worker -- e.g. the ``SIGTERM`` the executor's management thread
    sends to siblings of a crashed worker -- would be written into the
    parent's wakeup pipe and fire the *parent's* handler: a daemon
    would gracefully drain itself every time a worker died.  Workers
    do their own dying; the default dispositions are correct for them.
    """
    signal.set_wakeup_fd(-1)
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, signal.SIG_DFL)


class ProcessPoolBackend(ExecutionBackend):
    """Executes batches across a pool of worker processes.

    The pool is created lazily on the first batch and reused across
    batches (an ``all`` sweep runs one batch per figure), so workers
    are forked once, not per figure.  Specs and outcomes are plain
    picklable dataclasses; the deterministic engine guarantees a worker
    computes the same result the parent would have.
    """

    name = "process"

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ConfigError(
                f"ProcessPoolBackend needs at least 2 jobs, got {jobs} "
                "(use SerialBackend / --jobs 1 for serial execution)"
            )
        self.jobs = jobs
        self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_reset_worker_signals
            )
        return self._pool

    def run(
        self, specs: Sequence[RunSpec], retries: int = 1
    ) -> Iterator[Tuple[RunSpec, PointOutcome]]:
        specs = list(specs)
        if not specs:
            return
        policy = self._effective_policy(retries)
        pool = self._ensure_pool()
        futures = {
            pool.submit(execute_spec, spec, policy=policy): spec
            for spec in specs
        }
        for future in as_completed(futures):
            yield futures[future], future.result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def make_backend(
    jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
    deadline_s: Optional[float] = None,
    supervise: bool = True,
) -> ExecutionBackend:
    """Backend for the requested parallelism (``jobs <= 1``: serial).

    Parallel backends are *supervised* by default: worker death and
    expired deadlines are recovered by pool rebuilds instead of
    aborting the sweep (see :mod:`repro.exec.supervisor`).  Pass
    ``supervise=False`` for the bare pool, which propagates
    ``BrokenProcessPool`` -- useful as the reference in tests.
    """
    if jobs <= 1:
        return SerialBackend(policy=policy, deadline_s=deadline_s)
    if supervise:
        # Imported lazily: the supervisor builds on this module.
        from .supervisor import SupervisedPoolBackend

        return SupervisedPoolBackend(jobs, policy=policy, deadline_s=deadline_s)
    backend = ProcessPoolBackend(jobs)
    backend.policy = policy
    backend.deadline_s = deadline_s
    return backend


def drain(
    pairs: Iterable[Tuple[RunSpec, PointOutcome]]
) -> Dict[str, PointOutcome]:
    """Collect a backend stream into a digest-keyed dict (test helper)."""
    return {spec.spec_digest(): outcome for spec, outcome in pairs}
