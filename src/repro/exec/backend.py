"""Execution backends: serial and process-parallel spec execution.

A backend turns :class:`~repro.runspec.RunSpec`\\ s into
:class:`~repro.core.accounting.RunResult`\\ s.  Both backends share one
primitive, :func:`execute_spec`, which owns the retry/
:class:`PointFailure` semantics, so a point behaves identically no
matter where it runs:

* :class:`SerialBackend` executes specs one by one in the calling
  process -- the pre-existing behaviour, and the reference the parallel
  backend is tested against,
* :class:`ProcessPoolBackend` fans a batch out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (CLI ``--jobs N``)
  and yields points *as they complete*, so the consumer can checkpoint
  incrementally.

Because the simulator is deterministic (equal spec => equal execution,
gated by the golden digests), a worker process produces bit-identical
results and determinism digests to an in-process run -- the only field
that legitimately differs between backends is the measured
``wall_seconds``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Sequence, Tuple, Union

from ..core.accounting import RunResult
from ..core.runner import simulate
from ..errors import ConfigError, ReproError
from ..runspec import RunSpec


@dataclass(frozen=True)
class PointFailure:
    """Structured record of one sweep point that could not complete."""

    app: str
    machine: str
    topology: str
    nprocs: int
    #: Exception type name (e.g. ``"RetryLimitError"``).
    error: str
    #: The exception's message.
    message: str
    #: How many times the run was attempted (including retries).
    attempts: int

    def to_dict(self) -> Dict:
        return {
            "app": self.app,
            "machine": self.machine,
            "topology": self.topology,
            "nprocs": self.nprocs,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PointFailure":
        return cls(
            app=data["app"],
            machine=data["machine"],
            topology=data["topology"],
            nprocs=int(data["nprocs"]),
            error=data["error"],
            message=data["message"],
            attempts=int(data["attempts"]),
        )

    def summary(self) -> str:
        return (
            f"{self.app}/{self.machine}/{self.topology}/p={self.nprocs}: "
            f"{self.error}: {self.message} (after {self.attempts} attempt(s))"
        )


#: What executing one spec yields: the result, or a structured failure.
PointOutcome = Union[RunResult, PointFailure]


def execute_spec(spec: RunSpec, retries: int = 1) -> PointOutcome:
    """Execute one spec with graceful failure handling.

    A failing run (any :class:`~repro.errors.ReproError`, most
    interestingly :class:`~repro.errors.RetryLimitError` under fault
    injection) is re-attempted ``retries`` times with a *fresh*
    application instance; if it still fails, a :class:`PointFailure`
    is returned instead of raising, so the rest of a sweep continues.
    Non-simulation errors (bugs) propagate.
    """
    attempts = 0
    while True:
        attempts += 1
        app = spec.make_application()
        try:
            return simulate(
                app, spec.machine, spec.config, max_events=spec.max_events
            )
        except ReproError as exc:  # noqa: PERF203 -- intentional retry loop
            if attempts <= retries:
                continue
            return PointFailure(
                app=spec.app,
                machine=spec.machine,
                topology=spec.config.topology,
                nprocs=spec.config.processors,
                error=type(exc).__name__,
                message=str(exc),
                attempts=attempts,
            )


class ExecutionBackend:
    """Protocol of an execution backend.

    ``run`` lazily yields ``(spec, outcome)`` pairs as points complete
    (not necessarily in submission order), so callers can checkpoint
    each point the moment it finishes.
    """

    #: Worker parallelism the backend provides.
    jobs: int = 1

    def run(
        self, specs: Sequence[RunSpec], retries: int = 1
    ) -> Iterator[Tuple[RunSpec, PointOutcome]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Executes specs one by one in the calling process."""

    name = "serial"
    jobs = 1

    def run(
        self, specs: Sequence[RunSpec], retries: int = 1
    ) -> Iterator[Tuple[RunSpec, PointOutcome]]:
        for spec in specs:
            yield spec, execute_spec(spec, retries)


class ProcessPoolBackend(ExecutionBackend):
    """Executes batches across a pool of worker processes.

    The pool is created lazily on the first batch and reused across
    batches (an ``all`` sweep runs one batch per figure), so workers
    are forked once, not per figure.  Specs and outcomes are plain
    picklable dataclasses; the deterministic engine guarantees a worker
    computes the same result the parent would have.
    """

    name = "process"

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ConfigError(
                f"ProcessPoolBackend needs at least 2 jobs, got {jobs} "
                "(use SerialBackend / --jobs 1 for serial execution)"
            )
        self.jobs = jobs
        self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def run(
        self, specs: Sequence[RunSpec], retries: int = 1
    ) -> Iterator[Tuple[RunSpec, PointOutcome]]:
        specs = list(specs)
        if not specs:
            return
        pool = self._ensure_pool()
        futures = {
            pool.submit(execute_spec, spec, retries): spec for spec in specs
        }
        for future in as_completed(futures):
            yield futures[future], future.result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def make_backend(jobs: int = 1) -> ExecutionBackend:
    """Backend for the requested parallelism (``jobs <= 1``: serial)."""
    if jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs)


def drain(
    pairs: Iterable[Tuple[RunSpec, PointOutcome]]
) -> Dict[str, PointOutcome]:
    """Collect a backend stream into a digest-keyed dict (test helper)."""
    return {spec.spec_digest(): outcome for spec, outcome in pairs}
