"""Canonical description of one simulation: the RunSpec.

A :class:`RunSpec` is a frozen, canonically-serializable value object
that names everything a simulation depends on -- the application and
its constructor parameters, the machine model, the full
:class:`~repro.config.SystemConfig` (topology, seed, protocol, barrier,
fault injection, sanitizer level, ...), the workload preset, and the
engine watchdog budget.  Its :meth:`~RunSpec.spec_digest` is a BLAKE2b
hash of the canonical JSON form and is the *only* identity the
execution layers use:

* the in-memory sweep memo and the on-disk checkpoint journal key
  completed points by digest,
* the :class:`~repro.exec.store.ResultStore` content-addresses cached
  results by digest,
* the process-pool backend ships specs (not ad-hoc argument tuples) to
  workers.

The digest hashes *every* field of the serialized form, so adding a
configuration field changes the digest of every spec that carries a
non-default value -- a cache miss, never silent aliasing.  This
replaces the hand-maintained 8-element ``RunKey`` tuple, which dropped
fields it did not know about (``barrier`` and ``seed`` among them) and
therefore served the *wrong* cached run when those fields differed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from .config import MACHINES, SystemConfig
from .errors import ConfigError
from .faults.config import FaultConfig

#: Version of the canonical serialization.  Bump when the *shape* of
#: :meth:`RunSpec.to_dict` changes (field values changing is handled by
#: the digest itself).
SPEC_SCHEMA = 1

#: JSON-scalar types allowed as application parameter values.
_SCALARS = (bool, int, float, str, type(None))

#: Application parameters in canonical form: name-sorted (name, value).
ParamsTuple = Tuple[Tuple[str, object], ...]


def canonical_json(payload: Dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """Everything one simulation depends on, as a hashable value."""

    #: Application name (see :data:`repro.apps.APPLICATIONS`).
    app: str

    #: Machine model name (see :data:`repro.config.MACHINES`).
    machine: str

    #: Full hardware/fault/sanitizer configuration.
    config: SystemConfig

    #: Application constructor kwargs, canonically sorted.  A plain
    #: mapping may be passed; it is normalized on construction.
    params: Union[ParamsTuple, Mapping[str, object]] = ()

    #: Workload preset the parameters came from (journaling metadata;
    #: part of the identity, like the old memo key's preset slot).
    preset: str = "default"

    #: Engine watchdog budget (``None``: unbounded), forwarded to
    #: :meth:`~repro.engine.core.Simulator.run`.
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.machine not in MACHINES:
            raise ConfigError(
                f"unknown machine {self.machine!r}; expected one of {MACHINES}"
            )
        params = self.params
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
        else:
            params = tuple(sorted((str(k), v) for k, v in params))
        for name, value in params:
            if not isinstance(value, _SCALARS):
                raise ConfigError(
                    f"application parameter {name!r} must be a JSON scalar "
                    f"for canonical serialization, got {type(value).__name__}"
                )
        object.__setattr__(self, "params", params)
        if self.max_events is not None and self.max_events <= 0:
            raise ConfigError(
                f"max_events must be positive or None, got {self.max_events}"
            )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build(
        cls,
        app: str,
        machine: str,
        nprocs: int,
        topology: str = "full",
        *,
        preset: str = "default",
        params: Optional[Mapping[str, object]] = None,
        seed: int = 12345,
        fault: Optional[FaultConfig] = None,
        check: Optional[str] = None,
        digest: bool = False,
        protocol: str = "berkeley",
        barrier: str = "central",
        adaptive_g: bool = False,
        g_per_event_type: bool = False,
        batch_local: bool = True,
        max_events: Optional[int] = None,
        engine_kernel: Optional[str] = None,
    ) -> "RunSpec":
        """Assemble a spec from sweep-level arguments.

        ``params=None`` resolves the application parameters from the
        preset (see :func:`repro.experiments.workloads.app_params`);
        ``check=None`` leaves the sanitizer level to the configuration
        default (the ``REPRO_CHECK`` environment variable, or off);
        ``engine_kernel=None`` likewise defers to the configuration
        default (``REPRO_ENGINE``, or auto -- the SoA kernel).
        """
        if params is None:
            # Imported lazily: the experiments package sits above this
            # layer and importing it at module scope would be circular.
            from .experiments.workloads import app_params

            params = app_params(app, preset)
        config = SystemConfig(
            processors=nprocs,
            topology=topology,
            seed=seed,
            protocol=protocol,
            barrier=barrier,
            adaptive_g=adaptive_g,
            g_per_event_type=g_per_event_type,
            batch_local=batch_local,
            digest=digest,
            fault=fault if fault is not None else FaultConfig(),
            **({"check": check} if check is not None else {}),
            **({"engine_kernel": engine_kernel}
               if engine_kernel is not None else {}),
        )
        return cls(
            app=app,
            machine=machine,
            config=config,
            params=dict(params),
            preset=preset,
            max_events=max_events,
        )

    # -- canonical (de)serialization -----------------------------------------

    @property
    def params_dict(self) -> Dict[str, object]:
        """Application constructor kwargs as a fresh dict."""
        return dict(self.params)

    def to_dict(self) -> Dict:
        """Canonical JSON-ready representation (digest input)."""
        return {
            "schema": SPEC_SCHEMA,
            "app": self.app,
            "machine": self.machine,
            "preset": self.preset,
            "max_events": self.max_events,
            "params": self.params_dict,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        :raises ConfigError: the payload was written by a different
            serialization schema or carries unknown configuration
            fields.
        """
        if not isinstance(data, dict):
            raise ConfigError(f"run spec must be a mapping, got {type(data).__name__}")
        schema = data.get("schema")
        if schema != SPEC_SCHEMA:
            raise ConfigError(
                f"run spec was serialized with schema {schema!r}; this "
                f"version reads schema {SPEC_SCHEMA}"
            )
        try:
            return cls(
                app=data["app"],
                machine=data["machine"],
                config=SystemConfig.from_dict(data["config"]),
                params=dict(data["params"]),
                preset=data["preset"],
                max_events=data["max_events"],
            )
        except KeyError as exc:
            raise ConfigError(f"run spec is missing field {exc}") from exc

    def canonical_json(self) -> str:
        """The canonical JSON form the digest is computed over."""
        return canonical_json(self.to_dict())

    def spec_digest(self) -> str:
        """Stable BLAKE2b hex digest of the canonical serialization."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.blake2b(
                self.canonical_json().encode("utf-8"), digest_size=16
            ).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    # -- execution helpers ---------------------------------------------------

    def make_application(self):
        """A fresh application instance for one simulation attempt.

        Applications hold run state and must never be reused across
        runs, so every attempt gets its own instance.
        """
        from .apps import make_app

        return make_app(self.app, self.config.processors, **self.params_dict)

    def describe(self) -> str:
        """Human-readable one-liner used in logs and failure records."""
        return (
            f"{self.app}/{self.machine}/{self.config.topology}/"
            f"p={self.config.processors} ({self.preset})"
        )
