"""Registry of the paper's experiments.

One :class:`Experiment` per figure of the HPCA'95 evaluation (the paper
numbers them 1-20), plus the two Section 7 studies.  ``expected``
records the qualitative result the paper reports -- the property our
reproduction is checked against in ``EXPERIMENTS.md`` and the
integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Machines whose curves appear in the paper's figures.
FIGURE_MACHINES: Tuple[str, ...] = ("target", "logp", "clogp")


@dataclass(frozen=True)
class Experiment:
    """One reproducible figure/table of the paper."""

    id: str
    paper_ref: str
    app: str
    topology: str
    #: ``"latency"``, ``"contention"``, ``"execution"`` -- or the
    #: special kinds ``"simspeed"`` / ``"ggap"`` for the Section 7
    #: studies.
    metric: str
    description: str
    expected: str
    machines: Tuple[str, ...] = FIGURE_MACHINES


def _figure(fid, ref, app, topo, metric, description, expected) -> Experiment:
    return Experiment(
        id=fid,
        paper_ref=ref,
        app=app,
        topology=topo,
        metric=metric,
        description=description,
        expected=expected,
    )


_ALL: List[Experiment] = [
    # -- latency overhead (Section 6.1, Figs. 1-5; full network shown
    #    because L is topology-independent) ---------------------------------
    _figure(
        "fig01", "Figure 1", "fft", "full", "latency",
        "FFT on full: latency overhead vs processors",
        "CLogP tracks target; LogP is ~4x both (4 items per cache block)",
    ),
    _figure(
        "fig02", "Figure 2", "cg", "full", "latency",
        "CG on full: latency overhead vs processors",
        "CLogP tracks target (slightly above: little coherence traffic); "
        "LogP far above (no spatial/temporal reuse)",
    ),
    _figure(
        "fig03", "Figure 3", "ep", "full", "latency",
        "EP on full: latency overhead vs processors",
        "CLogP tracks target (both tiny); LogP far above -- every "
        "condition-variable poll is a network round trip",
    ),
    _figure(
        "fig04", "Figure 4", "is", "full", "latency",
        "IS on full: latency overhead vs processors",
        "CLogP tracks target, slightly below it (coherence traffic of the "
        "lock-heavy histogram merge is unmodeled)",
    ),
    _figure(
        "fig05", "Figure 5", "cholesky", "full", "latency",
        "CHOLESKY on full: latency overhead vs processors",
        "CLogP tracks target, slightly below it (coherence-heavy app)",
    ),
    # -- contention overhead (Section 6.1, Figs. 6-11) ------------------------
    _figure(
        "fig06", "Figure 6", "is", "full", "contention",
        "IS on full: contention overhead vs processors",
        "CLogP same trend as target but pessimistic (g from bisection)",
    ),
    _figure(
        "fig07", "Figure 7", "is", "mesh", "contention",
        "IS on mesh: contention overhead vs processors",
        "pessimism amplified on the lower-connectivity mesh",
    ),
    _figure(
        "fig08", "Figure 8", "fft", "cube", "contention",
        "FFT on cube: contention overhead vs processors",
        "CLogP same trend as target but pessimistic",
    ),
    _figure(
        "fig09", "Figure 9", "cholesky", "full", "contention",
        "CHOLESKY on full: contention overhead vs processors",
        "CLogP same trend as target but pessimistic",
    ),
    _figure(
        "fig10", "Figure 10", "ep", "full", "contention",
        "EP on full: contention overhead vs processors",
        "large disparity: EP's communication locality makes the "
        "bisection-derived g very pessimistic",
    ),
    _figure(
        "fig11", "Figure 11", "ep", "mesh", "contention",
        "EP on mesh: contention overhead vs processors",
        "disparity amplified further; CLogP trend departs from target",
    ),
    # -- execution time (Section 6.2, Figs. 12-18) ------------------------------
    _figure(
        "fig12", "Figure 12", "ep", "full", "execution",
        "EP on full: execution time vs processors",
        "all three machines agree (computation dominates)",
    ),
    _figure(
        "fig13", "Figure 13", "fft", "mesh", "execution",
        "FFT on mesh: execution time vs processors",
        "LogP above CLogP~target; the mesh amplifies FFT's non-local refs",
    ),
    _figure(
        "fig14", "Figure 14", "is", "full", "execution",
        "IS on full: execution time vs processors",
        "pronounced LogP divergence even on the full network",
    ),
    _figure(
        "fig15", "Figure 15", "cg", "full", "execution",
        "CG on full: execution time vs processors",
        "LogP far above CLogP~target (dynamic reference pattern)",
    ),
    _figure(
        "fig16", "Figure 16", "cholesky", "full", "execution",
        "CHOLESKY on full: execution time vs processors",
        "LogP far above CLogP~target (dynamic scheduling)",
    ),
    _figure(
        "fig17", "Figure 17", "cg", "mesh", "execution",
        "CG on mesh: execution time vs processors",
        "LogP departs even in curve shape (contention explosion)",
    ),
    _figure(
        "fig18", "Figure 18", "cholesky", "mesh", "execution",
        "CHOLESKY on mesh: execution time vs processors",
        "LogP departs even in curve shape (contention explosion)",
    ),
    # -- the mesh contention behind Figs. 17/18 (Figs. 19-20) ---------------------
    _figure(
        "fig19", "Figure 19", "cg", "mesh", "contention",
        "CG on mesh: contention overhead vs processors",
        "LogP contention explodes (drives Fig. 17); CLogP pessimistic vs "
        "target but nowhere near LogP",
    ),
    _figure(
        "fig20", "Figure 20", "cholesky", "mesh", "contention",
        "CHOLESKY on mesh: contention overhead vs processors",
        "LogP contention explodes (drives Fig. 18)",
    ),
    # -- Section 7 studies --------------------------------------------------------
    Experiment(
        id="tab-speed",
        paper_ref="Section 7, 'Speed of Simulation'",
        app="cholesky",
        topology="full",
        metric="simspeed",
        description=(
            "Host cost of simulating each machine model (the paper "
            "reports CLogP ~25-30% cheaper than the target and LogP "
            "*more* expensive, because ignoring locality turns cache "
            "hits into simulated network events)"
        ),
        expected=(
            "events(clogp) well below events(target); the paper's "
            "LogP-slower-than-target result holds in simulated network "
            "messages (LogP >> target), though not in engine events "
            "here because our LogP transport is closed-form "
            "(see EXPERIMENTS.md)"
        ),
        machines=("target", "logp", "clogp"),
    ),
    Experiment(
        id="exp-gadapt",
        paper_ref="Section 7 (suggested future work)",
        app="ep",
        topology="mesh",
        metric="gadapt",
        description=(
            "History-based g estimation: scale g by the observed "
            "communication locality (mean route hops relative to the "
            "uniform-traffic assumption behind the bisection-bandwidth "
            "derivation).  The paper suggests exactly this: 'we may be "
            "able to maintain a history of the execution and use it to "
            "calculate g'.  Evaluated on EP/mesh, the paper's worst "
            "pessimism case (Fig. 11)."
        ),
        expected=(
            "adaptive-g CLogP contention sits between strict-g CLogP "
            "and the target"
        ),
        machines=("target", "clogp"),
    ),
    Experiment(
        id="exp-proto",
        paper_ref="Sections 3.2 and 7 (protocol-sensitivity claim)",
        app="cg",
        topology="full",
        metric="protocol",
        description=(
            "Swap the target's Berkeley protocol for Illinois/MESI "
            "(silent EXCLUSIVE->DIRTY upgrades, sharing writebacks) "
            "and compare both targets' network traffic against the "
            "CLogP abstraction.  The paper predicts a fancier protocol "
            "that reduces network traffic 'would only enhance the "
            "agreement'."
        ),
        expected=(
            "messages(berkeley) >= messages(illinois) >= messages(clogp): "
            "CLogP's traffic is the floor, and the fancier protocol moves "
            "the target toward it"
        ),
        machines=("target", "clogp"),
    ),
    Experiment(
        id="exp-ggap",
        paper_ref="Section 7 (g-gap relaxation)",
        app="fft",
        topology="cube",
        metric="ggap",
        description=(
            "FFT on the cube with the g gap enforced only between "
            "identical communication events (send-send / recv-recv) "
            "instead of all network events at a node"
        ),
        expected=(
            "relaxed-g CLogP contention moves much closer to the target "
            "than strict-g CLogP"
        ),
        machines=("target", "clogp"),
    ),
]

EXPERIMENTS: Dict[str, Experiment] = {e.id: e for e in _ALL}


def experiment_ids() -> List[str]:
    """All experiment ids in paper order."""
    return [e.id for e in _ALL]


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment, with a helpful error."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {experiment_ids()}"
        ) from None
