"""Sweep runner: executes the simulations behind each figure.

Several figures are different metrics of the *same* simulations (e.g.
Fig. 17 plots execution time and Fig. 19 the contention of the same
CG-on-mesh runs), so the runner memoizes completed runs by
``(app, machine, topology, processors, preset, g-mode)``.

Robustness
----------
Long sweeps must survive individual failing points (most interestingly
under fault injection, where a run can legitimately die with
:class:`~repro.errors.RetryLimitError`).  :meth:`SweepRunner.run_point`
retries a failing run once (``run_retries``) and then records a
structured :class:`PointFailure` instead of aborting the sweep; failed
points surface as ``nan`` in the figure series.  With a
``checkpoint_path`` the runner journals every completed point (and
failure) to JSON after it finishes, and a fresh runner pointed at the
same file resumes without re-running completed points.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..apps import make_app
from ..config import SystemConfig
from ..core.accounting import RunResult
from ..core.runner import simulate
from ..errors import ConfigError, ReproError
from ..faults.config import FaultConfig
from .registry import Experiment
from .workloads import app_params, processor_sweep

#: Memo key for one simulation.
RunKey = Tuple[str, str, str, int, str, bool, bool, str]


@dataclass(frozen=True)
class PointFailure:
    """Structured record of one sweep point that could not complete."""

    app: str
    machine: str
    topology: str
    nprocs: int
    #: Exception type name (e.g. ``"RetryLimitError"``).
    error: str
    #: The exception's message.
    message: str
    #: How many times the run was attempted (including retries).
    attempts: int

    def to_dict(self) -> Dict:
        return {
            "app": self.app,
            "machine": self.machine,
            "topology": self.topology,
            "nprocs": self.nprocs,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PointFailure":
        return cls(
            app=data["app"],
            machine=data["machine"],
            topology=data["topology"],
            nprocs=int(data["nprocs"]),
            error=data["error"],
            message=data["message"],
            attempts=int(data["attempts"]),
        )

    def summary(self) -> str:
        return (
            f"{self.app}/{self.machine}/{self.topology}/p={self.nprocs}: "
            f"{self.error}: {self.message} (after {self.attempts} attempt(s))"
        )


@dataclass
class FigureData:
    """The series behind one figure: metric value per (machine, p)."""

    experiment: Experiment
    processors: Tuple[int, ...]
    #: machine name -> list of metric values aligned with ``processors``
    #: (``nan`` marks a point whose simulation failed).
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: machine name -> list of the full results (same alignment; a
    #: failed point holds its :class:`PointFailure` instead).
    results: Dict[str, List[Union[RunResult, PointFailure]]] = field(
        default_factory=dict
    )
    #: Failures encountered while producing this figure.
    failures: List[PointFailure] = field(default_factory=list)

    def value(self, machine: str, nprocs: int) -> float:
        """Metric value of one point.

        :raises ConfigError: the figure has no such machine series or
            was not run at that processor count.
        """
        if machine not in self.series:
            raise ConfigError(
                f"figure {self.experiment.id!r} has no series for machine "
                f"{machine!r}; available: {sorted(self.series)}"
            )
        if nprocs not in self.processors:
            raise ConfigError(
                f"figure {self.experiment.id!r} was not run at p={nprocs}; "
                f"available processor counts: {list(self.processors)}"
            )
        return self.series[machine][self.processors.index(nprocs)]


def _key_string(key: RunKey) -> str:
    """Stable string form of a memo key, used in checkpoint files."""
    return "|".join(str(part) for part in key)


class SweepRunner:
    """Runs and memoizes the processor sweeps for the experiments."""

    def __init__(
        self,
        preset: str = "default",
        processors: Optional[Sequence[int]] = None,
        seed: int = 12345,
        fault: Optional[FaultConfig] = None,
        run_retries: int = 1,
        checkpoint_path: Optional[Union[str, Path]] = None,
        max_events: Optional[int] = None,
        check: Optional[str] = None,
    ):
        self.preset = preset
        self.processors: Tuple[int, ...] = tuple(
            processors if processors is not None else processor_sweep(preset)
        )
        self.seed = seed
        #: Fault-injection configuration applied to every run (None ->
        #: the fault-free default).
        self.fault = fault
        #: How many times a failing run is re-attempted before being
        #: recorded as a :class:`PointFailure`.
        self.run_retries = run_retries
        #: Engine watchdog budget forwarded to every simulation.
        self.max_events = max_events
        #: Sanitizer level applied to every run (None -> the
        #: configuration default, i.e. ``REPRO_CHECK`` or off).
        self.check = check
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self._cache: Dict[RunKey, RunResult] = {}
        self._failures: Dict[RunKey, PointFailure] = {}
        if self.checkpoint_path is not None and self.checkpoint_path.exists():
            self._load_checkpoint()

    # -- checkpointing -------------------------------------------------------------

    def _load_checkpoint(self) -> None:
        """Resume from a checkpoint written by an earlier sweep."""
        try:
            with open(self.checkpoint_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            for key_str, result in data.get("results", {}).items():
                self._cache[self._parse_key(key_str)] = RunResult.from_dict(
                    result
                )
            for key_str, failure in data.get("failures", {}).items():
                self._failures[self._parse_key(key_str)] = (
                    PointFailure.from_dict(failure)
                )
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise ConfigError(
                f"cannot resume from checkpoint {self.checkpoint_path}: "
                f"{exc}"
            ) from exc

    @staticmethod
    def _parse_key(key_str: str) -> RunKey:
        app, machine, topology, nprocs, preset, per_type, adaptive, proto = (
            key_str.split("|")
        )
        return (app, machine, topology, int(nprocs), preset,
                per_type == "True", adaptive == "True", proto)

    def _save_checkpoint(self) -> None:
        """Atomically journal every completed point and failure."""
        if self.checkpoint_path is None:
            return
        data = {
            "version": 1,
            "preset": self.preset,
            "seed": self.seed,
            "results": {
                _key_string(key): result.to_dict()
                for key, result in self._cache.items()
            },
            "failures": {
                _key_string(key): failure.to_dict()
                for key, failure in self._failures.items()
            },
        }
        tmp = self.checkpoint_path.with_name(self.checkpoint_path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=1)
            # Flush user- and kernel-space buffers before the rename: a
            # crash mid-write must leave either the old checkpoint or
            # the new one, never a truncated file.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.checkpoint_path)

    @property
    def failures(self) -> List[PointFailure]:
        """Every point failure recorded so far."""
        return list(self._failures.values())

    # -- primitives ----------------------------------------------------------------

    def run_point(
        self,
        app: str,
        machine: str,
        topology: str,
        nprocs: int,
        g_per_event_type: bool = False,
        adaptive_g: bool = False,
        protocol: str = "berkeley",
    ) -> Union[RunResult, PointFailure]:
        """One memoized simulation with graceful failure handling.

        A failing run is retried ``run_retries`` times; if it still
        fails the point is recorded (and memoized, and checkpointed) as
        a :class:`PointFailure` so the rest of the sweep continues.
        """
        key: RunKey = (app, machine, topology, nprocs, self.preset,
                       g_per_event_type, adaptive_g, protocol)
        result = self._cache.get(key)
        if result is not None:
            return result
        failure = self._failures.get(key)
        if failure is not None:
            return failure
        config = SystemConfig(
            processors=nprocs,
            topology=topology,
            seed=self.seed,
            g_per_event_type=g_per_event_type,
            adaptive_g=adaptive_g,
            protocol=protocol,
            fault=self.fault if self.fault is not None else FaultConfig(),
            **({"check": self.check} if self.check is not None else {}),
        )
        attempts = 0
        while True:
            attempts += 1
            instance = make_app(app, nprocs, **app_params(app, self.preset))
            try:
                result = simulate(
                    instance, machine, config, max_events=self.max_events
                )
            except ReproError as exc:
                if attempts <= self.run_retries:
                    continue
                failure = PointFailure(
                    app=app,
                    machine=machine,
                    topology=topology,
                    nprocs=nprocs,
                    error=type(exc).__name__,
                    message=str(exc),
                    attempts=attempts,
                )
                self._failures[key] = failure
                self._save_checkpoint()
                return failure
            self._cache[key] = result
            self._save_checkpoint()
            return result

    def run_one(
        self,
        app: str,
        machine: str,
        topology: str,
        nprocs: int,
        g_per_event_type: bool = False,
        adaptive_g: bool = False,
        protocol: str = "berkeley",
    ) -> RunResult:
        """One memoized simulation; raises if the point failed."""
        outcome = self.run_point(
            app, machine, topology, nprocs,
            g_per_event_type=g_per_event_type,
            adaptive_g=adaptive_g,
            protocol=protocol,
        )
        if isinstance(outcome, PointFailure):
            raise ReproError(f"sweep point failed: {outcome.summary()}")
        return outcome

    # -- figures --------------------------------------------------------------------

    def _series(
        self,
        data: FigureData,
        label: str,
        app: str,
        machine: str,
        topology: str,
        metric,
        **run_kwargs,
    ) -> None:
        """Fill one (label -> values) series, degrading failed points."""
        outcomes = [
            self.run_point(app, machine, topology, nprocs, **run_kwargs)
            for nprocs in self.processors
        ]
        data.results[label] = outcomes
        values: List[float] = []
        for outcome in outcomes:
            if isinstance(outcome, PointFailure):
                data.failures.append(outcome)
                values.append(math.nan)
            else:
                values.append(metric(outcome))
        data.series[label] = values

    def run_experiment(self, experiment: Experiment) -> FigureData:
        """All series of one experiment."""
        if experiment.metric == "simspeed":
            return self._run_simspeed(experiment)
        if experiment.metric == "ggap":
            return self._run_ggap(experiment)
        if experiment.metric == "gadapt":
            return self._run_gadapt(experiment)
        if experiment.metric == "protocol":
            return self._run_protocol(experiment)
        data = FigureData(experiment=experiment, processors=self.processors)
        for machine in experiment.machines:
            self._series(
                data, machine, experiment.app, machine, experiment.topology,
                lambda r: r.metric(experiment.metric),
            )
        return data

    def _run_simspeed(self, experiment: Experiment) -> FigureData:
        """Section 7 speed-of-simulation study.

        The metric series is the host cost of each machine model,
        measured in simulator events executed (wall seconds are also in
        the attached results but are noisy on a shared host).
        """
        data = FigureData(experiment=experiment, processors=self.processors)
        for machine in experiment.machines:
            self._series(
                data, machine, experiment.app, machine, experiment.topology,
                lambda r: float(r.sim_events),
            )
        return data

    def _run_gadapt(self, experiment: Experiment) -> FigureData:
        """History-based g estimation (the paper's future-work idea)."""
        data = FigureData(experiment=experiment, processors=self.processors)
        series_spec = [
            ("target", "target", False),
            ("clogp", "clogp", False),
            ("clogp-adaptive-g", "clogp", True),
        ]
        for label, machine, adaptive in series_spec:
            self._series(
                data, label, experiment.app, machine, experiment.topology,
                lambda r: r.metric("contention"),
                adaptive_g=adaptive,
            )
        return data

    def _run_protocol(self, experiment: Experiment) -> FigureData:
        """Berkeley vs Illinois targets against the CLogP abstraction.

        The series is total network messages: the paper frames the
        claim in terms of network accesses, with CLogP's traffic as the
        minimum any invalidation protocol can achieve and "fancier"
        protocols approaching it from above.
        """
        data = FigureData(experiment=experiment, processors=self.processors)
        series_spec = [
            ("target-berkeley", "target", "berkeley"),
            ("target-illinois", "target", "illinois"),
            ("clogp", "clogp", "berkeley"),
        ]
        for label, machine, protocol in series_spec:
            self._series(
                data, label, experiment.app, machine, experiment.topology,
                lambda r: float(r.messages),
                protocol=protocol,
            )
        return data

    def _run_ggap(self, experiment: Experiment) -> FigureData:
        """Section 7 g-gap relaxation: strict vs per-event-type gating."""
        data = FigureData(experiment=experiment, processors=self.processors)
        series_spec = [
            ("target", "target", False),
            ("clogp", "clogp", False),
            ("clogp-relaxed-g", "clogp", True),
        ]
        for label, machine, relaxed in series_spec:
            self._series(
                data, label, experiment.app, machine, experiment.topology,
                lambda r: r.metric("contention"),
                g_per_event_type=relaxed,
            )
        return data
