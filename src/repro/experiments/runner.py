"""Sweep runner: executes the simulations behind each figure.

Several figures are different metrics of the *same* simulations (e.g.
Fig. 17 plots execution time and Fig. 19 the contention of the same
CG-on-mesh runs), so the runner memoizes completed runs by
``(app, machine, topology, processors, preset, g-mode)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import make_app
from ..config import SystemConfig
from ..core.accounting import RunResult
from ..core.runner import simulate
from .registry import Experiment
from .workloads import app_params, processor_sweep

#: Memo key for one simulation.
RunKey = Tuple[str, str, str, int, str, bool, bool, str]


@dataclass
class FigureData:
    """The series behind one figure: metric value per (machine, p)."""

    experiment: Experiment
    processors: Tuple[int, ...]
    #: machine name -> list of metric values aligned with ``processors``.
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: machine name -> list of the full results (same alignment).
    results: Dict[str, List[RunResult]] = field(default_factory=dict)

    def value(self, machine: str, nprocs: int) -> float:
        """Metric value of one point."""
        return self.series[machine][self.processors.index(nprocs)]


class SweepRunner:
    """Runs and memoizes the processor sweeps for the experiments."""

    def __init__(
        self,
        preset: str = "default",
        processors: Optional[Sequence[int]] = None,
        seed: int = 12345,
    ):
        self.preset = preset
        self.processors: Tuple[int, ...] = tuple(
            processors if processors is not None else processor_sweep(preset)
        )
        self.seed = seed
        self._cache: Dict[RunKey, RunResult] = {}

    # -- primitives ----------------------------------------------------------------

    def run_one(
        self,
        app: str,
        machine: str,
        topology: str,
        nprocs: int,
        g_per_event_type: bool = False,
        adaptive_g: bool = False,
        protocol: str = "berkeley",
    ) -> RunResult:
        """One memoized simulation."""
        key: RunKey = (app, machine, topology, nprocs, self.preset,
                       g_per_event_type, adaptive_g, protocol)
        result = self._cache.get(key)
        if result is None:
            config = SystemConfig(
                processors=nprocs,
                topology=topology,
                seed=self.seed,
                g_per_event_type=g_per_event_type,
                adaptive_g=adaptive_g,
                protocol=protocol,
            )
            instance = make_app(app, nprocs, **app_params(app, self.preset))
            result = simulate(instance, machine, config)
            self._cache[key] = result
        return result

    # -- figures --------------------------------------------------------------------

    def run_experiment(self, experiment: Experiment) -> FigureData:
        """All series of one experiment."""
        if experiment.metric == "simspeed":
            return self._run_simspeed(experiment)
        if experiment.metric == "ggap":
            return self._run_ggap(experiment)
        if experiment.metric == "gadapt":
            return self._run_gadapt(experiment)
        if experiment.metric == "protocol":
            return self._run_protocol(experiment)
        data = FigureData(experiment=experiment, processors=self.processors)
        for machine in experiment.machines:
            results = [
                self.run_one(
                    experiment.app, machine, experiment.topology, nprocs
                )
                for nprocs in self.processors
            ]
            data.results[machine] = results
            data.series[machine] = [
                r.metric(experiment.metric) for r in results
            ]
        return data

    def _run_simspeed(self, experiment: Experiment) -> FigureData:
        """Section 7 speed-of-simulation study.

        The metric series is the host cost of each machine model,
        measured in simulator events executed (wall seconds are also in
        the attached results but are noisy on a shared host).
        """
        data = FigureData(experiment=experiment, processors=self.processors)
        for machine in experiment.machines:
            results = [
                self.run_one(
                    experiment.app, machine, experiment.topology, nprocs
                )
                for nprocs in self.processors
            ]
            data.results[machine] = results
            data.series[machine] = [float(r.sim_events) for r in results]
        return data

    def _run_gadapt(self, experiment: Experiment) -> FigureData:
        """History-based g estimation (the paper's future-work idea)."""
        data = FigureData(experiment=experiment, processors=self.processors)
        series_spec = [
            ("target", "target", False),
            ("clogp", "clogp", False),
            ("clogp-adaptive-g", "clogp", True),
        ]
        for label, machine, adaptive in series_spec:
            results = [
                self.run_one(
                    experiment.app,
                    machine,
                    experiment.topology,
                    nprocs,
                    adaptive_g=adaptive,
                )
                for nprocs in self.processors
            ]
            data.results[label] = results
            data.series[label] = [r.metric("contention") for r in results]
        return data

    def _run_protocol(self, experiment: Experiment) -> FigureData:
        """Berkeley vs Illinois targets against the CLogP abstraction.

        The series is total network messages: the paper frames the
        claim in terms of network accesses, with CLogP's traffic as the
        minimum any invalidation protocol can achieve and "fancier"
        protocols approaching it from above.
        """
        data = FigureData(experiment=experiment, processors=self.processors)
        series_spec = [
            ("target-berkeley", "target", "berkeley"),
            ("target-illinois", "target", "illinois"),
            ("clogp", "clogp", "berkeley"),
        ]
        for label, machine, protocol in series_spec:
            results = [
                self.run_one(
                    experiment.app,
                    machine,
                    experiment.topology,
                    nprocs,
                    protocol=protocol,
                )
                for nprocs in self.processors
            ]
            data.results[label] = results
            data.series[label] = [float(r.messages) for r in results]
        return data

    def _run_ggap(self, experiment: Experiment) -> FigureData:
        """Section 7 g-gap relaxation: strict vs per-event-type gating."""
        data = FigureData(experiment=experiment, processors=self.processors)
        series_spec = [
            ("target", "target", False),
            ("clogp", "clogp", False),
            ("clogp-relaxed-g", "clogp", True),
        ]
        for label, machine, relaxed in series_spec:
            results = [
                self.run_one(
                    experiment.app,
                    machine,
                    experiment.topology,
                    nprocs,
                    g_per_event_type=relaxed,
                )
                for nprocs in self.processors
            ]
            data.results[label] = results
            data.series[label] = [r.metric("contention") for r in results]
        return data
