"""Sweep runner: executes the simulations behind each figure.

Several figures are different metrics of the *same* simulations (e.g.
Fig. 17 plots execution time and Fig. 19 the contention of the same
CG-on-mesh runs), so the runner memoizes completed runs.  Identity is
the :meth:`~repro.runspec.RunSpec.spec_digest` of each point's
canonical :class:`~repro.runspec.RunSpec` -- every field of the
configuration participates, so two points differing in *any* knob
(seed, barrier, fault rates, sanitizer level, ...) can never alias.

Execution is delegated to an
:class:`~repro.exec.backend.ExecutionBackend`: serial by default, or a
process pool (``jobs=N``) that runs the points of a batch in parallel
and streams them back as they complete.  An optional
:class:`~repro.exec.store.ResultStore` (``cache_dir=...``) persists
completed results across invocations, content-addressed by the same
digest.

Robustness
----------
Long sweeps must survive individual failing points (most interestingly
under fault injection, where a run can legitimately die with
:class:`~repro.errors.RetryLimitError`).  The backend retries a failing
run (``run_retries``) and then reports a structured
:class:`~repro.exec.backend.PointFailure` instead of aborting the
sweep; failed points surface as ``nan`` in the figure series.  With a
``checkpoint_path`` the runner journals every completed point (and
failure) to JSON after it finishes, and a fresh runner pointed at the
same file resumes without re-running completed points.  Checkpoints
carry a schema version: a file written by the old tuple-keyed format
(or any other schema) is rejected with a clear
:class:`~repro.errors.ConfigError` instead of silently resuming wrong
points.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.accounting import RunResult
from ..errors import ConfigError, ReproError
from ..exec.backend import (
    ExecutionBackend,
    PointFailure,
    PointOutcome,
    make_backend,
)
from ..exec.policy import RetryPolicy
from ..exec.store import ResultStore
from ..faults.config import FaultConfig
from ..runspec import RunSpec
from .registry import Experiment
from .workloads import processor_sweep

#: Version of the checkpoint JSON schema.  Version 1 (the retired
#: hand-maintained ``RunKey`` tuple keys) is detected and rejected.
CHECKPOINT_SCHEMA = 2

#: One figure series: display label, machine, metric, per-run kwargs.
SeriesSpec = Tuple[str, str, Callable[[RunResult], float], Dict[str, object]]


@dataclass
class FigureData:
    """The series behind one figure: metric value per (machine, p)."""

    experiment: Experiment
    processors: Tuple[int, ...]
    #: machine name -> list of metric values aligned with ``processors``
    #: (``nan`` marks a point whose simulation failed).
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: machine name -> list of the full results (same alignment; a
    #: failed point holds its :class:`PointFailure` instead).
    results: Dict[str, List[PointOutcome]] = field(default_factory=dict)
    #: Failures encountered while producing this figure.
    failures: List[PointFailure] = field(default_factory=list)

    def value(self, machine: str, nprocs: int) -> float:
        """Metric value of one point.

        :raises ConfigError: the figure has no such machine series or
            was not run at that processor count.
        """
        if machine not in self.series:
            raise ConfigError(
                f"figure {self.experiment.id!r} has no series for machine "
                f"{machine!r}; available: {sorted(self.series)}"
            )
        if nprocs not in self.processors:
            raise ConfigError(
                f"figure {self.experiment.id!r} was not run at p={nprocs}; "
                f"available processor counts: {list(self.processors)}"
            )
        return self.series[machine][self.processors.index(nprocs)]


class SweepRunner:
    """Runs and memoizes the processor sweeps for the experiments."""

    def __init__(
        self,
        preset: str = "default",
        processors: Optional[Sequence[int]] = None,
        seed: int = 12345,
        fault: Optional[FaultConfig] = None,
        run_retries: int = 1,
        checkpoint_path: Optional[Union[str, Path]] = None,
        max_events: Optional[int] = None,
        check: Optional[str] = None,
        digest: bool = False,
        jobs: int = 1,
        backend: Optional[ExecutionBackend] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        store: Optional[ResultStore] = None,
        deadline_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.preset = preset
        self.processors: Tuple[int, ...] = tuple(
            processors if processors is not None else processor_sweep(preset)
        )
        self.seed = seed
        #: Fault-injection configuration applied to every run (None ->
        #: the fault-free default).
        self.fault = fault
        #: How many times a failing run is re-attempted before being
        #: recorded as a :class:`PointFailure`.
        self.run_retries = run_retries
        #: Engine watchdog budget forwarded to every simulation.
        self.max_events = max_events
        #: Sanitizer level applied to every run (None -> the
        #: configuration default, i.e. ``REPRO_CHECK`` or off).
        self.check = check
        #: Attach the determinism-digest checker to every run.
        self.digest = digest
        #: Per-point wall-clock deadline forwarded to the backend.
        self.deadline_s = deadline_s
        #: Retry policy applied by the backend (None: derived from
        #: ``run_retries`` -- immediate transient-only re-attempts).
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy(max_retries=run_retries)
        )
        #: Execution backend (explicit instance wins over ``jobs``).
        self.backend: ExecutionBackend = (
            backend if backend is not None
            else make_backend(jobs, policy=self.retry_policy,
                              deadline_s=deadline_s)
        )
        # Supervised backends flush the checkpoint before every pool
        # rebuild, so a crash mid-recovery never loses streamed points.
        add_listener = getattr(self.backend, "add_rebuild_listener", None)
        if add_listener is not None:
            add_listener(self._save_checkpoint)
        #: Result store (explicit instance wins over ``cache_dir``;
        #: both None -> no cross-invocation caching).
        self.store: Optional[ResultStore] = (
            store if store is not None
            else ResultStore(cache_dir) if cache_dir is not None
            else None
        )
        #: Simulations actually executed by this runner (memo hits,
        #: store hits and resumed checkpoint points do not count).
        self.simulated = 0
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self._cache: Dict[str, RunResult] = {}
        self._failures: Dict[str, PointFailure] = {}
        #: Spec behind every memoized digest (checkpoint journaling).
        self._specs: Dict[str, RunSpec] = {}
        if self.checkpoint_path is not None and self.checkpoint_path.exists():
            self._load_checkpoint()

    def close(self) -> None:
        """Release backend workers (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- checkpointing -------------------------------------------------------------

    def _load_checkpoint(self) -> None:
        """Resume from a checkpoint written by an earlier sweep."""
        try:
            with open(self.checkpoint_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            version = data.get("version")
            if version != CHECKPOINT_SCHEMA:
                raise ConfigError(
                    f"checkpoint uses schema version {version!r}; this "
                    f"version writes schema {CHECKPOINT_SCHEMA} (version 1 "
                    "was keyed by the retired RunKey tuple) -- delete the "
                    "file or finish the sweep with the version that wrote it"
                )
            for key, entry in data.get("results", {}).items():
                spec = self._verified_spec(key, entry)
                self._cache[key] = RunResult.from_dict(entry["result"])
                self._specs[key] = spec
            for key, entry in data.get("failures", {}).items():
                spec = self._verified_spec(key, entry)
                self._failures[key] = PointFailure.from_dict(entry["failure"])
                self._specs[key] = spec
        except ConfigError as exc:
            raise ConfigError(
                f"cannot resume from checkpoint {self.checkpoint_path}: {exc}"
            ) from exc
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ConfigError(
                f"cannot resume from checkpoint {self.checkpoint_path}: "
                f"{exc}"
            ) from exc

    @staticmethod
    def _verified_spec(key: str, entry: Dict) -> RunSpec:
        """Rebuild one journaled spec, verifying its digest matches."""
        spec = RunSpec.from_dict(entry["spec"])
        if spec.spec_digest() != key:
            raise ConfigError(
                f"journaled spec for {key} re-hashes to "
                f"{spec.spec_digest()}; the checkpoint was written by a "
                "different configuration schema"
            )
        return spec

    def _save_checkpoint(self) -> None:
        """Atomically journal every completed point and failure."""
        if self.checkpoint_path is None:
            return
        data = {
            "version": CHECKPOINT_SCHEMA,
            "preset": self.preset,
            "seed": self.seed,
            "results": {
                key: {
                    "spec": self._specs[key].to_dict(),
                    "result": result.to_dict(),
                }
                for key, result in self._cache.items()
            },
            "failures": {
                key: {
                    "spec": self._specs[key].to_dict(),
                    "failure": failure.to_dict(),
                }
                for key, failure in self._failures.items()
            },
        }
        tmp = self.checkpoint_path.with_name(self.checkpoint_path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=1)
            # Flush user- and kernel-space buffers before the rename: a
            # crash mid-write must leave either the old checkpoint or
            # the new one, never a truncated file.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.checkpoint_path)

    @property
    def failures(self) -> List[PointFailure]:
        """Every point failure recorded so far."""
        return list(self._failures.values())

    # -- primitives ----------------------------------------------------------------

    def point_spec(
        self,
        app: str,
        machine: str,
        topology: str,
        nprocs: int,
        g_per_event_type: bool = False,
        adaptive_g: bool = False,
        protocol: str = "berkeley",
        barrier: str = "central",
    ) -> RunSpec:
        """The canonical spec of one sweep point."""
        return RunSpec.build(
            app=app,
            machine=machine,
            nprocs=nprocs,
            topology=topology,
            preset=self.preset,
            seed=self.seed,
            fault=self.fault,
            check=self.check,
            digest=self.digest,
            protocol=protocol,
            barrier=barrier,
            adaptive_g=adaptive_g,
            g_per_event_type=g_per_event_type,
            max_events=self.max_events,
        )

    def outcome_of(self, spec: RunSpec) -> Optional[PointOutcome]:
        """The memoized outcome of a spec, if it already ran."""
        key = spec.spec_digest()
        result = self._cache.get(key)
        if result is not None:
            return result
        return self._failures.get(key)

    def run_batch(self, specs: Sequence[RunSpec]) -> None:
        """Execute every not-yet-known spec of a batch.

        The batch is deduplicated by digest, then filtered against the
        in-memory memo (which includes resumed checkpoint points) and
        the result store; the remainder goes to the execution backend.
        Completed points stream back (in completion order under the
        process pool) and each is memoized, persisted to the store, and
        checkpointed the moment it finishes, so a crash mid-batch loses
        at most the in-flight points.
        """
        pending: List[RunSpec] = []
        seen: set = set()
        store_hit = False
        for spec in specs:
            key = spec.spec_digest()
            if key in self._cache or key in self._failures or key in seen:
                continue
            if self.store is not None:
                cached = self.store.get(spec)
                if cached is not None:
                    self._cache[key] = cached
                    self._specs[key] = spec
                    store_hit = True
                    continue
            seen.add(key)
            pending.append(spec)
        if store_hit:
            self._save_checkpoint()
        if not pending:
            return
        try:
            for spec, outcome in self.backend.run(pending, self.run_retries):
                key = spec.spec_digest()
                self._specs[key] = spec
                if isinstance(outcome, PointFailure):
                    self._failures[key] = outcome
                else:
                    self.simulated += 1
                    self._cache[key] = outcome
                    if self.store is not None:
                        self.store.put(spec, outcome)
                self._save_checkpoint()
        except KeyboardInterrupt:
            # Ctrl-C mid-batch: flush everything that streamed back, so
            # --resume after the interrupt re-runs only unfinished points.
            self._save_checkpoint()
            raise

    def run_point(
        self,
        app: str,
        machine: str,
        topology: str,
        nprocs: int,
        g_per_event_type: bool = False,
        adaptive_g: bool = False,
        protocol: str = "berkeley",
        barrier: str = "central",
    ) -> PointOutcome:
        """One memoized simulation with graceful failure handling.

        A failing run is retried ``run_retries`` times; if it still
        fails the point is recorded (and memoized, and checkpointed) as
        a :class:`PointFailure` so the rest of the sweep continues.
        """
        spec = self.point_spec(
            app, machine, topology, nprocs,
            g_per_event_type=g_per_event_type,
            adaptive_g=adaptive_g,
            protocol=protocol,
            barrier=barrier,
        )
        outcome = self.outcome_of(spec)
        if outcome is not None:
            return outcome
        self.run_batch([spec])
        outcome = self.outcome_of(spec)
        assert outcome is not None, f"backend dropped {spec.describe()}"
        return outcome

    def run_one(
        self,
        app: str,
        machine: str,
        topology: str,
        nprocs: int,
        g_per_event_type: bool = False,
        adaptive_g: bool = False,
        protocol: str = "berkeley",
        barrier: str = "central",
    ) -> RunResult:
        """One memoized simulation; raises if the point failed."""
        outcome = self.run_point(
            app, machine, topology, nprocs,
            g_per_event_type=g_per_event_type,
            adaptive_g=adaptive_g,
            protocol=protocol,
            barrier=barrier,
        )
        if isinstance(outcome, PointFailure):
            raise ReproError(f"sweep point failed: {outcome.summary()}")
        return outcome

    # -- figures --------------------------------------------------------------------

    def _series(
        self,
        data: FigureData,
        label: str,
        app: str,
        machine: str,
        topology: str,
        metric,
        **run_kwargs,
    ) -> None:
        """Fill one (label -> values) series, degrading failed points."""
        outcomes = [
            self.run_point(app, machine, topology, nprocs, **run_kwargs)
            for nprocs in self.processors
        ]
        data.results[label] = outcomes
        values: List[float] = []
        for outcome in outcomes:
            if isinstance(outcome, PointFailure):
                data.failures.append(outcome)
                values.append(math.nan)
            else:
                values.append(metric(outcome))
        data.series[label] = values

    def _experiment_series(self, experiment: Experiment) -> List[SeriesSpec]:
        """The (label, machine, metric, run-kwargs) series of a figure."""
        if experiment.metric == "simspeed":
            # Section 7 speed-of-simulation study: the metric series is
            # the host cost of each machine model, measured in simulator
            # events executed (wall seconds are also in the attached
            # results but are noisy on a shared host).
            return [
                (machine, machine, lambda r: float(r.sim_events), {})
                for machine in experiment.machines
            ]
        if experiment.metric == "ggap":
            # Section 7 g-gap relaxation: strict vs per-event-type gating.
            contention = lambda r: r.metric("contention")  # noqa: E731
            return [
                ("target", "target", contention, {}),
                ("clogp", "clogp", contention, {}),
                ("clogp-relaxed-g", "clogp", contention,
                 {"g_per_event_type": True}),
            ]
        if experiment.metric == "gadapt":
            # History-based g estimation (the paper's future-work idea).
            contention = lambda r: r.metric("contention")  # noqa: E731
            return [
                ("target", "target", contention, {}),
                ("clogp", "clogp", contention, {}),
                ("clogp-adaptive-g", "clogp", contention,
                 {"adaptive_g": True}),
            ]
        if experiment.metric == "protocol":
            # Berkeley vs Illinois targets against the CLogP
            # abstraction.  The series is total network messages: the
            # paper frames the claim in terms of network accesses, with
            # CLogP's traffic as the minimum any invalidation protocol
            # can achieve and "fancier" protocols approaching it from
            # above.
            messages = lambda r: float(r.messages)  # noqa: E731
            return [
                ("target-berkeley", "target", messages,
                 {"protocol": "berkeley"}),
                ("target-illinois", "target", messages,
                 {"protocol": "illinois"}),
                ("clogp", "clogp", messages, {"protocol": "berkeley"}),
            ]
        metric = lambda r: r.metric(experiment.metric)  # noqa: E731
        return [
            (machine, machine, metric, {})
            for machine in experiment.machines
        ]

    def experiment_specs(self, experiment: Experiment) -> List[RunSpec]:
        """Every point spec one experiment needs (with duplicates)."""
        return [
            self.point_spec(
                experiment.app, machine, experiment.topology, nprocs,
                **run_kwargs,
            )
            for (_label, machine, _metric, run_kwargs)
            in self._experiment_series(experiment)
            for nprocs in self.processors
        ]

    def prefetch(self, experiments: Sequence[Experiment]) -> None:
        """Batch-execute every point several experiments need.

        Collecting the specs of many figures into one backend batch
        maximizes worker utilization: with ``jobs=N`` the whole sweep
        keeps N simulations in flight instead of draining per figure.
        """
        specs: List[RunSpec] = []
        for experiment in experiments:
            specs.extend(self.experiment_specs(experiment))
        self.run_batch(specs)

    def run_experiment(self, experiment: Experiment) -> FigureData:
        """All series of one experiment."""
        self.prefetch([experiment])
        data = FigureData(experiment=experiment, processors=self.processors)
        for label, machine, metric, run_kwargs in (
                self._experiment_series(experiment)):
            self._series(
                data, label, experiment.app, machine, experiment.topology,
                metric, **run_kwargs,
            )
        return data
