"""Experiment harness: the paper's figures as runnable definitions.

Every figure of the evaluation section (Figs. 1-20), the Section 7
"speed of simulation" comparison, and the Section 7 g-gap relaxation
experiment are registered here with the workload, topology, metric and
machine set they need.  :class:`~repro.experiments.runner.SweepRunner`
executes the processor sweeps (sharing runs between figures that plot
different metrics of the same simulations) and
:mod:`~repro.experiments.report` renders the series the paper plots.
"""

from .registry import (
    EXPERIMENTS,
    Experiment,
    experiment_ids,
    get_experiment,
)
from .runner import FigureData, PointFailure, SweepRunner
from .report import render_figure, render_run_table

__all__ = [
    "PointFailure",
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "get_experiment",
    "FigureData",
    "SweepRunner",
    "render_figure",
    "render_run_table",
]
