"""Text rendering of experiment results.

The paper's figures are line plots of an overhead (or execution time)
against processor count, one curve per machine model.  We render the
same series as aligned text tables -- the form the benchmark harness
prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from ..core.accounting import RunResult
from .runner import FigureData

#: Units shown per metric.
_METRIC_UNITS = {
    "latency": "us (mean per-processor latency overhead)",
    "contention": "us (mean per-processor contention overhead)",
    "execution": "us (total execution time)",
    "simspeed": "simulator events executed",
    "ggap": "us (mean per-processor contention overhead)",
    "gadapt": "us (mean per-processor contention overhead)",
    "protocol": "network messages transported",
}


def render_figure(data: FigureData) -> str:
    """Render one figure's series as a text table."""
    experiment = data.experiment
    lines: List[str] = []
    lines.append(f"{experiment.id} ({experiment.paper_ref}): "
                 f"{experiment.description}")
    lines.append(f"  unit: {_METRIC_UNITS[experiment.metric]}")
    lines.append(f"  paper expectation: {experiment.expected}")
    header = "  {:18s}".format("machine \\ procs")
    for nprocs in data.processors:
        header += f"{nprocs:>14d}"
    lines.append(header)
    for machine, values in data.series.items():
        row = f"  {machine:18s}"
        for value in values:
            if math.isnan(value):
                # The simulation behind this point failed (see below).
                row += f"{'--':>14s}"
            else:
                row += f"{value:14.1f}"
        lines.append(row)
    lines.extend(f"  FAILED {failure.summary()}" for failure in data.failures)
    sanitizer = _sanitizer_line(data)
    if sanitizer is not None:
        lines.append(sanitizer)
    return "\n".join(lines)


def _sanitizer_line(data: FigureData) -> Optional[str]:
    """Aggregate sanitizer summary over all runs behind a figure.

    Returns None when no run carried a check report (sanitizer off).
    """
    reports = [
        outcome.check_report
        for outcomes in data.results.values()
        for outcome in outcomes
        if isinstance(outcome, RunResult) and outcome.check_report is not None
    ]
    if not reports:
        return None
    total = sum(report.total_checks for report in reports)
    violated = sum(1 for report in reports if not report.ok)
    levels = sorted({report.level for report in reports})
    line = (
        f"  sanitizer: {len(reports)} run(s) at level "
        f"{'/'.join(levels)}, {total} checks, "
        f"{'all ok' if violated == 0 else f'{violated} run(s) VIOLATED'}"
    )
    return line


def render_run_table(results: Iterable[RunResult]) -> str:
    """Render a flat table of run summaries."""
    lines = [
        "  {:9s} {:7s} {:5s} {:>4s} {:>14s} {:>12s} {:>12s} {:>10s} {:>4s}".format(
            "app", "machine", "topo", "p", "exec_us", "latency_us",
            "contention_us", "messages", "ok",
        )
    ]
    lines.extend(
        "  {:9s} {:7s} {:5s} {:>4d} {:>14.1f} {:>12.1f} {:>12.1f} "
        "{:>10d} {:>4s}".format(
            result.app,
            result.machine,
            result.topology,
            result.nprocs,
            result.total_us,
            result.mean_latency_us,
            result.mean_contention_us,
            result.messages,
            "yes" if result.verified else "NO",
        )
        for result in results
    )
    return "\n".join(lines)
