"""Workload presets for the experiment sweeps.

The paper ran full NAS/SPLASH inputs for 8-10 hours per data point; we
scale inputs so a whole figure regenerates in seconds while preserving
each application's communication *structure* (see DESIGN.md, Section 2).
Two presets exist: ``"default"`` for the EXPERIMENTS.md numbers and
``"quick"`` for CI/benchmarks.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Application constructor kwargs per preset.
APP_PARAMS: Dict[str, Dict[str, Dict[str, object]]] = {
    "default": {
        "ep": {"pairs": 32_768},
        "is": {"keys": 4_096, "buckets": 512, "iterations": 2},
        "cg": {"n": 512, "nnz_per_row": 6, "iterations": 4},
        "fft": {"points": 2_048},
        "cholesky": {"n": 192, "density": 0.10},
        "jacobi": {"n": 4_096, "sweeps": 4},
        "mg": {"n": 1_023, "cycles": 2, "smoothing": 1},
    },
    "quick": {
        "ep": {"pairs": 8_192},
        "is": {"keys": 1_024, "buckets": 128, "iterations": 1},
        "cg": {"n": 128, "nnz_per_row": 5, "iterations": 2},
        "fft": {"points": 512},
        "cholesky": {"n": 96, "density": 0.10},
        "jacobi": {"n": 1_024, "sweeps": 2},
        "mg": {"n": 511, "cycles": 1, "smoothing": 1},
    },
}

#: Processor sweeps per preset (powers of two, as in the paper).
PROCESSOR_SWEEPS: Dict[str, Tuple[int, ...]] = {
    "default": (1, 2, 4, 8, 16, 32),
    "quick": (1, 4, 16),
}


def app_params(app: str, preset: str = "default") -> Dict[str, object]:
    """Constructor kwargs for an application under a preset."""
    try:
        per_app = APP_PARAMS[preset]
    except KeyError:
        raise KeyError(
            f"unknown preset {preset!r}; known: {sorted(APP_PARAMS)}"
        ) from None
    return dict(per_app.get(app, {}))


def processor_sweep(preset: str = "default") -> Tuple[int, ...]:
    """Processor counts swept under a preset."""
    return PROCESSOR_SWEEPS[preset]
