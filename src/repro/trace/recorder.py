"""Recording the operation streams of an execution-driven run."""

from __future__ import annotations

from typing import Iterator

from ..apps.base import Application
from ..config import SystemConfig
from ..core import ops
from ..core.runner import simulate_full
from ..errors import ReproError
from .tracefile import Trace, serialize_op


class RecordingApplication(Application):
    """Wraps an application, teeing every yielded operation into a trace.

    The wrapped application still computes its real answer (``verify``
    delegates), so a recording run is a normal execution-driven run
    plus capture.
    """

    strict_verify = False  # delegate strictness decisions to the runner

    def __init__(self, inner: Application):
        super().__init__(inner.nprocs)
        self.inner = inner
        self.name = inner.name
        self._streams = [[] for _ in range(inner.nprocs)]
        self._space = None

    def _setup(self, space, streams) -> None:
        self.inner.setup(space, streams)
        self._space = space

    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        stream = self._streams[pid]
        for op in self.inner.proc_main(pid):
            stream.append(serialize_op(op))
            yield op

    def verify(self) -> bool:
        return self.inner.verify()

    def build_trace(self, recorded_on: str) -> Trace:
        """Assemble the trace after the recording run completed."""
        if self._space is None:
            raise ReproError("build_trace called before the recording run")
        regions = [
            (region.name, region.count, region.elem_bytes,
             region.distribution, region.nblocks)
            for region in self._space.regions
            if not region.name.startswith("__sync_")
        ]
        return Trace(
            app=self.inner.name,
            nprocs=self.nprocs,
            recorded_on=recorded_on,
            regions=regions,
            streams=self._streams,
        )


def record_trace(
    app: Application,
    machine_name: str,
    config: SystemConfig,
):
    """Run ``app`` on a machine while recording; return (result, trace).

    The run is a full execution-driven simulation -- the trace captures
    whatever dynamic scheduling that machine's timing produced.
    """
    recorder = RecordingApplication(app)
    result, _machine = simulate_full(recorder, machine_name, config)
    return result, recorder.build_trace(machine_name)
