"""Trace container and (de)serialization.

A trace stores, per processor, the exact operation stream one run
produced, plus the shared-memory region layout needed to make the
recorded addresses meaningful again at replay time.

The on-disk format is a single JSON document.  Operations serialize to
compact tagged lists (``["r", addr]``, ``["rr", addr, count, stride]``,
...), keeping files small and diffable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Union

from ..core import ops
from ..errors import ReproError

#: Serialized operation: a tagged list.
SerializedOp = List[Any]

#: Region descriptor: (name, count, elem_bytes, distribution, nblocks).
RegionSpec = Tuple[str, int, int, Union[str, Tuple[str, int]], int]

_FORMAT_VERSION = 1


def serialize_op(op: ops.Op) -> SerializedOp:
    """Encode one operation as a tagged list.

    Values are coerced to plain ``int`` -- applications routinely hand
    over numpy integers, which the JSON encoder rejects.
    """
    kind = type(op)
    if kind is ops.Read:
        return ["r", int(op.addr)]
    if kind is ops.Write:
        return ["w", int(op.addr)]
    if kind is ops.ReadRange:
        return ["rr", int(op.addr), int(op.count), int(op.stride)]
    if kind is ops.WriteRange:
        return ["wr", int(op.addr), int(op.count), int(op.stride)]
    if kind is ops.ReadMany:
        return ["rm", [int(a) for a in op.addrs]]
    if kind is ops.WriteMany:
        return ["wm", [int(a) for a in op.addrs]]
    if kind is ops.Compute:
        return ["c", int(op.cycles)]
    if kind is ops.Lock:
        return ["l", int(op.lock_id)]
    if kind is ops.Unlock:
        return ["u", int(op.lock_id)]
    if kind is ops.Barrier:
        return ["b", int(op.barrier_id)]
    if kind is ops.SetFlag:
        return ["sf", int(op.addr), int(op.value)]
    if kind is ops.WaitFlag:
        return ["wf", int(op.addr), int(op.value), op.cmp]
    if kind is ops.Send:
        return ["s", int(op.dst), int(op.nbytes), int(op.tag)]
    if kind is ops.Recv:
        return ["rv", int(op.src), int(op.tag)]
    raise ReproError(f"cannot serialize operation {op!r}")


def deserialize_op(data: SerializedOp) -> ops.Op:
    """Decode one tagged list back into an operation."""
    tag = data[0]
    if tag == "r":
        return ops.Read(data[1])
    if tag == "w":
        return ops.Write(data[1])
    if tag == "rr":
        return ops.ReadRange(data[1], data[2], data[3])
    if tag == "wr":
        return ops.WriteRange(data[1], data[2], data[3])
    if tag == "rm":
        return ops.ReadMany(data[1])
    if tag == "wm":
        return ops.WriteMany(data[1])
    if tag == "c":
        return ops.Compute(data[1])
    if tag == "l":
        return ops.Lock(data[1])
    if tag == "u":
        return ops.Unlock(data[1])
    if tag == "b":
        return ops.Barrier(data[1])
    if tag == "sf":
        return ops.SetFlag(data[1], data[2])
    if tag == "wf":
        return ops.WaitFlag(data[1], data[2], data[3])
    if tag == "s":
        return ops.Send(data[1], data[2], data[3])
    if tag == "rv":
        return ops.Recv(data[1], data[2])
    raise ReproError(f"unknown operation tag {tag!r}")


@dataclass
class Trace:
    """One recorded run: layout + per-processor operation streams."""

    app: str
    nprocs: int
    #: Machine the trace was recorded on (traces replayed elsewhere are
    #: approximations; see the subpackage docstring).
    recorded_on: str
    regions: List[RegionSpec] = field(default_factory=list)
    #: streams[pid] is the list of serialized operations of processor pid.
    streams: List[List[SerializedOp]] = field(default_factory=list)

    @property
    def total_operations(self) -> int:
        return sum(len(stream) for stream in self.streams)

    def operations(self, pid: int) -> List[ops.Op]:
        """Deserialized operation stream of one processor."""
        return [deserialize_op(item) for item in self.streams[pid]]

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": _FORMAT_VERSION,
            "app": self.app,
            "nprocs": self.nprocs,
            "recorded_on": self.recorded_on,
            "regions": [list(region) for region in self.regions],
            "streams": self.streams,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Trace":
        if data.get("format") != _FORMAT_VERSION:
            raise ReproError(
                f"unsupported trace format {data.get('format')!r}"
            )
        regions: List[RegionSpec] = []
        for name, count, elem, dist, nblocks in data["regions"]:
            if isinstance(dist, list):
                dist = (dist[0], dist[1])
            regions.append((name, count, elem, dist, nblocks))
        return cls(
            app=data["app"],
            nprocs=data["nprocs"],
            recorded_on=data["recorded_on"],
            regions=regions,
            streams=data["streams"],
        )


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace.to_json(), handle)


def load_trace(path: str) -> Trace:
    """Read a trace from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return Trace.from_json(json.load(handle))
