"""Trace recording and trace-driven replay.

Execution-driven simulation (the paper's mode, and this package's
default) interleaves application logic with simulated time, so dynamic
behaviour -- lock grant order, CHOLESKY's task queue -- responds to the
machine being simulated.  *Trace-driven* simulation instead records the
reference stream once and replays it against other machine models:
cheaper, but the stream can no longer react to timing, which is exactly
the distortion the literature warns about (and why this reproduction is
execution-driven).

This subpackage provides both halves so the trade-off can be studied:

* :class:`~repro.trace.recorder.RecordingApplication` wraps any
  application and captures the per-processor operation streams of one
  (execution-driven) run,
* :class:`~repro.trace.replay.TraceApplication` replays a recorded
  :class:`~repro.trace.tracefile.Trace` on any machine model,
* :mod:`~repro.trace.tracefile` saves/loads traces as JSON.

Replaying a trace on the machine that recorded it reproduces the run
exactly (the engine is deterministic); replaying it elsewhere is the
classic trace-driven approximation -- and for *dynamically scheduled*
applications it can fail outright: CHOLESKY's recorded condition-flag
waits assume the recording machine's lock-acquisition order, and under
different timing a frozen wait may reference a flag value nobody will
set again, deadlocking the replay
(:class:`~repro.errors.DeadlockError`).  That failure is itself a
result: it is why the paper's methodology -- and this package's default
mode -- is execution-driven.
"""

from .recorder import RecordingApplication, record_trace
from .replay import TraceApplication
from .tracefile import Trace, load_trace, save_trace

__all__ = [
    "RecordingApplication",
    "record_trace",
    "TraceApplication",
    "Trace",
    "save_trace",
    "load_trace",
]
