"""Trace-driven replay."""

from __future__ import annotations

from typing import Iterator

from ..apps.base import Application
from ..core import ops
from ..errors import ReproError
from .tracefile import Trace, deserialize_op


class TraceApplication(Application):
    """Replays a recorded :class:`~repro.trace.tracefile.Trace`.

    The application re-allocates the recorded shared-memory regions in
    the recorded order (so every recorded address resolves to the same
    block and home) and then feeds each processor its recorded
    operation stream verbatim.

    Replayed on the machine/configuration that recorded the trace, the
    simulation reproduces the original timing exactly.  Replayed on a
    different machine it is the classic trace-driven approximation: the
    reference stream is frozen, so dynamic effects (who wins a lock,
    which processor pops which task) no longer adapt to the timing of
    the machine under study.
    """

    strict_verify = False

    def __init__(self, trace: Trace):
        super().__init__(trace.nprocs)
        self.trace = trace
        self.name = f"{trace.app}@trace"
        self.replayed_ops = 0

    def _setup(self, space, streams) -> None:
        for name, count, elem_bytes, distribution, nblocks in (
                self.trace.regions):
            space.alloc(
                name, count, elem_bytes, distribution,
                exact_nblocks=nblocks,
            )

    def proc_main(self, pid: int) -> Iterator[ops.Op]:
        if not 0 <= pid < len(self.trace.streams):
            raise ReproError(f"trace has no stream for processor {pid}")
        for item in self.trace.streams[pid]:
            self.replayed_ops += 1
            yield deserialize_op(item)

    def verify(self) -> bool:
        """A replay is faithful if every recorded operation was issued."""
        return self.replayed_ops == self.trace.total_operations
