"""Network traffic statistics.

The paper explains the ``g`` parameter's pessimism by *communication
locality*: ``g`` is derived assuming every message crosses the
machine's bisection, and applications whose traffic stays local violate
that assumption.  :class:`FabricStats` turns a finished target-machine
run into the numbers behind that argument:

* the fraction of messages (and bytes) that actually crossed the
  bisection,
* mean hops per message vs the uniform-traffic mean,
* per-link utilization, including the hottest links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

from .fabric import Fabric
from .topology import LinkId, Topology


def bisection_cut(topology: Topology) -> Set[LinkId]:
    """The directed links crossing the canonical bisection.

    The halves are the node-id halves (``id < nprocs/2`` vs the rest),
    which matches the cuts used by ``bisection_links`` for all three
    topologies: the highest dimension of the cube, the column split of
    the mesh, and any balanced split of the full network.
    """
    half = topology.nprocs // 2
    if topology.name == "mesh":
        # The mesh's minimal cut splits columns, not node-id halves.
        rows, cols = topology.rows, topology.cols
        left = {
            row * cols + col
            for row in range(rows)
            for col in range(cols // 2)
        }
        return {
            (src, dst)
            for src, dst in topology.links()
            if (src in left) != (dst in left)
        }
    return {
        (src, dst)
        for src, dst in topology.links()
        if (src < half) != (dst < half)
    }


@dataclass(frozen=True)
class FabricStats:
    """Aggregate traffic statistics of one run."""

    messages: int
    bytes_transported: int
    #: Messages whose route crossed the bisection.
    bisection_messages: int
    #: Mean hops per message.
    mean_hops: float
    #: Mean hops of uniform all-pairs traffic on this topology.
    uniform_mean_hops: float
    #: (src, dst, busy_ns) of the busiest links.
    hottest_links: Tuple[Tuple[int, int, int], ...]

    @property
    def bisection_fraction(self) -> float:
        """Fraction of messages that crossed the bisection.

        The bisection-bandwidth ``g`` derivation implicitly assumes
        this is ~0.5 (uniform traffic); communication-local
        applications sit far below, which is the paper's explanation
        for g's pessimism.
        """
        if self.messages == 0:
            return 0.0
        return self.bisection_messages / self.messages

    @property
    def locality_factor(self) -> float:
        """Observed mean hops relative to uniform traffic (<= 1 is local)."""
        if self.uniform_mean_hops == 0:
            return 1.0
        return self.mean_hops / self.uniform_mean_hops


def collect_stats(fabric: Fabric, top_links: int = 5) -> FabricStats:
    """Compute :class:`FabricStats` from a fabric after a run.

    Per-message routes are not stored (that would be enormous); instead
    the per-link counters are combined: the number of bisection
    crossings is the message count summed over cut links, and mean hops
    is total (link, message) incidences over messages.
    """
    topology = fabric.topology
    cut = bisection_cut(topology)
    crossings = sum(
        link.messages for link in fabric.links
        if (link.src, link.dst) in cut
    )
    total_incidences = sum(link.messages for link in fabric.links)
    messages = fabric.messages
    mean_hops = total_incidences / messages if messages else 0.0
    nprocs = topology.nprocs
    if nprocs > 1:
        uniform = sum(
            topology.hops(src, dst)
            for src in range(nprocs)
            for dst in range(nprocs)
            if src != dst
        ) / (nprocs * (nprocs - 1))
    else:
        uniform = 0.0
    hottest = tuple(
        (link.src, link.dst, link.busy_ns)
        for link in fabric.busiest_links(top_links)
    )
    return FabricStats(
        messages=messages,
        bytes_transported=fabric.bytes_transported,
        bisection_messages=crossings,
        mean_hops=mean_hops,
        uniform_mean_hops=uniform,
        hottest_links=hottest,
    )


def stats_report(stats: FabricStats) -> str:
    """Human-readable rendering of :class:`FabricStats`."""
    lines = [
        f"messages            : {stats.messages}",
        f"bytes               : {stats.bytes_transported}",
        f"bisection crossings : {stats.bisection_messages} "
        f"({stats.bisection_fraction:.1%} of messages)",
        f"mean hops           : {stats.mean_hops:.2f} "
        f"(uniform traffic: {stats.uniform_mean_hops:.2f}, "
        f"locality factor {stats.locality_factor:.2f})",
        "hottest links       : "
        + ", ".join(
            f"{src}->{dst} ({busy_ns / 1000:.0f}us busy)"
            for src, dst, busy_ns in stats.hottest_links
        ),
    ]
    return "\n".join(lines)
