"""Interconnection-network substrate.

Implements the paper's three topologies (fully connected, binary
hypercube, 2-D mesh) over serial unidirectional 20 MB/s links, a
circuit-switched wormhole-style transport with per-message separation of
*latency* (contention-free transmission time) from *contention* (time
spent waiting for links), and the bisection-bandwidth computation from
which the LogP ``g`` parameter is derived.
"""

from .topology import Topology, make_topology
from .full import FullyConnected
from .hypercube import Hypercube
from .mesh import Mesh2D
from .fabric import Fabric, TransferResult
from .message import Message
from .stats import FabricStats, bisection_cut, collect_stats, stats_report

__all__ = [
    "Topology",
    "make_topology",
    "FullyConnected",
    "Hypercube",
    "Mesh2D",
    "Fabric",
    "TransferResult",
    "Message",
    "FabricStats",
    "bisection_cut",
    "collect_stats",
    "stats_report",
]
