"""Circuit-switched network transport for the target machine.

The paper's target networks are circuit-switched with wormhole routing,
serial 20 MB/s links, and negligible switching delay.  We model a
message as follows:

1. compute the deterministic route (dimension-ordered, so in-order link
   acquisition is deadlock-free),
2. acquire every link along the route in path order, *holding* links
   already acquired (this is the circuit being built; head-of-line
   blocking while holding upstream links is exactly the wormhole
   behaviour that creates tree contention),
3. once the circuit is complete, transmit for ``nbytes x 50 ns`` --
   with negligible switching delay the pipeline is limited purely by
   the serial-link bandwidth, so the contention-free time of a message
   is independent of hop count (which is why the paper's latency
   figures barely differ across topologies),
4. release all links.

For every message we return the split the paper's SPASM profiler keeps:
*latency* = contention-free transmission time, *contention* = everything
else the message spent in the network (waiting for links).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engine.core import Simulator
from ..errors import TopologyError
from .link import Link
from .message import Message
from .topology import LinkId, Topology


class TransferResult:
    """Timing decomposition of one completed message transfer.

    A plain ``__slots__`` value class (one is allocated per transported
    message, so its constructor is hot):

    * ``latency_ns`` -- contention-free transmission time (charged to
      latency overhead),
    * ``contention_ns`` -- time spent waiting for links (charged to
      contention overhead),
    * ``delivered`` -- did the payload arrive intact?  Always True on a
      fault-free fabric; with fault injection a dropped or corrupted
      message still occupies the network but delivers nothing,
    * ``fault_ns`` -- fault-injected time (stalls, extra delays) spent
      by this transfer, excluded from both latency and contention so
      the reliable-delivery layer can charge it to retry overhead,
    * ``retry_ns`` -- reliable-delivery recovery time (set by the retry
      layer only),
    * ``attempts`` -- transmission attempts this result summarizes.
    """

    __slots__ = ("latency_ns", "contention_ns", "delivered", "fault_ns",
                 "retry_ns", "attempts")

    def __init__(self, latency_ns: int, contention_ns: int,
                 delivered: bool = True, fault_ns: int = 0,
                 retry_ns: int = 0, attempts: int = 1):
        self.latency_ns = latency_ns
        self.contention_ns = contention_ns
        self.delivered = delivered
        self.fault_ns = fault_ns
        self.retry_ns = retry_ns
        self.attempts = attempts

    @property
    def total_ns(self) -> int:
        return self.latency_ns + self.contention_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransferResult(latency_ns={self.latency_ns}, "
            f"contention_ns={self.contention_ns}, "
            f"delivered={self.delivered}, fault_ns={self.fault_ns}, "
            f"retry_ns={self.retry_ns}, attempts={self.attempts})"
        )


class Fabric:
    """The set of links of one topology plus the transfer protocol."""

    def __init__(self, sim: Simulator, topology: Topology, ns_per_byte: int,
                 switch_delay_ns: int = 0, injector=None, checkers=None):
        self.sim = sim
        self.topology = topology
        self.ns_per_byte = ns_per_byte
        #: Per-hop switching delay (0 per the paper's assumption).
        self.switch_delay_ns = switch_delay_ns
        #: Optional :class:`~repro.faults.injector.FaultInjector`.
        #: When None (the default) the fabric is perfectly reliable and
        #: follows the exact pre-fault code path.
        self.injector = injector
        #: Sanitizer message hooks (empty tuple when unchecked).
        self._message_hooks = (
            checkers.message_hooks if checkers is not None else ()
        )
        self._links: Dict[LinkId, Link] = {
            link_id: Link(sim, *link_id) for link_id in topology.links()
        }
        #: Deterministic routes resolved to Link tuples, pre-filled for
        #: every (src, dst) pair at construction.  A flat
        #: ``src * nprocs + dst`` table: the per-message lookup is a
        #: list index instead of a tuple-keyed dict probe, and the hot
        #: paths (including the C flat-op stepper) index it with no
        #: None check.  The diagonal stays None -- every caller handles
        #: src == dst before routing.
        self._nprocs = topology.nprocs
        nprocs = self._nprocs
        links = self._links
        self._route_links: List[Optional[Tuple[Link, ...]]] = (
            [None] * (nprocs * nprocs)
        )
        for src in range(nprocs):
            base = src * nprocs
            for dst in range(nprocs):
                if src != dst:
                    self._route_links[base + dst] = tuple(
                        links[link_id]
                        for link_id in topology.route(src, dst)
                    )
        if injector is not None:
            for window in injector.fault.link_failures:
                link = self._links.get((window.src, window.dst))
                if link is not None:
                    link.fail_windows = link.fail_windows + (window,)
        #: True when the lean transfer path is active (fault-free,
        #: hook-free, zero switching delay).  Machines key their own
        #: fast paths off this flag (see ``TargetMachine._net_lat``).
        self.is_plain = (
            injector is None and switch_delay_ns == 0
            and not self._message_hooks
        )
        if self.is_plain:
            # Shadow the general transfer protocol with the lean path.
            # The event sequence (one grant per link, one transmission
            # timeout) is identical; only per-message host work differs.
            self.transmit = self._transmit_plain
        #: Total messages transported.
        self.messages = 0
        #: Total payload bytes transported.
        self.bytes_transported = 0
        #: Sum of latency portions over all messages.
        self.total_latency_ns = 0
        #: Sum of contention portions over all messages.
        self.total_contention_ns = 0

    def link(self, src: int, dst: int) -> Link:
        """The link between two adjacent nodes (raises if absent)."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise TopologyError(
                f"no link {src}->{dst} in {self.topology.name}"
            ) from None

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    def transmission_ns(self, nbytes: int) -> int:
        """Contention-free time for a message of ``nbytes``."""
        return nbytes * self.ns_per_byte

    def transmit(self, message: Message):
        """Generator: move ``message`` across the network.

        Returns a :class:`TransferResult`.  A message to self costs
        nothing (local memory is not behind the network).
        """
        if message.src == message.dst:
            return TransferResult(0, 0)
        sim = self.sim
        injector = self.injector
        start = sim.now
        fault_ns = 0
        fate = None
        if injector is not None:
            # A stalled sender cannot inject until its window closes.
            stall = injector.stall_ns(message.src, sim.now)
            if stall:
                fault_ns += stall
                yield stall
            fate = injector.fate(message.src, message.dst, sim.now)
        pre_circuit_fault = fault_ns
        path = self._route(message.src, message.dst)
        held: List[Link] = []
        switch_ns = self.switch_delay_ns
        # Build the circuit: acquire links in path order, paying the
        # per-hop switching delay while the circuit extends.
        for link in path:
            yield link.request()
            if injector is not None and link.is_failed(sim.now):
                # The circuit head reached a dead link: the worm is
                # lost and the partial circuit torn down.
                link.release()
                for upstream in held:
                    upstream.release()
                injector.window_drops += 1
                self.messages += 1
                if self._message_hooks:
                    for hook in self._message_hooks:
                        hook(sim.now, message.src, message.dst,
                             message.kind, message.nbytes, False)
                return TransferResult(
                    latency_ns=0,
                    contention_ns=max(0, sim.now - start - fault_ns),
                    delivered=False,
                    fault_ns=fault_ns,
                )
            held.append(link)
            if switch_ns:
                yield switch_ns
        circuit_done = sim.now
        transmit_ns = self.transmission_ns(message.nbytes)
        yield transmit_ns
        for link in held:
            link.record_transfer(message.nbytes, sim.now - circuit_done)
            link.release()
        if fate is not None:
            # Fault-injected delay plus a stalled receiver's ejection
            # wait; both are recovery time, not latency or contention.
            post = fate.delay_ns + injector.stall_ns(message.dst, sim.now)
            if post:
                fault_ns += post
                yield post
        # Contention-free, the message would have taken the switching
        # delays plus the serial transmission; anything beyond that was
        # queueing for links.
        latency = transmit_ns + switch_ns * len(path)
        contention = (circuit_done - start - pre_circuit_fault) - \
            switch_ns * len(path)
        self.messages += 1
        self.bytes_transported += message.nbytes
        self.total_latency_ns += latency
        self.total_contention_ns += contention
        delivered = fate is None or fate.delivered
        if self._message_hooks:
            for hook in self._message_hooks:
                hook(sim.now, message.src, message.dst,
                     message.kind, message.nbytes, delivered)
        return TransferResult(
            latency_ns=latency,
            contention_ns=contention,
            delivered=delivered,
            fault_ns=fault_ns,
        )

    def _route(self, src: int, dst: int) -> Tuple[Link, ...]:
        """The deterministic route as a pre-resolved tuple of Links."""
        return self._route_links[src * self._nprocs + dst]

    def _transmit_plain(self, message: Message):
        """Generator: ``transmit`` specialized for the fault-free,
        hook-free, zero-switch-delay fabric (the common case).

        Yields the exact event sequence of the general path -- one link
        grant per hop in path order, then one transmission timeout -- so
        simulated results are bit-identical; it only strips per-message
        host-side work (injector branches, hook dispatch, held-list
        bookkeeping).
        """
        src = message.src
        dst = message.dst
        if src == dst:
            return TransferResult(0, 0)
        sim = self.sim
        start = sim._now
        path = self._route_links[src * self._nprocs + dst]
        for link in path:
            # Kernel-resolved grant: the engine inlines try_acquire on
            # the free case and parks a packed int waiter on the busy
            # case -- no Event allocation either way on the SoA kernel.
            yield link
        circuit_done = sim._now
        nbytes = message.nbytes
        transmit_ns = nbytes * self.ns_per_byte
        yield transmit_ns
        held_ns = sim._now - circuit_done
        for link in path:
            link.messages += 1
            link.bytes_carried += nbytes
            link.busy_ns += held_ns
            link.release()
        contention = circuit_done - start
        self.messages += 1
        self.bytes_transported += nbytes
        self.total_latency_ns += transmit_ns
        self.total_contention_ns += contention
        return TransferResult(transmit_ns, contention)

    def transmit_fast(self, src: int, dst: int, nbytes: int):
        """Generator: ``_transmit_plain`` without the Message envelope.

        Returns the latency (the transmission time) as a plain int --
        no :class:`Message`, no :class:`TransferResult` -- for callers
        on the fault-free fast path that only need the latency split
        (the contention split is observable as elapsed minus returned).
        Yields the exact event sequence of :meth:`transmit`, and updates
        the same fabric and per-link statistics, so simulated results
        and instrumentation are bit-identical with the general path.
        Only valid when :attr:`is_plain` is true.
        """
        if src == dst:
            return 0
        sim = self.sim
        start = sim._now
        path = self._route_links[src * self._nprocs + dst]
        for link in path:
            # Kernel-resolved grant (see Resource): no Event allocation
            # on the SoA kernel, free or busy.
            yield link
        circuit_done = sim._now
        transmit_ns = nbytes * self.ns_per_byte
        yield transmit_ns
        held_ns = sim._now - circuit_done
        for link in path:
            link.messages += 1
            link.bytes_carried += nbytes
            link.busy_ns += held_ns
            link.release()
        self.messages += 1
        self.bytes_transported += nbytes
        self.total_latency_ns += transmit_ns
        self.total_contention_ns += circuit_done - start
        return transmit_ns

    def settle_fast(self, path: Tuple[Link, ...], nbytes: int,
                    transmit_ns: int, start: int, circuit_done: int,
                    end: int) -> None:
        """Book one completed fast-path transfer (see ``transmit_fast``).

        Callers that inline the acquire/transmit yields into their own
        generator frame (the target machine's plain transactions) call
        this once per message to apply the identical per-link and
        fabric-level accounting.
        """
        held_ns = end - circuit_done
        for link in path:
            link.messages += 1
            link.bytes_carried += nbytes
            link.busy_ns += held_ns
            if link._waiters:
                link.release()
            else:
                # Uncontended release inlined (in_use >= 1 is
                # guaranteed: this frame acquired the link above).
                link.in_use -= 1
        self.messages += 1
        self.bytes_transported += nbytes
        self.total_latency_ns += transmit_ns
        self.total_contention_ns += circuit_done - start

    def post_fast(self, src: int, dst: int, nbytes: int,
                  name: str = "post"):
        """Fire-and-forget ``transmit_fast`` (plain fabric only).

        On a flat-capable kernel the transfer is posted as a *flat op*
        -- a tag-dispatched table entry the kernel steps through with
        no generator frame (see ``SoaSimulator.flat_transmit``); on the
        object kernel it spawns the generator twin.  Both produce the
        identical event sequence and accounting.  Returns the joinable
        shell event.
        """
        sim = self.sim
        if sim._flat_capable and src != dst:
            path = self._route_links[src * self._nprocs + dst]
            tx = nbytes * self.ns_per_byte
            return sim.flat_transmit(self, ((path, nbytes, tx),), value=tx)
        return sim.spawn(self.transmit_fast(src, dst, nbytes), name=name)

    def post(self, message: Message, name: Optional[str] = None):
        """Fire-and-forget transmit (used for evicted-block writebacks).

        The message still occupies real links -- it just is not on any
        processor's critical path.  Returns the spawned process, which
        callers may join if they need completion.
        """
        return self.sim.spawn(
            self.transmit(message), name=name or f"post:{message.kind}"
        )

    # -- instrumentation -------------------------------------------------------

    def busiest_links(self, count: int = 5) -> List[Link]:
        """The ``count`` links with the highest busy time."""
        return sorted(self._links.values(), key=lambda l: -l.busy_ns)[:count]

    def total_link_wait_ns(self) -> int:
        """Aggregate time messages spent queued on links."""
        return sum(link.total_wait_ns for link in self._links.values())
