"""Fully connected topology.

Two links (one per direction) between every pair of processors, as in
the paper's "full" platform.  Every route is a single hop, so the only
link sharing -- and therefore the only source of contention -- is at the
endpoints themselves.
"""

from __future__ import annotations

from typing import List

from .topology import LinkId, Topology, register_topology


@register_topology
class FullyConnected(Topology):
    """Complete graph over ``nprocs`` nodes with unidirectional links."""

    name = "full"

    def links(self) -> List[LinkId]:
        return [
            (a, b)
            for a in range(self.nprocs)
            for b in range(self.nprocs)
            if a != b
        ]

    def neighbors(self, node: int) -> List[int]:
        self.check_node(node)
        return [n for n in range(self.nprocs) if n != node]

    def route(self, src: int, dst: int) -> List[LinkId]:
        self.check_node(src)
        self.check_node(dst)
        if src == dst:
            return []
        return [(src, dst)]

    def bisection_links(self) -> int:
        # Each of the nprocs/2 nodes in one half has a direct link to
        # each of the nprocs/2 nodes in the other half.
        half = self.nprocs // 2
        return half * half

    def diameter(self) -> int:
        return 0 if self.nprocs == 1 else 1
