"""Abstract interconnect topology and the topology registry.

A topology knows its directed links, how to route between nodes
(deterministically and deadlock-free), and the size of its bisection --
the quantity the paper (following Culler et al.) uses to derive the
LogP ``g`` parameter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple, Type

from ..errors import ConfigError, TopologyError

#: A directed link is identified by the (source node, destination node)
#: pair of the nodes it connects.
LinkId = Tuple[int, int]


class Topology(ABC):
    """Base class for interconnect topologies.

    Node identifiers are ``0 .. nprocs-1``.  All topologies here use
    unidirectional links; a "bidirectional" connection is two links.
    """

    #: Registry name, e.g. ``"mesh"``.
    name: str = "abstract"

    def __init__(self, nprocs: int):
        if nprocs < 1 or nprocs & (nprocs - 1):
            raise TopologyError(
                f"node count must be a power of two, got {nprocs}"
            )
        self.nprocs = nprocs

    # -- structure ------------------------------------------------------------

    @abstractmethod
    def links(self) -> List[LinkId]:
        """All directed links, as (source, destination) node pairs."""

    @abstractmethod
    def neighbors(self, node: int) -> List[int]:
        """Nodes directly connected to ``node`` (outgoing)."""

    @abstractmethod
    def route(self, src: int, dst: int) -> List[LinkId]:
        """Directed links traversed from ``src`` to ``dst``, in order.

        Routing is deterministic and chosen so that acquiring links in
        path order can never deadlock (dimension-ordered for the cube
        and mesh; trivial for the full network).  ``route(n, n)`` is the
        empty path.
        """

    @abstractmethod
    def bisection_links(self) -> int:
        """Number of links crossing the bisection *in one direction*.

        The bisection splits the machine into two halves of
        ``nprocs / 2`` nodes each along the topology's narrowest cut.
        For ``nprocs == 1`` there is no bisection and this returns 0.
        """

    @abstractmethod
    def diameter(self) -> int:
        """Maximum hop count between any pair of nodes."""

    # -- helpers ---------------------------------------------------------------

    def check_node(self, node: int) -> None:
        """Raise :class:`TopologyError` for an out-of-range node id."""
        if not 0 <= node < self.nprocs:
            raise TopologyError(
                f"node {node} out of range for {self.name}({self.nprocs})"
            )

    def hops(self, src: int, dst: int) -> int:
        """Hop count along the deterministic route."""
        return len(self.route(src, dst))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} nprocs={self.nprocs}>"


_REGISTRY: Dict[str, Type[Topology]] = {}


def register_topology(cls: Type[Topology]) -> Type[Topology]:
    """Class decorator adding a topology to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def make_topology(name: str, nprocs: int) -> Topology:
    """Instantiate a registered topology by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown topology {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(nprocs)


def topology_names() -> List[str]:
    """Names of all registered topologies."""
    return sorted(_REGISTRY)
