"""Message descriptor used by the network fabric and machine models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    """One network message.

    ``kind`` is a free-form tag used only for instrumentation
    (e.g. ``"read_req"``, ``"data"``, ``"inv"``, ``"ack"``, ``"wb"``).
    """

    src: int
    dst: int
    nbytes: int
    kind: str = "data"

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"message size must be positive, got {self.nbytes}")
        if self.src < 0 or self.dst < 0:
            raise ValueError("node ids must be non-negative")
