"""Message descriptor used by the network fabric and machine models."""

from __future__ import annotations


class Message:
    """One network message.

    ``kind`` is a free-form tag used only for instrumentation
    (e.g. ``"read_req"``, ``"data"``, ``"inv"``, ``"ack"``, ``"wb"``).

    A plain ``__slots__`` value class rather than a dataclass: one is
    allocated per simulated network message, which puts its constructor
    on the simulator's hottest path.
    """

    __slots__ = ("src", "dst", "nbytes", "kind")

    def __init__(self, src: int, dst: int, nbytes: int, kind: str = "data"):
        if nbytes <= 0:
            raise ValueError(f"message size must be positive, got {nbytes}")
        if src < 0 or dst < 0:
            raise ValueError("node ids must be non-negative")
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(src={self.src}, dst={self.dst}, "
            f"nbytes={self.nbytes}, kind={self.kind!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.src == other.src and self.dst == other.dst
            and self.nbytes == other.nbytes and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.src, self.dst, self.nbytes, self.kind))
