"""A serial unidirectional network link.

A thin wrapper over :class:`~repro.engine.resource.Resource` carrying
per-link instrumentation: how many messages and bytes crossed it and
how long it was busy.  Links have capacity 1 -- the paper's networks use
serial (1-bit-wide) links, and circuit switching holds the whole link
for the duration of a transfer.
"""

from __future__ import annotations

from ..engine.core import Simulator
from ..engine.resource import Resource


class Link(Resource):
    """One directed link between two adjacent nodes."""

    __slots__ = ("src", "dst", "messages", "bytes_carried", "busy_ns",
                 "fail_windows")

    def __init__(self, sim: Simulator, src: int, dst: int):
        super().__init__(sim, capacity=1, name=f"link({src}->{dst})")
        self.src = src
        self.dst = dst
        #: Messages that traversed this link.
        self.messages = 0
        #: Total payload bytes carried.
        self.bytes_carried = 0
        #: Cumulative time the link was held by a circuit.
        self.busy_ns = 0
        #: Transient failure windows assigned by fault injection
        #: (tuple of :class:`~repro.faults.config.LinkFailure`).
        self.fail_windows = ()

    def record_transfer(self, nbytes: int, held_ns: int) -> None:
        """Account one completed transfer over this link."""
        self.messages += 1
        self.bytes_carried += nbytes
        self.busy_ns += held_ns

    def is_failed(self, now: int) -> bool:
        """True while a transient failure window covers ``now``."""
        if not self.fail_windows:
            return False
        return any(window.covers(now) for window in self.fail_windows)

    def utilization(self, horizon_ns: int) -> float:
        """Fraction of ``horizon_ns`` the link was busy."""
        if horizon_ns <= 0:
            return 0.0
        return self.busy_ns / horizon_ns
