"""Binary hypercube topology with e-cube (dimension-ordered) routing.

Each node connects to the ``log2(p)`` nodes whose ids differ in exactly
one bit; each edge carries one link per direction.  Routing corrects
address bits from least- to most-significant.  Because every message
acquires links in strictly increasing dimension order, the link
dependency graph is acyclic and circuit-switched transmission cannot
deadlock.
"""

from __future__ import annotations

from typing import List

from .topology import LinkId, Topology, register_topology


@register_topology
class Hypercube(Topology):
    """Binary ``log2(nprocs)``-cube."""

    name = "cube"

    def __init__(self, nprocs: int):
        super().__init__(nprocs)
        self.dimensions = nprocs.bit_length() - 1

    def links(self) -> List[LinkId]:
        result: List[LinkId] = []
        for node in range(self.nprocs):
            for dim in range(self.dimensions):
                other = node ^ (1 << dim)
                result.append((node, other))
        return result

    def neighbors(self, node: int) -> List[int]:
        self.check_node(node)
        return [node ^ (1 << dim) for dim in range(self.dimensions)]

    def route(self, src: int, dst: int) -> List[LinkId]:
        self.check_node(src)
        self.check_node(dst)
        path: List[LinkId] = []
        current = src
        difference = src ^ dst
        dim = 0
        while difference:
            if difference & 1:
                nxt = current ^ (1 << dim)
                path.append((current, nxt))
                current = nxt
            difference >>= 1
            dim += 1
        return path

    def bisection_links(self) -> int:
        # Cutting the highest dimension leaves p/2 edges crossing,
        # i.e. p/2 links in each direction.
        return self.nprocs // 2

    def diameter(self) -> int:
        return self.dimensions
