"""2-D mesh topology with X-Y (dimension-ordered) routing.

Modeled on the Intel Touchstone Delta as in the paper: nodes in the
interior have North/South/East/West neighbors; edges and corners have
three and two.  Following Section 5, a machine with an even power of two
processors is square; an odd power of two gets twice as many columns as
rows (e.g. 32 processors -> 4 x 8).

X-Y routing moves a message fully along the row (X/column direction)
first, then along the column (Y/row direction).  Acquiring links in that
fixed order keeps the channel-dependency graph acyclic, so the
circuit-switched fabric cannot deadlock.
"""

from __future__ import annotations

from typing import List, Tuple

from .topology import LinkId, Topology, register_topology


def mesh_shape(nprocs: int) -> Tuple[int, int]:
    """(rows, cols) for a mesh of ``nprocs`` nodes per the paper's rule."""
    log2 = nprocs.bit_length() - 1
    if log2 % 2 == 0:
        rows = 1 << (log2 // 2)
        cols = rows
    else:
        rows = 1 << (log2 // 2)
        cols = rows * 2
    return rows, cols


@register_topology
class Mesh2D(Topology):
    """2-D mesh; node id = ``row * cols + col``."""

    name = "mesh"

    def __init__(self, nprocs: int):
        super().__init__(nprocs)
        self.rows, self.cols = mesh_shape(nprocs)

    # -- coordinate helpers ----------------------------------------------------

    def coordinates(self, node: int) -> Tuple[int, int]:
        """(row, col) of a node id."""
        self.check_node(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        """Node id at (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"({row}, {col}) outside {self.rows}x{self.cols} mesh")
        return row * self.cols + col

    # -- Topology interface -----------------------------------------------------

    def links(self) -> List[LinkId]:
        result: List[LinkId] = []
        for row in range(self.rows):
            for col in range(self.cols):
                node = self.node_at(row, col)
                if col + 1 < self.cols:
                    east = self.node_at(row, col + 1)
                    result.append((node, east))
                    result.append((east, node))
                if row + 1 < self.rows:
                    south = self.node_at(row + 1, col)
                    result.append((node, south))
                    result.append((south, node))
        return result

    def neighbors(self, node: int) -> List[int]:
        row, col = self.coordinates(node)
        result: List[int] = []
        if col > 0:
            result.append(self.node_at(row, col - 1))
        if col + 1 < self.cols:
            result.append(self.node_at(row, col + 1))
        if row > 0:
            result.append(self.node_at(row - 1, col))
        if row + 1 < self.rows:
            result.append(self.node_at(row + 1, col))
        return result

    def route(self, src: int, dst: int) -> List[LinkId]:
        self.check_node(src)
        self.check_node(dst)
        src_row, src_col = divmod(src, self.cols)
        dst_row, dst_col = divmod(dst, self.cols)
        path: List[LinkId] = []
        row, col = src_row, src_col
        # X first: move along the row to the destination column.
        step = 1 if dst_col > col else -1
        while col != dst_col:
            nxt = self.node_at(row, col + step)
            path.append((self.node_at(row, col), nxt))
            col += step
        # Then Y: move along the column to the destination row.
        step = 1 if dst_row > row else -1
        while row != dst_row:
            nxt = self.node_at(row + step, col)
            path.append((self.node_at(row, col), nxt))
            row += step
        return path

    def bisection_links(self) -> int:
        if self.nprocs == 1:
            return 0
        # Cut vertically between the two column halves: one East-West
        # link pair per row crosses, i.e. `rows` links per direction.
        return self.rows

    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)
