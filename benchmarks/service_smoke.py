"""CI smoke test for ``repro serve``: the full daemon lifecycle once.

Starts a real daemon subprocess, performs one cold and one warm request
(asserting the warm body is byte-identical to the cold one and both
match a serial in-process reference), hits every health endpoint, sends
SIGTERM, and asserts a clean drain with exit code 0.  Small enough for
a CI job, end-to-end enough to catch a broken wire format, a dead
dispatcher, or a drain that hangs.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_service import Client, DaemonProcess, reference_bodies  # noqa: E402
from repro import RunSpec                                          # noqa: E402


def main() -> int:
    import tempfile

    build = {"app": "fft", "machine": "target", "nprocs": 4,
             "preset": "quick"}
    digest = RunSpec.build(**build).spec_digest()
    reference = reference_bodies([build])[digest]

    with tempfile.TemporaryDirectory(prefix="repro-smoke-store-") as cache:
        daemon = DaemonProcess(cache)
        client = Client(daemon.host, daemon.port)
        try:
            status, ready = client.get_json("/readyz")
            assert status == 200 and ready["ready"], f"not ready: {ready}"

            status, cold, source = client.post("/run", {"build": build})
            assert status == 200, f"cold request: {status}"
            assert source == "simulated", source
            assert cold == reference, "cold body diverged from reference"

            status, warm, source = client.post("/run", {"build": build})
            assert status == 200, f"warm request: {status}"
            assert source in ("memo", "store"), source
            assert warm == cold, "warm body diverged from cold body"

            status, health = client.get_json("/healthz")
            assert (status, health) == (200, {"status": "ok"})
            status, stats = client.get_json("/stats")
            assert status == 200
            assert stats["simulated"] == 1, stats["simulated"]
            assert stats["warm_hits"] == 1, stats["warm_hits"]
        finally:
            client.close()
            exit_code = daemon.terminate_and_wait()
        assert exit_code == 0, f"drain exited {exit_code}"

    print("service smoke: cold==warm==serial reference; "
          "healthz/readyz/stats ok; SIGTERM drained with exit 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
