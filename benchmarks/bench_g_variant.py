"""Section 7: the g-gap relaxation experiment.

The paper: "we conducted a simple experiment for FFT on the cube
allowing for the g gap only between identical communication events
(such as sends for instance).  The resulting contention overhead was
much closer to the real network."

``SystemConfig(g_per_event_type=True)`` enables exactly that relaxation
in the LogP network model; this benchmark regenerates the comparison.
"""

from __future__ import annotations

import pytest

from conftest import PRESET, regenerate
from repro import SystemConfig, simulate
from repro.apps import make_app
from repro.experiments.workloads import app_params


def test_ggap_relaxation(runner, benchmark):
    data = regenerate(runner, "exp-ggap")
    index = len(data.processors) - 1
    target = data.series["target"][index]
    strict = data.series["clogp"][index]
    relaxed = data.series["clogp-relaxed-g"][index]
    # The relaxation removes send/receive coupling: contention drops
    # and lands closer to the detailed network's.
    assert relaxed < strict
    assert abs(relaxed - target) < abs(strict - target)

    def once():
        nprocs = data.processors[index]
        config = SystemConfig(
            processors=nprocs, topology="cube", g_per_event_type=True
        )
        instance = make_app("fft", nprocs, **app_params("fft", PRESET))
        return simulate(instance, "clogp", config)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    assert result.verified


def test_relaxation_helps_at_every_point(runner, benchmark):
    data = regenerate(runner, "exp-ggap")
    for index, nprocs in enumerate(data.processors):
        if nprocs == 1:
            continue
        assert data.series["clogp-relaxed-g"][index] <= (
            data.series["clogp"][index]
        ), nprocs

    nprocs = data.processors[-1]

    def once():
        config = SystemConfig(processors=nprocs, topology="cube")
        instance = make_app("fft", nprocs, **app_params("fft", PRESET))
        return simulate(instance, "clogp", config)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    assert result.verified
