"""Recovery overhead of the supervised execution tier.

The supervisor's whole job is paying a bounded, measurable cost for
surviving host faults.  This benchmark quantifies that cost on a quick
figure sweep under ``--jobs 2``:

* **baseline** -- the supervised pool with no injected faults: what
  supervision itself costs over the bare pool (windowed submission,
  host-side deadline polling);
* **kill** -- the same sweep while one worker is SIGKILLed mid-run:
  the price of a pool rebuild plus the resubmitted in-flight points;
* **stall** -- the same sweep with one point stalled past its
  per-point deadline: the price of a deadline expiry and the in-worker
  retry.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_chaos.py
    PYTHONPATH=src python benchmarks/bench_chaos.py --rounds 5 --jobs 4

Every scenario asserts the sweep still completed with zero point
failures and series bit-identical to an undisturbed run, so a perf
number is only ever reported for a *correct* recovery.

This file is also collected by pytest (``bench_*.py``) when invoked
explicitly; the test wrapper checks the scenarios run and stay
bit-identical, it does not gate on timing.
"""

from __future__ import annotations

import argparse
import functools
import sys
import time
from typing import Dict, Optional, Tuple

FIGURE = "fig01"
PRESET = "quick"
ROUNDS = 3
#: Per-point deadline for the stall scenario; the injected stall sleeps
#: far past it, so the measured overhead is ~one deadline expiry.
DEADLINE_S = 2.0


def _fingerprint(runner, figure: str):
    from repro.experiments import get_experiment

    data = runner.run_experiment(get_experiment(figure))
    return data.series, len(data.failures)


def _run_supervised(jobs: int, figure: str,
                    plan: Optional[object] = None,
                    deadline_s: Optional[float] = None):
    """One supervised sweep; returns (series, failures, stats, wall)."""
    from repro.chaos import ChaosMonkey, chaos_task
    from repro.exec import RetryPolicy, SupervisedPoolBackend
    from repro.experiments import SweepRunner

    kwargs = {}
    if plan is not None:
        kwargs["task_fn"] = functools.partial(chaos_task, plan)
        kwargs["observer"] = ChaosMonkey(plan)
    backend = SupervisedPoolBackend(
        jobs,
        policy=RetryPolicy(max_retries=2, base_delay_s=0.05),
        deadline_s=deadline_s,
        **kwargs,
    )
    start = time.perf_counter()
    with SweepRunner(preset=PRESET, backend=backend) as runner:
        series, failures = _fingerprint(runner, figure)
    wall = time.perf_counter() - start
    return series, failures, backend.stats(), wall


def _stall_digest(figure: str) -> str:
    from repro.experiments import SweepRunner, get_experiment

    with SweepRunner(preset=PRESET) as planner:
        specs = planner.experiment_specs(get_experiment(figure))
    digests = list(dict.fromkeys(spec.spec_digest() for spec in specs))
    return digests[len(digests) // 2]


def measure(jobs: int, figure: str, rounds: int) -> Dict[str, Dict]:
    """Best-of-N wall time per scenario, with correctness asserted."""
    from repro.chaos import ChaosPlan

    scenarios: Dict[str, Dict] = {}
    plans: Tuple[Tuple[str, Optional[ChaosPlan], Optional[float]], ...] = (
        ("baseline", None, None),
        ("kill", ChaosPlan(kill_at=(2,)), None),
        ("stall", ChaosPlan(stall_digest=_stall_digest(figure),
                            stall_s=60.0), DEADLINE_S),
    )
    reference = None
    for name, plan, deadline_s in plans:
        best = None
        stats = None
        for _ in range(rounds):
            series, failures, stats, wall = _run_supervised(
                jobs, figure, plan=plan, deadline_s=deadline_s
            )
            assert failures == 0, f"{name}: {failures} point failure(s)"
            if reference is None:
                reference = series
            assert series == reference, f"{name}: series diverged"
            best = wall if best is None else min(best, wall)
        scenarios[name] = {"wall_seconds": round(best, 3), **stats}
    return scenarios


def report(scenarios: Dict[str, Dict], jobs: int) -> None:
    base = scenarios["baseline"]["wall_seconds"]
    print(f"supervised {FIGURE} sweep, preset={PRESET}, jobs={jobs} "
          f"(best-of-N wall seconds):")
    for name, stats in scenarios.items():
        overhead = stats["wall_seconds"] - base
        print(f"  {name:<9} {stats['wall_seconds']:7.3f}s"
              f"  (+{max(overhead, 0.0):.3f}s vs baseline,"
              f" rebuilds={stats['rebuilds']},"
              f" degraded={bool(stats['degraded'])})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure supervised-pool recovery overhead")
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool workers (default 2)")
    parser.add_argument("--figure", default=FIGURE,
                        help=f"figure to sweep (default {FIGURE})")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help=f"rounds per scenario, best kept "
                             f"(default {ROUNDS})")
    args = parser.parse_args(argv)
    report(measure(args.jobs, args.figure, args.rounds), args.jobs)
    return 0


# -- pytest wrapper ------------------------------------------------------------------


def test_recovery_scenarios_stay_bit_identical():
    """One round per scenario: recovery must not move a series value."""
    scenarios = measure(jobs=2, figure=FIGURE, rounds=1)
    assert set(scenarios) == {"baseline", "kill", "stall"}
    assert scenarios["kill"]["rebuilds"] >= 1
    assert all(s["wall_seconds"] > 0 for s in scenarios.values())


if __name__ == "__main__":
    sys.exit(main())
