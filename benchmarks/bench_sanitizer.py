"""Cost of the runtime sanitizer (``repro.checkers``).

The sanitizer's design contract is that checking is *passive*: hooks
observe the simulation but never schedule events, draw randomness, or
mutate state.  Two consequences are measured here on the acceptance
workload (Jacobi, 16 processors):

* ``--check=off`` leaves only dormant ``if hooks:`` branches in the
  hot paths, so an unchecked run must cost essentially the same as the
  pre-sanitizer simulator (<5% hook overhead budget), and
* every level must produce bit-identical results -- the overhead
  buckets, message counts, and final time may not move by one ns when
  checkers are attached.

pytest-benchmark times the off/basic/strict levels; the relative
overhead of each level versus ``off`` is printed for the record kept in
DESIGN.md section 8.
"""

from __future__ import annotations

import time

import pytest

from repro import SystemConfig, make_app, simulate

#: The acceptance workload: Jacobi on 16 processors.
APP = "jacobi"
NPROCS = 16
PARAMS = {"n": 512, "sweeps": 2}

LEVELS = ("off", "basic", "strict")


def _run(check: str):
    config = SystemConfig(processors=NPROCS, topology="full", check=check)
    instance = make_app(APP, NPROCS, **PARAMS)
    return simulate(instance, "target", config)


@pytest.fixture(scope="module")
def level_times():
    """Median-of-3 wall time per check level, shared across tests."""
    times = {}
    for check in LEVELS:
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            _run(check)
            samples.append(time.perf_counter() - start)
        times[check] = sorted(samples)[1]
    return times


@pytest.mark.parametrize("check", LEVELS)
def test_sanitizer_levels(benchmark, check):
    result = benchmark.pedantic(lambda: _run(check), rounds=3, iterations=1)
    assert result.verified
    checks = (result.check_report.total_checks
              if result.check_report is not None else 0)
    print(
        f"\n  {APP} p={NPROCS} check={check:6s}: "
        f"{result.sim_events} engine events, {checks} checks, "
        f"{result.wall_seconds:.3f}s wall"
    )


def test_levels_are_bit_identical(level_times):
    """The passivity contract: checking never perturbs the simulation."""
    outcomes = {}
    for check in LEVELS:
        data = _run(check).to_dict()
        data.pop("wall_seconds")
        data.pop("check_report")
        outcomes[check] = data
    assert outcomes["off"] == outcomes["basic"] == outcomes["strict"]


def test_report_relative_overhead(level_times):
    """Print each level's cost relative to ``--check=off``.

    The <5% acceptance budget is for the dormant hook branches left in
    the hot paths when checking is off.  That baseline (the simulator
    with no hook code at all) no longer exists in the tree, so the
    budget is enforced structurally instead: ``--check=off`` attaches
    zero hooks (asserted in tests/test_checkers.py), leaving one falsy
    tuple test per event -- far below measurement noise here.
    """
    off = level_times["off"]
    print(f"\n  {APP} p={NPROCS}, wall time relative to --check=off:")
    for check in LEVELS:
        ratio = level_times[check] / off
        print(f"    {check:6s}: {level_times[check]:.3f}s ({ratio:5.2f}x)")
    # Sanity ceiling, deliberately loose for noisy CI hosts: the full
    # strict sweep may be expensive, but not pathological.
    assert level_times["strict"] < 25 * off
