"""Figures 1-5: latency overhead on the fully connected network.

Regenerates the five latency-overhead sweeps (one per application) and
checks the paper's qualitative result: the CLogP curve tracks the
target while the cache-less LogP machine sits far above (about 4x for
FFT, whose 8-byte items pack 4 to a cache block).
"""

from __future__ import annotations

import pytest

from conftest import PRESET, regenerate
from repro import SystemConfig, simulate
from repro.apps import make_app
from repro.experiments.workloads import app_params


def _bench_point(benchmark, app: str, machine: str, topology: str,
                 nprocs: int):
    """Time one representative simulation of the figure's sweep."""

    def once():
        config = SystemConfig(processors=nprocs, topology=topology)
        instance = make_app(app, nprocs, **app_params(app, PRESET))
        return simulate(instance, machine, config)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    assert result.verified


def _assert_latency_shape(data, logp_factor=2.0):
    """CLogP ~ target; LogP well above, at every multi-processor point."""
    for index, nprocs in enumerate(data.processors):
        if nprocs == 1:
            continue
        target = data.series["target"][index]
        clogp = data.series["clogp"][index]
        logp = data.series["logp"][index]
        if target < 1.0:
            continue
        assert 0.3 * target <= clogp <= 3.0 * target, (nprocs, target, clogp)
        assert logp >= logp_factor * max(clogp, 1.0), (nprocs, logp, clogp)


@pytest.mark.parametrize(
    "experiment_id,app",
    [
        ("fig01", "fft"),
        ("fig02", "cg"),
        ("fig03", "ep"),
        ("fig04", "is"),
        ("fig05", "cholesky"),
    ],
)
def test_latency_figures(runner, benchmark, experiment_id, app):
    data = regenerate(runner, experiment_id)
    _assert_latency_shape(data)
    _bench_point(benchmark, app, "target", "full",
                 data.processors[len(data.processors) // 2])


def test_fig01_fft_logp_is_roughly_4x(runner, benchmark):
    """The spatial-locality factor: 4 items per 32-byte block."""
    data = regenerate(runner, "fig01")
    index = len(data.processors) - 1
    clogp = data.series["clogp"][index]
    logp = data.series["logp"][index]
    assert 2.5 * clogp <= logp <= 8.0 * clogp
    _bench_point(benchmark, "fft", "logp", "full",
                 data.processors[index])
