"""Parallel sweep throughput: serial vs the process-pool backend.

One figure sweep is dozens of independent simulations, so the
process-pool backend should approach linear speedup until the worker
count passes the core count.  This benchmark runs the full quick ``all``
sweep (every experiment in EXPERIMENTS.md) under 1, 2, and 4 workers,
times each configuration with pytest-benchmark, checks the parallel
series against the serial ones point for point, and prints the measured
speedups for the record kept in DESIGN.md section 9.

On a single-core host the pool pays fork-and-pickle overhead with no
compute to hide it, so speedups below 1x there are expected and not a
regression; the acceptance target (>=2x at 4 workers) applies to a
4-core box.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import EXPERIMENTS, SweepRunner, get_experiment

JOB_COUNTS = (1, 2, 4)


def _sweep(jobs: int):
    """The quick ``all`` sweep: every experiment, one fresh runner."""
    with SweepRunner(preset="quick", jobs=jobs) as runner:
        runner.prefetch(get_experiment(exp_id) for exp_id in EXPERIMENTS)
        return {
            exp_id: runner.run_experiment(get_experiment(exp_id)).series
            for exp_id in EXPERIMENTS
        }


@pytest.fixture(scope="module")
def serial_series():
    return _sweep(jobs=1)


@pytest.fixture(scope="module")
def job_times():
    """Median-of-3 wall time per worker count, shared across tests."""
    times = {}
    for jobs in JOB_COUNTS:
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            _sweep(jobs)
            samples.append(time.perf_counter() - start)
        times[jobs] = sorted(samples)[1]
    return times


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_parallel_sweep(benchmark, jobs, serial_series):
    series = benchmark.pedantic(lambda: _sweep(jobs), rounds=3, iterations=1)
    # Parallel execution must not move a single series value.
    assert series == serial_series


def test_report_speedups(job_times, capsys):
    base = job_times[1]
    with capsys.disabled():
        print()
        print("quick `all` sweep, serial vs process pool:")
        for jobs in JOB_COUNTS:
            speedup = base / job_times[jobs]
            print(f"  jobs={jobs}: {job_times[jobs]:.2f}s "
                  f"({speedup:.2f}x vs serial)")
    assert all(t > 0 for t in job_times.values())
