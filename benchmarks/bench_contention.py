"""Figures 6-11 and 19-20: contention overhead.

Regenerates the contention sweeps and checks the paper's qualitative
results: the bisection-bandwidth-derived ``g`` makes the CLogP machine
*pessimistic* relative to the target; the pessimism grows as network
connectivity drops (full -> cube -> mesh) and is extreme for EP, whose
communication is local; and on the mesh the cache-less LogP machine's
contention explodes (Figs. 19-20), which is what bends its execution
curves in Figs. 17-18.
"""

from __future__ import annotations

import pytest

from conftest import PRESET, regenerate
from repro import SystemConfig, simulate
from repro.apps import make_app
from repro.experiments.workloads import app_params


def _bench_point(benchmark, app, machine, topology, nprocs):
    def once():
        config = SystemConfig(processors=nprocs, topology=topology)
        instance = make_app(app, nprocs, **app_params(app, PRESET))
        return simulate(instance, machine, config)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    assert result.verified


def _clogp_pessimistic(data, at_index=-1):
    target = data.series["target"][at_index]
    clogp = data.series["clogp"][at_index]
    assert clogp >= target, (target, clogp)
    return clogp - target


@pytest.mark.parametrize(
    "experiment_id,app,topology",
    [
        ("fig06", "is", "full"),
        ("fig08", "fft", "cube"),
        ("fig09", "cholesky", "full"),
    ],
)
def test_contention_pessimism(runner, benchmark, experiment_id, app,
                              topology):
    data = regenerate(runner, experiment_id)
    _clogp_pessimistic(data)
    _bench_point(benchmark, app, "clogp", topology, data.processors[-1])


def test_fig06_fig07_pessimism_grows_on_mesh(runner, benchmark):
    full = regenerate(runner, "fig06")
    mesh = regenerate(runner, "fig07")
    assert _clogp_pessimistic(mesh) > _clogp_pessimistic(full)
    _bench_point(benchmark, "is", "clogp", "mesh", mesh.processors[-1])


@pytest.mark.parametrize(
    "experiment_id,topology", [("fig10", "full"), ("fig11", "mesh")]
)
def test_ep_contention_disparity(runner, benchmark, experiment_id, topology):
    """Figs. 10-11: EP's communication locality defeats the g estimate."""
    data = regenerate(runner, experiment_id)
    index = len(data.processors) - 1
    target = data.series["target"][index]
    clogp = data.series["clogp"][index]
    assert clogp > 2.0 * max(target, 0.5), (target, clogp)
    _bench_point(benchmark, "ep", "clogp", topology, data.processors[-1])


@pytest.mark.parametrize(
    "experiment_id,app", [("fig19", "cg"), ("fig20", "cholesky")]
)
def test_logp_mesh_contention_explosion(runner, benchmark, experiment_id,
                                        app):
    """Figs. 19-20: the LogP machine's mesh contention dwarfs both
    cached machines (it is what deforms Figs. 17-18)."""
    data = regenerate(runner, experiment_id)
    index = len(data.processors) - 1
    target = data.series["target"][index]
    logp = data.series["logp"][index]
    assert logp > 3.0 * max(target, 1.0), (target, logp)
    _bench_point(benchmark, app, "logp", "mesh", data.processors[-1])
