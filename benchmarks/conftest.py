"""Shared infrastructure for the benchmark harness.

Each ``bench_*`` file regenerates one group of the paper's figures: it
runs the processor sweeps behind the figures, prints the same series the
paper plots (machine curves vs processor count), and uses
pytest-benchmark to time one representative simulation per figure so
simulator performance regressions are visible too.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_PRESET=default`` for the full EXPERIMENTS.md workloads
(minutes); the default ``bench`` preset uses mid-sized workloads and a
reduced sweep so the whole harness completes in tens of seconds.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import SweepRunner, get_experiment, render_figure
from repro.experiments.workloads import APP_PARAMS, PROCESSOR_SWEEPS

# A mid-sized preset used only by the benchmark harness.
APP_PARAMS.setdefault(
    "bench",
    {
        "ep": {"pairs": 16_384},
        "is": {"keys": 2_048, "buckets": 256, "iterations": 2},
        "cg": {"n": 256, "nnz_per_row": 6, "iterations": 3},
        "fft": {"points": 1_024},
        "cholesky": {"n": 128, "density": 0.10},
    },
)
PROCESSOR_SWEEPS.setdefault("bench", (1, 2, 4, 8, 16))

PRESET = os.environ.get("REPRO_BENCH_PRESET", "bench")


@pytest.fixture(scope="session")
def runner() -> SweepRunner:
    """One memoizing sweep runner shared by every benchmark."""
    return SweepRunner(preset=PRESET)


def regenerate(runner: SweepRunner, experiment_id: str):
    """Run one experiment's sweep and print its series."""
    data = runner.run_experiment(get_experiment(experiment_id))
    print()
    print(render_figure(data))
    return data
