"""Ablations of the design choices DESIGN.md calls out.

* control-message size: the target sends 8-byte coherence control
  messages while the LogP abstraction charges everything at the
  32-byte ``L`` -- the pessimism the paper attributes to L.  Forcing
  the target's control messages to 32 bytes removes most of the
  CLogP/target latency gap, confirming the attribution;
* coherence protocol: Berkeley vs Illinois/MESI (exp-proto) -- the
  "fancier protocol" claim;
* history-based g (exp-gadapt) -- the paper's Section 7 future work;
* cache size: the paper (citing Rothberg/Singh/Gupta) uses 64 KB
  caches because they hold the working sets; shrinking the cache must
  increase target traffic, and CLogP (sharing the same cache model)
  must follow it -- the locality abstraction is not an artifact of one
  cache geometry.
"""

from __future__ import annotations

import pytest

from conftest import PRESET, regenerate
from repro import SystemConfig, simulate
from repro.apps import make_app
from repro.experiments.workloads import app_params, processor_sweep


def _run(app, machine, nprocs, **config_overrides):
    overrides = {"topology": "full", **config_overrides}
    config = SystemConfig(processors=nprocs, **overrides)
    instance = make_app(app, nprocs, **app_params(app, PRESET))
    return simulate(instance, machine, config)


@pytest.fixture(scope="module")
def nprocs():
    return processor_sweep(PRESET)[-1]


def test_control_message_size_explains_latency_gap(benchmark, nprocs):
    """With 32-byte control messages the target's latency overhead
    rises toward CLogP's uniform-L estimate."""
    small = _run("cg", "target", nprocs)
    clogp = _run("cg", "clogp", nprocs)
    big = benchmark.pedantic(
        lambda: _run("cg", "target", nprocs, control_message_bytes=32),
        rounds=1, iterations=1,
    )
    print(
        f"\n  latency us: target(8B ctrl)={small.mean_latency_us:.0f} "
        f"target(32B ctrl)={big.mean_latency_us:.0f} "
        f"clogp={clogp.mean_latency_us:.0f}"
    )
    assert big.mean_latency_us > small.mean_latency_us
    # CLogP charges every message at the 32-byte L but models no
    # coherence traffic; a target that *also* charges full-size control
    # messages therefore brackets the CLogP estimate from above, while
    # the real (8-byte-control) target brackets it from below.
    assert small.mean_latency_us < clogp.mean_latency_us
    assert clogp.mean_latency_us < big.mean_latency_us


def test_protocol_ablation(runner, benchmark):
    """exp-proto: Berkeley vs Illinois traffic against the CLogP floor."""
    data = regenerate(runner, "exp-proto")
    index = len(data.processors) - 1
    berkeley = data.series["target-berkeley"][index]
    illinois = data.series["target-illinois"][index]
    clogp = data.series["clogp"][index]
    # CLogP is the floor; the protocols bracket each other closely.
    assert clogp < min(berkeley, illinois)
    assert abs(illinois - berkeley) < 0.15 * berkeley
    benchmark.pedantic(
        lambda: _run(
            data.experiment.app, "target", data.processors[index],
            protocol="illinois",
        ),
        rounds=1, iterations=1,
    )


def test_adaptive_g_ablation(runner, benchmark):
    """exp-gadapt: history-based g lowers the contention estimate."""
    data = regenerate(runner, "exp-gadapt")
    index = len(data.processors) - 1
    target = data.series["target"][index]
    strict = data.series["clogp"][index]
    adaptive = data.series["clogp-adaptive-g"][index]
    assert adaptive <= strict
    assert abs(adaptive - target) <= abs(strict - target)
    benchmark.pedantic(
        lambda: _run("ep", "clogp", data.processors[index],
                     topology="mesh", adaptive_g=True),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("app", ["cg", "fft"])
def test_cache_size_ablation(benchmark, app, nprocs):
    """Shrinking the cache raises traffic on target and CLogP alike.

    (Not universal: for IS the tiny cache *reduces* target traffic --
    early evictions shrink the sharer sets, saving invalidation rounds
    -- so the read-dominated applications carry this assertion.)"""
    def traffic(machine, cache_bytes):
        return _run(app, machine, nprocs,
                    cache_size_bytes=cache_bytes).messages

    big_target = traffic("target", 64 * 1024)
    small_target = traffic("target", 1 * 1024)
    big_clogp = traffic("clogp", 64 * 1024)
    small_clogp = benchmark.pedantic(
        lambda: traffic("clogp", 1 * 1024), rounds=1, iterations=1,
    )
    print(
        f"\n  {app} messages: target 64KB={big_target} 1KB={small_target}; "
        f"clogp 64KB={big_clogp} 1KB={small_clogp}"
    )
    assert small_target > big_target
    assert small_clogp > big_clogp
    # The abstraction follows the target's capacity behaviour.
    assert (small_clogp / big_clogp) > 1.0


def test_tree_barrier_ablation(benchmark, nprocs):
    """Centralized vs combining-tree barrier on the barrier-bound app."""
    def run_with(barrier):
        return _run("jacobi", "target", nprocs, topology="mesh",
                    barrier=barrier)

    central = run_with("central")
    tree = benchmark.pedantic(
        lambda: run_with("tree"), rounds=1, iterations=1,
    )
    print(
        f"\n  jacobi mesh p={nprocs}: central={central.total_us:.0f}us "
        f"({central.messages} msgs), tree={tree.total_us:.0f}us "
        f"({tree.messages} msgs)"
    )
    assert tree.messages < central.messages
    assert tree.total_us < central.total_us


def test_switch_delay_ablation(benchmark, nprocs):
    """The paper ignores switching delay as 'negligible compared to the
    transmission time'.  A realistic small delay (one cycle per hop)
    barely moves the latency overhead; a delay comparable to the
    transmission time makes latency topology-dependent."""
    base = _run("fft", "target", nprocs, topology="mesh")
    realistic = _run("fft", "target", nprocs, topology="mesh",
                     switch_delay_ns=30)
    huge = benchmark.pedantic(
        lambda: _run("fft", "target", nprocs, topology="mesh",
                     switch_delay_ns=1_600),
        rounds=1, iterations=1,
    )
    print(
        f"\n  fft mesh latency us: delay 0={base.mean_latency_us:.0f}, "
        f"30ns={realistic.mean_latency_us:.0f}, "
        f"1600ns={huge.mean_latency_us:.0f}"
    )
    # One-cycle switches change the latency overhead by ~10%.
    assert realistic.mean_latency_us <= 1.15 * base.mean_latency_us
    # Transmission-scale switches do not.
    assert huge.mean_latency_us > 1.5 * base.mean_latency_us
