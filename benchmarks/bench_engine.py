"""Engine hot-path benchmark and tracked perf baseline.

Section 7 of the paper argues about *simulation cost*: CLogP beats the
detailed target because it executes fewer events.  That argument only
holds if the simulator's own per-event overhead is under control, so
this harness times the quick ``cholesky`` run on every machine model
and records the trajectory in ``BENCH_engine.json`` at the repo root.
Every perf-sensitive PR appends a labelled entry; CI replays the
measurement and fails if events/sec regresses against the committed
baseline.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_engine.py --label my-change
    PYTHONPATH=src python benchmarks/bench_engine.py --record-ab soa-core
    PYTHONPATH=src python benchmarks/bench_engine.py --compare
    PYTHONPATH=src python benchmarks/bench_engine.py --compare --baseline pre-pr4-baseline
    PYTHONPATH=src python benchmarks/bench_engine.py --speedup pre post

``--label`` appends an entry, ``--record-ab`` appends an entry measured
interleaved against the object kernel (for kernel-tier PRs),
``--compare`` gates on a recorded entry (no file writes; ``--baseline``
selects which, so cross-PR speedups can be reported cumulatively
against the oldest entry), ``--speedup`` reports host-seconds speedup
between two recorded entries.

This file is also collected by pytest (``bench_*.py``) when invoked
explicitly; the test wrapper just checks the measurement machinery
runs, it does not gate on timing.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_engine.json"
SCHEMA = 1

#: The paper's headline app (its CHOLESKY points took 8-10 hours on
#: the original simulator) on the quick preset.
APP = "cholesky"
PRESET = "quick"
MACHINES = ("target", "clogp", "logp")
#: Wall-clock is min-of-N to suppress host jitter.
ROUNDS = 3


def _simulate(machine: str, kernel: Optional[str] = None):
    from repro import SystemConfig, simulate
    from repro.apps import make_app
    from repro.experiments.workloads import app_params, processor_sweep

    nprocs = processor_sweep(PRESET)[-1]
    config = SystemConfig(processors=nprocs, topology="full",
                          engine_kernel=kernel or "auto")
    instance = make_app(APP, nprocs, **app_params(APP, PRESET))
    return simulate(instance, machine, config)


def _run_entry(result, best: float) -> Dict:
    return {
        "wall_seconds": round(best, 4),
        "sim_events": result.sim_events,
        "events_per_sec": round(result.sim_events / best, 1),
        "messages": result.messages,
        "sim_time_ns": result.total_ns,
    }


def measure(machines=MACHINES, rounds: int = ROUNDS,
            kernel: Optional[str] = None) -> Dict[str, Dict]:
    """Run the benchmark matrix and return per-machine measurements."""
    runs: Dict[str, Dict] = {}
    for machine in machines:
        best = None
        result = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = _simulate(machine, kernel)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        assert result is not None and result.verified
        runs[machine] = _run_entry(result, best)
    return runs


#: RunResult attributes that must agree between kernels in an A/B run:
#: the kernels may only differ in host time, never in what they
#: simulated.
_AB_INVARIANTS = ("sim_events", "messages", "total_ns")


def measure_ab(machines=MACHINES, alternations: int = 3,
               rounds: int = ROUNDS) -> Dict[str, Dict[str, Dict]]:
    """Interleaved object/SoA measurement (min over alternations).

    Alternating kernels within one process factors host-speed drift out
    of the comparison, the same methodology as the recorded pre/post
    PR 4 entries.  Raises if the kernels disagree on any simulation
    invariant -- an A/B where the two sides did different work is not a
    measurement.
    """
    out: Dict[str, Dict[str, Dict]] = {}
    for machine in machines:
        best: Dict[str, Optional[float]] = {"object": None, "soa": None}
        results: Dict[str, object] = {}
        for _ in range(alternations):
            for kernel in ("object", "soa"):
                for _ in range(rounds):
                    start = time.perf_counter()
                    result = _simulate(machine, kernel)
                    elapsed = time.perf_counter() - start
                    prev = best[kernel]
                    best[kernel] = elapsed if prev is None else min(prev, elapsed)
                    results[kernel] = result
        for key in _AB_INVARIANTS:
            obj_val = getattr(results["object"], key)
            soa_val = getattr(results["soa"], key)
            if obj_val != soa_val:
                raise SystemExit(
                    f"kernel A/B invariant broken on {machine}: "
                    f"{key} object={obj_val} soa={soa_val}"
                )
        out[machine] = {
            kernel: _run_entry(results[kernel], best[kernel])
            for kernel in ("object", "soa")
        }
    return out


def load_entries() -> list:
    if not BENCH_FILE.exists():
        return []
    data = json.loads(BENCH_FILE.read_text())
    if data.get("schema") != SCHEMA:
        raise SystemExit(
            f"{BENCH_FILE.name} has schema {data.get('schema')!r}; "
            f"this tool reads schema {SCHEMA}"
        )
    return data["entries"]


def save_entries(entries: list) -> None:
    payload = {"schema": SCHEMA, "entries": entries}
    BENCH_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def find_entry(entries: list, label: Optional[str]):
    if label is None:
        return entries[-1] if entries else None
    for entry in entries:
        if entry["label"] == label:
            return entry
    return None


def cmd_record(label: str) -> int:
    runs = measure()
    entry = {
        "label": label,
        "recorded": time.strftime("%Y-%m-%d"),
        "app": APP,
        "preset": PRESET,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "runs": runs,
    }
    entries = [e for e in load_entries() if e["label"] != label]
    entries.append(entry)
    save_entries(entries)
    _print_runs(label, runs)
    print(f"recorded entry {label!r} in {BENCH_FILE.name}")
    return 0


def cmd_record_ab(label: str) -> int:
    """Record an interleaved object/SoA A/B entry for the SoA kernel.

    The entry's ``runs`` are the SoA side (so --compare / --speedup see
    the shipping kernel); the object-kernel mins ride along under
    ``ab_object_runs`` so the same-host kernel ratio is re-derivable
    from the file alone.
    """
    ab = measure_ab()
    entry = {
        "label": label,
        "recorded": time.strftime("%Y-%m-%d"),
        "app": APP,
        "preset": PRESET,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "kernel": "soa",
        "note": (
            "measured interleaved with the object kernel (3 alternations "
            "x 3 rounds, min taken) to factor out host-speed drift on a "
            "noisy single-core runner"
        ),
        "runs": {m: sides["soa"] for m, sides in ab.items()},
        "ab_object_runs": {m: sides["object"] for m, sides in ab.items()},
    }
    entries = [e for e in load_entries() if e["label"] != label]
    entries.append(entry)
    save_entries(entries)
    _print_runs(f"{label} (soa)", entry["runs"])
    _print_runs(f"{label} (object, same host)", entry["ab_object_runs"])
    for machine in entry["runs"]:
        obj = entry["ab_object_runs"][machine]["wall_seconds"]
        soa = entry["runs"][machine]["wall_seconds"]
        print(f"  {machine:7s} soa vs object on this host: {obj / soa:.2f}x")
    print(f"recorded entry {label!r} in {BENCH_FILE.name}")
    return 0


def cmd_compare(label: Optional[str], threshold: float) -> int:
    baseline = find_entry(load_entries(), label)
    if baseline is None:
        print(f"no baseline entry ({label or 'latest'}) in {BENCH_FILE.name}")
        return 2
    runs = measure()
    _print_runs("current", runs)
    _print_runs(baseline["label"], baseline["runs"])
    failed = False
    for machine, current in runs.items():
        ref = baseline["runs"].get(machine)
        if ref is None:
            continue
        ratio = current["events_per_sec"] / ref["events_per_sec"]
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failed = True
        cumulative = ref["wall_seconds"] / current["wall_seconds"]
        print(
            f"  {machine:7s} events/sec {current['events_per_sec']:>12.1f} "
            f"vs baseline {ref['events_per_sec']:>12.1f} "
            f"(x{ratio:.2f}) {status}  "
            f"[{cumulative:.2f}x host-seconds since {baseline['label']!r}]"
        )
    if failed:
        print(
            f"events/sec regressed more than {threshold:.0%} vs "
            f"baseline {baseline['label']!r}"
        )
        return 1
    return 0


def cmd_speedup(before_label: str, after_label: str) -> int:
    entries = load_entries()
    before = find_entry(entries, before_label)
    after = find_entry(entries, after_label)
    if before is None or after is None:
        print(f"missing entries {before_label!r} / {after_label!r}")
        return 2
    for machine in MACHINES:
        b = before["runs"].get(machine)
        a = after["runs"].get(machine)
        if not b or not a:
            continue
        print(
            f"  {machine:7s} {b['wall_seconds']:.3f}s -> {a['wall_seconds']:.3f}s "
            f"({b['wall_seconds'] / a['wall_seconds']:.2f}x host-seconds, "
            f"{b['sim_events']} -> {a['sim_events']} events)"
        )
    return 0


def _print_runs(label: str, runs: Dict[str, Dict]) -> None:
    print(f"[{label}] {APP}/{PRESET}:")
    for machine, r in runs.items():
        print(
            f"  {machine:7s} {r['wall_seconds']:.3f}s  "
            f"{r['sim_events']:>8d} events  "
            f"{r['events_per_sec']:>12.1f} ev/s  "
            f"{r['messages']:>7d} msgs  sim={r['sim_time_ns']} ns"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--label", help="record a labelled entry in BENCH_engine.json")
    mode.add_argument(
        "--record-ab", metavar="LABEL",
        help="record a labelled SoA entry measured interleaved with the "
             "object kernel (A/B, min over alternations)",
    )
    mode.add_argument(
        "--compare", action="store_true",
        help="measure and fail if events/sec regresses vs the baseline",
    )
    mode.add_argument(
        "--speedup", nargs=2, metavar=("BEFORE", "AFTER"),
        help="report host-seconds speedup between two recorded entries",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline entry label for --compare (default: latest entry)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="allowed fractional events/sec regression (default 0.30)",
    )
    args = parser.parse_args(argv)
    if args.record_ab:
        return cmd_record_ab(args.record_ab)
    if args.compare:
        return cmd_compare(args.baseline, args.threshold)
    if args.speedup:
        return cmd_speedup(*args.speedup)
    return cmd_record(args.label or "adhoc")


def test_engine_benchmark_measures():
    """Smoke: the measurement harness produces sane numbers (pytest)."""
    runs = measure(machines=("clogp",), rounds=1)
    entry = runs["clogp"]
    assert entry["sim_events"] > 0
    assert entry["wall_seconds"] > 0
    assert entry["events_per_sec"] > 0


if __name__ == "__main__":
    sys.exit(main())
