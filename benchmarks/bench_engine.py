"""Engine hot-path benchmark and tracked perf baseline.

Section 7 of the paper argues about *simulation cost*: CLogP beats the
detailed target because it executes fewer events.  That argument only
holds if the simulator's own per-event overhead is under control, so
this harness times the quick ``cholesky`` run on every machine model
and records the trajectory in ``BENCH_engine.json`` at the repo root.
Every perf-sensitive PR appends a labelled entry; CI replays the
measurement and fails if events/sec regresses against the committed
baseline.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_engine.py --label my-change
    PYTHONPATH=src python benchmarks/bench_engine.py --record-ab compiled-core
    PYTHONPATH=src python benchmarks/bench_engine.py --ab-smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --compare
    PYTHONPATH=src python benchmarks/bench_engine.py --compare --baseline pre-pr4-baseline
    PYTHONPATH=src python benchmarks/bench_engine.py --speedup pre post

``--label`` appends an entry, ``--record-ab`` appends an entry measured
interleaved across every kernel tier available on the host (object,
SoA, and compiled when the ``_csoa`` extension is built -- hard-fails
if the tiers disagree on simulation invariants), ``--ab-smoke`` is the
no-write CI form of that agreement check, ``--compare`` gates on a
recorded entry (no file writes; ``--baseline`` selects which, so
cross-PR speedups can be reported cumulatively against the oldest
entry), ``--speedup`` reports host-seconds speedup between two
recorded entries.  Timestamps are ISO-8601 UTC with an explicit
offset.

This file is also collected by pytest (``bench_*.py``) when invoked
explicitly; the test wrapper just checks the measurement machinery
runs, it does not gate on timing.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_engine.json"
SCHEMA = 1

#: The paper's headline app (its CHOLESKY points took 8-10 hours on
#: the original simulator) on the quick preset.
APP = "cholesky"
PRESET = "quick"
MACHINES = ("target", "clogp", "logp")
#: Wall-clock is min-of-N to suppress host jitter.
ROUNDS = 3


def _simulate(machine: str, kernel: Optional[str] = None):
    from repro import SystemConfig, simulate
    from repro.apps import make_app
    from repro.experiments.workloads import app_params, processor_sweep

    nprocs = processor_sweep(PRESET)[-1]
    config = SystemConfig(processors=nprocs, topology="full",
                          engine_kernel=kernel or "auto")
    instance = make_app(APP, nprocs, **app_params(APP, PRESET))
    return simulate(instance, machine, config)


def _run_entry(result, best: float) -> Dict:
    return {
        "wall_seconds": round(best, 4),
        "sim_events": result.sim_events,
        "events_per_sec": round(result.sim_events / best, 1),
        "messages": result.messages,
        "sim_time_ns": result.total_ns,
    }


def measure(machines=MACHINES, rounds: int = ROUNDS,
            kernel: Optional[str] = None) -> Dict[str, Dict]:
    """Run the benchmark matrix and return per-machine measurements."""
    runs: Dict[str, Dict] = {}
    for machine in machines:
        best = None
        result = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = _simulate(machine, kernel)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        assert result is not None and result.verified
        runs[machine] = _run_entry(result, best)
    return runs


#: RunResult attributes that must agree between kernels in an A/B run:
#: the kernels may only differ in host time, never in what they
#: simulated.
_AB_INVARIANTS = ("sim_events", "messages", "total_ns")

#: Kernel tiers in an A/B run, slowest first.
AB_KERNELS = ("object", "soa", "compiled")


def ab_kernels():
    """The kernel tiers measurable on this host (compiled needs _csoa)."""
    from repro.engine import HAVE_EXTENSION

    return AB_KERNELS if HAVE_EXTENSION else ("object", "soa")


def measure_ab(machines=MACHINES, alternations: int = 3,
               rounds: int = ROUNDS,
               kernels=("object", "soa")) -> Dict[str, Dict[str, Dict]]:
    """Interleaved multi-kernel measurement (min over alternations).

    Alternating kernels within one process factors host-speed drift out
    of the comparison, the same methodology as the recorded pre/post
    PR 4 entries.  Hard-fails (SystemExit) if any two kernels disagree
    on any simulation invariant -- an A/B where the sides did different
    work is not a measurement.
    """
    out: Dict[str, Dict[str, Dict]] = {}
    for machine in machines:
        best: Dict[str, Optional[float]] = {k: None for k in kernels}
        results: Dict[str, object] = {}
        for _ in range(alternations):
            for kernel in kernels:
                for _ in range(rounds):
                    start = time.perf_counter()
                    result = _simulate(machine, kernel)
                    elapsed = time.perf_counter() - start
                    prev = best[kernel]
                    best[kernel] = elapsed if prev is None else min(prev, elapsed)
                    results[kernel] = result
        ref_kernel = kernels[0]
        for kernel in kernels[1:]:
            for key in _AB_INVARIANTS:
                ref_val = getattr(results[ref_kernel], key)
                cur_val = getattr(results[kernel], key)
                if ref_val != cur_val:
                    raise SystemExit(
                        f"kernel A/B invariant broken on {machine}: {key} "
                        f"{ref_kernel}={ref_val} {kernel}={cur_val}"
                    )
        out[machine] = {
            kernel: _run_entry(results[kernel], best[kernel])
            for kernel in kernels
        }
    return out


#: Pure-engine dispatch microbench shape: no machine model, no memory
#: system -- just the resume-word treadmill (sleeps, zero-delay
#: redispatches, contended resource grants) that the compiled tier
#: attacks.  Event counts are deterministic, so kernel agreement is
#: asserted.
DISPATCH_PROCS = 64
DISPATCH_STEPS = 400


def _dispatch_workload(sim) -> int:
    from repro.engine import Resource

    hot = Resource(sim, capacity=1, name="hot")

    def worker():
        for step in range(DISPATCH_STEPS):
            yield (step & 7) + 1
            yield 0
            yield hot
            hot.release()

    for i in range(DISPATCH_PROCS):
        sim.spawn(worker(), name=f"w{i}")
    sim.run()
    return sim.events_executed


def measure_dispatch(kernels, alternations: int = 3) -> Dict[str, Dict]:
    """Time the dispatch microbench per kernel, interleaved."""
    from repro.engine import make_simulator

    best: Dict[str, Optional[float]] = {k: None for k in kernels}
    events: Dict[str, int] = {}
    for _ in range(alternations):
        for kernel in kernels:
            sim = make_simulator(kernel=kernel)
            start = time.perf_counter()
            events[kernel] = _dispatch_workload(sim)
            elapsed = time.perf_counter() - start
            prev = best[kernel]
            best[kernel] = elapsed if prev is None else min(prev, elapsed)
    if len(set(events.values())) != 1:
        raise SystemExit(
            f"dispatch microbench event counts disagree across kernels: "
            f"{events}"
        )
    return {
        kernel: {
            "wall_seconds": round(best[kernel], 4),
            "events": events[kernel],
            "events_per_sec": round(events[kernel] / best[kernel], 1),
        }
        for kernel in kernels
    }


def _dispatch_speedup(dispatch: Dict[str, Dict],
                      primary: str) -> Dict[str, float]:
    """Pure-dispatch delta: how much faster the primary tier retires
    the resume-word treadmill than each other measured tier (their
    wall seconds over the primary's)."""
    fast = dispatch[primary]["wall_seconds"]
    return {
        kernel: round(r["wall_seconds"] / fast, 2)
        for kernel, r in dispatch.items()
        if kernel != primary
    }


def normalize_entries(entries: list) -> bool:
    """Backfill derived fields that older entries predate (idempotent).

    ``dispatch_speedup`` summarizes the pure-dispatch microbench as a
    per-kernel ratio against the entry's shipping tier; entries
    recorded before the field existed carry the raw per-kernel numbers
    it derives from, so it can be reconstructed here.  Returns True if
    anything changed (callers re-save the file).
    """
    changed = False
    for entry in entries:
        dispatch = entry.get("dispatch_microbench")
        primary = entry.get("kernel")
        if (dispatch and primary in dispatch
                and "dispatch_speedup" not in entry):
            entry["dispatch_speedup"] = _dispatch_speedup(dispatch, primary)
            changed = True
    return changed


def load_entries() -> list:
    if not BENCH_FILE.exists():
        return []
    data = json.loads(BENCH_FILE.read_text())
    if data.get("schema") != SCHEMA:
        raise SystemExit(
            f"{BENCH_FILE.name} has schema {data.get('schema')!r}; "
            f"this tool reads schema {SCHEMA}"
        )
    return data["entries"]


def save_entries(entries: list) -> None:
    payload = {"schema": SCHEMA, "entries": entries}
    BENCH_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def find_entry(entries: list, label: Optional[str]):
    if label is None:
        return entries[-1] if entries else None
    for entry in entries:
        if entry["label"] == label:
            return entry
    return None


def _timestamp() -> str:
    """ISO-8601 UTC with an explicit offset, e.g. 2026-08-08T12:34:56+00:00."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def cmd_record(label: str) -> int:
    runs = measure()
    entry = {
        "label": label,
        "recorded": _timestamp(),
        "app": APP,
        "preset": PRESET,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "runs": runs,
    }
    entries = [e for e in load_entries() if e["label"] != label]
    entries.append(entry)
    save_entries(entries)
    _print_runs(label, runs)
    print(f"recorded entry {label!r} in {BENCH_FILE.name}")
    return 0


def cmd_record_ab(label: str) -> int:
    """Record an interleaved kernel A/B entry for the shipping tier.

    Measures every kernel tier available on this host -- object, SoA,
    and (when the ``_csoa`` extension is built) compiled -- interleaved
    within one process, plus the pure-engine dispatch microbench.  The
    entry's ``runs`` are the fastest shipping tier (so --compare /
    --speedup see what ``auto`` selects); the other tiers' mins ride
    along under ``ab_object_runs`` / ``ab_soa_runs`` so every same-host
    kernel ratio is re-derivable from the file alone.  Hard-fails if
    any two tiers disagree on a simulation invariant.
    """
    kernels = ab_kernels()
    primary = kernels[-1]
    ab = measure_ab(kernels=kernels)
    dispatch = measure_dispatch(kernels)
    note = (
        "measured interleaved across kernel tiers (3 alternations "
        "x 3 rounds, min taken) to factor out host-speed drift on a "
        "noisy single-core runner"
    )
    if "compiled" not in kernels:
        note += (
            "; _csoa extension unavailable on this host, compiled tier "
            "not measured"
        )
    entry = {
        "label": label,
        "recorded": _timestamp(),
        "app": APP,
        "preset": PRESET,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "kernel": primary,
        "note": note,
        "runs": {m: sides[primary] for m, sides in ab.items()},
        "ab_object_runs": {m: sides["object"] for m, sides in ab.items()},
        "dispatch_microbench": dispatch,
        "dispatch_speedup": _dispatch_speedup(dispatch, primary),
    }
    if primary != "soa":
        entry["ab_soa_runs"] = {m: sides["soa"] for m, sides in ab.items()}
    entries = [e for e in load_entries() if e["label"] != label]
    normalize_entries(entries)
    entries.append(entry)
    save_entries(entries)
    _print_runs(f"{label} ({primary})", entry["runs"])
    _print_runs(f"{label} (object, same host)", entry["ab_object_runs"])
    if "ab_soa_runs" in entry:
        _print_runs(f"{label} (soa, same host)", entry["ab_soa_runs"])
    for machine in entry["runs"]:
        fast = entry["runs"][machine]["wall_seconds"]
        for other_key, other_name in (("ab_object_runs", "object"),
                                      ("ab_soa_runs", "soa")):
            if other_key in entry:
                other = entry[other_key][machine]["wall_seconds"]
                print(f"  {machine:7s} {primary} vs {other_name} on this "
                      f"host: {other / fast:.2f}x")
    print("dispatch microbench "
          f"({DISPATCH_PROCS} procs x {DISPATCH_STEPS} steps):")
    for kernel, r in dispatch.items():
        print(f"  {kernel:9s} {r['wall_seconds']:.3f}s  "
              f"{r['events_per_sec']:>12.1f} ev/s")
    for kernel, ratio in entry["dispatch_speedup"].items():
        print(f"  {primary} vs {kernel} pure dispatch: {ratio:.2f}x")
    print(f"recorded entry {label!r} in {BENCH_FILE.name}")
    return 0


def cmd_ab_smoke() -> int:
    """CI smoke: one quick interleaved A/B across every available tier.

    No file writes; the value is the hard invariant check inside
    ``measure_ab``/``measure_dispatch`` -- the tiers must agree on
    sim_events / messages / sim_time, or this exits nonzero.  The
    ``target`` machine rides along specifically to drive the flat
    memory-transaction ops (request leg, home-lock, directory plan,
    invalidation rounds); the abstract machines never build them, so
    without it a transaction-op divergence would slip through.
    """
    kernels = ab_kernels()
    machines = ("clogp", "target")
    ab = measure_ab(machines=machines, alternations=1, rounds=1,
                    kernels=kernels)
    for machine in machines:
        for kernel, run in ab[machine].items():
            print(f"  {machine:7s} {kernel:9s} {run['wall_seconds']:.3f}s  "
                  f"{run['sim_events']:>8d} events")
    dispatch = measure_dispatch(kernels, alternations=1)
    for kernel, r in dispatch.items():
        print(f"  dispatch {kernel:9s} {r['wall_seconds']:.3f}s  "
              f"{r['events']:>8d} events")
    print(f"A/B invariants agree across {len(kernels)} kernel tiers: "
          + ", ".join(kernels))
    return 0


def cmd_compare(label: Optional[str], threshold: float) -> int:
    baseline = find_entry(load_entries(), label)
    if baseline is None:
        print(f"no baseline entry ({label or 'latest'}) in {BENCH_FILE.name}")
        return 2
    runs = measure()
    _print_runs("current", runs)
    _print_runs(baseline["label"], baseline["runs"])
    failed = False
    for machine, current in runs.items():
        ref = baseline["runs"].get(machine)
        if ref is None:
            continue
        ratio = current["events_per_sec"] / ref["events_per_sec"]
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failed = True
        cumulative = ref["wall_seconds"] / current["wall_seconds"]
        print(
            f"  {machine:7s} events/sec {current['events_per_sec']:>12.1f} "
            f"vs baseline {ref['events_per_sec']:>12.1f} "
            f"(x{ratio:.2f}) {status}  "
            f"[{cumulative:.2f}x host-seconds since {baseline['label']!r}]"
        )
    if failed:
        print(
            f"events/sec regressed more than {threshold:.0%} vs "
            f"baseline {baseline['label']!r}"
        )
        return 1
    return 0


def cmd_speedup(before_label: str, after_label: str) -> int:
    entries = load_entries()
    before = find_entry(entries, before_label)
    after = find_entry(entries, after_label)
    if before is None or after is None:
        print(f"missing entries {before_label!r} / {after_label!r}")
        return 2
    for machine in MACHINES:
        b = before["runs"].get(machine)
        a = after["runs"].get(machine)
        if not b or not a:
            continue
        print(
            f"  {machine:7s} {b['wall_seconds']:.3f}s -> {a['wall_seconds']:.3f}s "
            f"({b['wall_seconds'] / a['wall_seconds']:.2f}x host-seconds, "
            f"{b['sim_events']} -> {a['sim_events']} events)"
        )
    return 0


def _print_runs(label: str, runs: Dict[str, Dict]) -> None:
    print(f"[{label}] {APP}/{PRESET}:")
    for machine, r in runs.items():
        print(
            f"  {machine:7s} {r['wall_seconds']:.3f}s  "
            f"{r['sim_events']:>8d} events  "
            f"{r['events_per_sec']:>12.1f} ev/s  "
            f"{r['messages']:>7d} msgs  sim={r['sim_time_ns']} ns"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--label", help="record a labelled entry in BENCH_engine.json")
    mode.add_argument(
        "--record-ab", metavar="LABEL",
        help="record a labelled entry measured interleaved across every "
             "available kernel tier (object/soa/compiled A/B, min over "
             "alternations, hard-fails on invariant disagreement)",
    )
    mode.add_argument(
        "--ab-smoke", action="store_true",
        help="quick interleaved A/B across all available kernel tiers; "
             "exits nonzero if the tiers disagree on simulation "
             "invariants (no file writes)",
    )
    mode.add_argument(
        "--compare", action="store_true",
        help="measure and fail if events/sec regresses vs the baseline",
    )
    mode.add_argument(
        "--speedup", nargs=2, metavar=("BEFORE", "AFTER"),
        help="report host-seconds speedup between two recorded entries",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline entry label for --compare (default: latest entry)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="allowed fractional events/sec regression (default 0.30)",
    )
    args = parser.parse_args(argv)
    if args.record_ab:
        return cmd_record_ab(args.record_ab)
    if args.ab_smoke:
        return cmd_ab_smoke()
    if args.compare:
        return cmd_compare(args.baseline, args.threshold)
    if args.speedup:
        return cmd_speedup(*args.speedup)
    return cmd_record(args.label or "adhoc")


def test_engine_benchmark_measures():
    """Smoke: the measurement harness produces sane numbers (pytest)."""
    runs = measure(machines=("clogp",), rounds=1)
    entry = runs["clogp"]
    assert entry["sim_events"] > 0
    assert entry["wall_seconds"] > 0
    assert entry["events_per_sec"] > 0


def test_dispatch_microbench_kernels_agree():
    """Smoke: the pure-engine microbench runs every available tier and
    its internal event-count agreement check holds (pytest)."""
    dispatch = measure_dispatch(ab_kernels(), alternations=1)
    counts = {r["events"] for r in dispatch.values()}
    assert len(counts) == 1
    assert counts.pop() > 0


if __name__ == "__main__":
    sys.exit(main())
